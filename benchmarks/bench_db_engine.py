"""E8 — relational-engine microbenchmarks (substrate sanity).

Wall-clock throughput of the from-scratch engine on its core operators
— scan, filter, hash join, aggregation, index point lookup — and the
optimizer's effect (pushdown + hash join vs naive nested loops).
"""

import random

import pytest

from repro.db import Column, Database, DataType, ForeignKey, TableSchema

ROWS = 5_000


@pytest.fixture(scope="module")
def db() -> Database:
    rng = random.Random(17)
    database = Database("bench")
    database.create_table(
        TableSchema(
            "orders",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("customer_id", DataType.INTEGER),
                Column("amount", DataType.REAL),
                Column("region", DataType.TEXT),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "customers",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("name", DataType.TEXT),
                Column("tier", DataType.TEXT),
            ],
            foreign_keys=[ForeignKey("id", "orders", "customer_id")],
        )
    )
    regions = ["north", "south", "east", "west"]
    tiers = ["gold", "silver", "bronze"]
    database.insert(
        "customers",
        (
            [cid, f"customer-{cid}", rng.choice(tiers)]
            for cid in range(1, 501)
        ),
    )
    database.insert(
        "orders",
        (
            [
                oid,
                rng.randint(1, 500),
                round(rng.uniform(5.0, 500.0), 2),
                rng.choice(regions),
            ]
            for oid in range(1, ROWS + 1)
        ),
    )
    database.create_index("orders", "id")
    database.create_index("customers", "id")
    return database


def test_full_scan(benchmark, db):
    result = benchmark(lambda: db.execute("SELECT * FROM orders"))
    assert len(result) == ROWS


def test_filter_scan(benchmark, db):
    result = benchmark(
        lambda: db.execute(
            "SELECT id FROM orders WHERE amount > 250 "
            "AND region = 'north'"
        )
    )
    assert len(result) > 0


def test_index_point_lookup(benchmark, db):
    result = benchmark(
        lambda: db.execute("SELECT * FROM orders WHERE id = 4242")
    )
    assert len(result) == 1


def test_hash_join(benchmark, db):
    sql = (
        "SELECT c.tier, COUNT(*) FROM orders o "
        "JOIN customers c ON o.customer_id = c.id GROUP BY c.tier"
    )
    result = benchmark(lambda: db.execute(sql))
    assert len(result) == 3


def test_aggregate_group_by(benchmark, db):
    result = benchmark(
        lambda: db.execute(
            "SELECT region, COUNT(*), AVG(amount), MAX(amount) "
            "FROM orders GROUP BY region"
        )
    )
    assert len(result) == 4


def test_sort_limit(benchmark, db):
    result = benchmark(
        lambda: db.execute(
            "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 10"
        )
    )
    assert len(result) == 10


def test_optimizer_speedup_on_join(benchmark, db):
    sql = (
        "SELECT COUNT(*) FROM orders o JOIN customers c "
        "ON o.customer_id = c.id WHERE c.tier = 'gold'"
    )
    optimized = benchmark(lambda: db.execute(sql, optimize=True))
    unoptimized = db.execute(sql, optimize=False)
    assert optimized.rows == unoptimized.rows
