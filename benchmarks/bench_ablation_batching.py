"""E5 — ablation: batched LM inference vs TAG execution time.

The paper attributes hand-written TAG's low ET to "exploiting efficient
batched inference of LMs" (§4.3, up to 3.1x lower ET than baselines).
This ablation sweeps the semantic-operator batch size and reports the
simulated ET of the hand-written TAG method over the 20 comparison
queries (the most judgment-heavy type).
"""

import pytest

from repro.bench.runner import run_benchmark
from repro.lm import LMConfig, SimulatedLM
from repro.methods import HandwrittenTAGMethod

from benchmarks.conftest import write_artifact

BATCH_SIZES = (1, 4, 16, 64)


def _tag_et(batch_size: int, suite, datasets) -> float:
    queries = [s for s in suite if s.query_type == "comparison"]
    method = HandwrittenTAGMethod(
        SimulatedLM(LMConfig(seed=0)), batch_size=batch_size
    )
    report = run_benchmark(
        seed=0, methods=[method], queries=queries, datasets=datasets
    )
    return report.mean_et("Hand-written TAG")


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batching_ablation(benchmark, batch_size, suite, datasets):
    et = benchmark.pedantic(
        lambda: _tag_et(batch_size, suite, datasets),
        rounds=1,
        iterations=1,
    )
    print(f"\nbatch_size={batch_size}: mean ET {et:.2f}s")


def test_batching_monotone_speedup(benchmark, suite, datasets):
    ets = benchmark.pedantic(
        lambda: {
            batch_size: _tag_et(batch_size, suite, datasets)
            for batch_size in BATCH_SIZES
        },
        rounds=1,
        iterations=1,
    )
    lines = ["TAG mean ET (comparison queries) vs operator batch size:"]
    lines += [
        f"  batch={batch_size:3d}  ET={et:6.2f}s"
        for batch_size, et in ets.items()
    ]
    speedup = ets[1] / ets[64]
    lines.append(f"  sequential/batched speedup: {speedup:.1f}x")
    write_artifact("ablation_batching.txt", "\n".join(lines))

    assert ets[1] > ets[4] > ets[16] >= ets[64]
    # The paper's headline speedup is ~3.1x; batching alone contributes
    # a comparable factor here.
    assert speedup >= 2.0
