"""E10 — ablation: expensive-predicate deferral for LM UDFs in SQL.

Figure 1's exec step runs an LM UDF per row inside SQL.  The engine's
optimizer evaluates cheap relational predicates before expensive LM
UDFs, so the LM judges as few rows as possible.  This ablation measures
LM calls and simulated seconds for the Figure 1 query with the
optimizer on vs off.
"""

from repro.data import movies
from repro.lm import LMConfig, SimulatedLM, prompts

from benchmarks.conftest import write_artifact

# The LM UDF is written *first* in the WHERE clause: an unoptimized
# left-to-right evaluation judges every row; the optimizer reorders the
# cheap genre filter in front regardless of how the query was written.
FIGURE1_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE LLM('considered a ''classic''', movie_title) = 'yes' "
    "AND genre = 'Romance' "
    "ORDER BY revenue DESC LIMIT 1"
)


def _run(optimize: bool):
    dataset = movies.build()
    lm = SimulatedLM(LMConfig(seed=0, skepticism=0.0))
    dataset.db.register_udf(
        "LLM",
        lambda task, value: lm.complete(
            prompts.judgment_prompt(f"'{value}' is {task}")
        ).text,
        expensive=True,
    )
    result = dataset.db.execute(FIGURE1_SQL, optimize=optimize)
    return result.rows, lm.usage.calls, lm.usage.simulated_seconds


def test_udf_pushdown(benchmark):
    rows_on, calls_on, seconds_on = benchmark.pedantic(
        lambda: _run(optimize=True), rounds=1, iterations=1
    )
    rows_off, calls_off, seconds_off = _run(optimize=False)

    write_artifact(
        "ablation_udf_pushdown.txt",
        "Figure 1 query, LM UDF cost with/without optimizer:\n"
        f"  optimized:   {calls_on:3d} LM calls, "
        f"{seconds_on:6.2f}s simulated\n"
        f"  unoptimized: {calls_off:3d} LM calls, "
        f"{seconds_off:6.2f}s simulated\n"
        f"  saved: {calls_off - calls_on} calls "
        f"({(1 - calls_on / calls_off) * 100:.0f}%)",
    )

    assert rows_on == rows_off  # semantics preserved
    assert rows_on[0][0] == "Titanic"
    # Optimized: only the romance titles are judged; unoptimized: the
    # whole table (per-row UDF behind no cheap filter).
    assert calls_on < calls_off
    assert seconds_on < seconds_off
