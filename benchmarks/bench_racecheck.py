"""E19 — concurrency safety: analyzer runtime and race-check overhead.

Two costs matter for the concurrency layer (:mod:`repro.analysis.concurrency`
static pass + :mod:`repro.obs.racecheck` dynamic checker):

- the static analyzer must stay fast enough to sit in ``make verify``
  (it re-reads and re-walks every file under ``src/`` each run);
- the dynamic hooks compiled into the serving stack must be ~free when
  no checker is installed — the same zero-cost-when-disabled contract
  the tracer pins in E15 — and must not perturb virtual numbers when
  one *is* installed.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the workload for CI-style
verification runs (``make verify``).
"""

import os
import time
from pathlib import Path

from repro.analysis.concurrency import analyze_tree
from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.obs import racecheck
from repro.obs.racecheck import RaceChecker
from repro.serve import TagServer

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
REQUESTS = 8 if SMOKE else 32
NOOP_CALLS = 20_000 if SMOKE else 200_000
ANALYZER_ROUNDS = 1 if SMOKE else 5
WORKERS = 4
WINDOW = 4

REPO_ROOT = Path(__file__).resolve().parents[1]

_DATASET = movies.build()
_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


def _factory(lm) -> TAGPipeline:
    return TAGPipeline(
        FixedQuerySynthesizer(_SQL),
        SQLExecutor(_DATASET.db),
        SingleCallGenerator(lm, aggregation=True),
    )


def _requests() -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(REQUESTS)
    ]


def _serve(checked: bool):
    checker = RaceChecker() if checked else None
    server = TagServer(
        _factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=WORKERS,
        window=WINDOW,
    )
    started = time.perf_counter()
    if checker is not None:
        with racecheck.checking(checker):
            report = server.serve(_requests())
    else:
        report = server.serve(_requests())
    elapsed = time.perf_counter() - started
    return report, checker, elapsed


def _time_noop_helpers() -> tuple[float, float]:
    """Seconds per iteration: disabled racecheck hooks vs. empty loop."""
    indices = range(NOOP_CALLS)
    started = time.perf_counter()
    for _ in indices:
        racecheck.write("bench.variable")
    hooked = (time.perf_counter() - started) / NOOP_CALLS
    started = time.perf_counter()
    for _ in indices:
        pass
    empty = (time.perf_counter() - started) / NOOP_CALLS
    return hooked, empty


def test_static_analyzer_runtime(benchmark):
    """Acceptance: a whole-tree analysis of src/ finishes in verify-gate
    time, stays clean, and covers the serving stack's shared surface."""
    report = benchmark.pedantic(
        lambda: analyze_tree(REPO_ROOT),
        rounds=ANALYZER_ROUNDS,
        iterations=1,
    )
    assert report.ok, report.render()
    assert report.files_analyzed > 0
    names = {entry.split(" ")[0] for entry in report.shared_classes}
    assert {"BatchingLM", "UDFMemoCache", "MetricsRegistry"} <= names


def test_racecheck_preserves_serving_numbers(benchmark):
    """Acceptance: a checked replay reproduces the unchecked run's
    virtual numbers field for field, reports race-clean, and the
    disabled hooks cost nanoseconds."""
    (plain, _, wall_off), (checked, checker, wall_on) = (
        benchmark.pedantic(
            lambda: (_serve(checked=False), _serve(checked=True)),
            rounds=1,
            iterations=1,
        )
    )
    assert checked.simulated_seconds == plain.simulated_seconds
    assert checked.usage == plain.usage
    assert checked.answers() == plain.answers()
    race_report = checker.report()
    assert race_report.ok, race_report.render()
    assert race_report.threads == WORKERS + 1

    hooked, empty = _time_noop_helpers()
    write_artifact(
        "racecheck_overhead.txt",
        "\n".join(
            [
                f"Race checking, {REQUESTS} requests, "
                f"{WORKERS} workers, window {WINDOW}:",
                "",
                f"  unchecked wall      {wall_off:.6f} s",
                f"  checked   wall      {wall_on:.6f} s"
                f"  ({race_report.events} events, "
                f"{race_report.variables} vars)",
                f"  virtual identical   "
                f"{checked.simulated_seconds == plain.simulated_seconds}",
                f"  answers identical   "
                f"{checked.answers() == plain.answers()}",
                "",
                f"  disabled hook       {hooked * 1e9:8.1f} ns/call",
                f"  empty loop          {empty * 1e9:8.1f} ns/call",
            ]
        ),
    )
    # A disabled hook is one global read and a branch; 10 µs/call would
    # mean the disabled path allocates.
    assert hooked < 10e-6
    assert wall_off >= 0.0  # timed, reported in the artifact
