"""E12 — quantitative aggregation evaluation (the paper's future work).

The paper scores its 20 aggregation queries qualitatively and leaves
"quantitative analysis to future work" (§4.3).  This benchmark supplies
it: per-method mean *entity coverage* (completeness, Figure 2 made a
number) and *numeric faithfulness* (no hallucinated figures) over all
20 aggregation queries, using the per-query oracles on the specs.
"""

from repro.bench.agg_quality import (
    entity_coverage,
    numeric_faithfulness,
    source_numbers,
)

from benchmarks.conftest import write_artifact

TAG = "Hand-written TAG"
GENERATIVE_METHODS = ["RAG", "Retrieval + LM Rank", "Text2SQL + LM", TAG]


def _score(full_report, suite, datasets):
    by_qid = {
        spec.qid: spec
        for spec in suite
        if spec.query_type == "aggregation"
    }
    datasets_by_name = datasets
    scores: dict[str, dict[str, list[float]]] = {
        method: {"coverage": [], "faithfulness": []}
        for method in GENERATIVE_METHODS
    }
    for record in full_report.records:
        if record.qid not in by_qid:
            continue
        if record.method not in scores:
            continue
        spec = by_qid[record.qid]
        dataset = datasets_by_name[spec.domain]
        answer = str(record.answer)
        entities = spec.agg_entities(dataset)
        sources = source_numbers(spec.agg_source(dataset))
        scores[record.method]["coverage"].append(
            entity_coverage(answer, entities)
        )
        scores[record.method]["faithfulness"].append(
            numeric_faithfulness(answer, sources)
        )
    return {
        method: {
            metric: sum(values) / len(values)
            for metric, values in metrics.items()
        }
        for method, metrics in scores.items()
    }


def test_aggregation_quality(benchmark, full_report, suite, datasets):
    means = benchmark.pedantic(
        lambda: _score(full_report, suite, datasets),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Quantitative aggregation quality over all 20 aggregation "
        "queries:",
    ]
    for method, metrics in means.items():
        lines.append(
            f"  {method:20s} coverage={metrics['coverage']:.2f} "
            f"faithfulness={metrics['faithfulness']:.2f}"
        )
    write_artifact("aggregation_quality.txt", "\n".join(lines))

    # TAG's answers are both the most complete and grounded in the
    # actual rows — the quantitative version of the Figure 2 claim.
    for method in GENERATIVE_METHODS:
        if method == TAG:
            continue
        assert means[TAG]["coverage"] >= means[method]["coverage"]
    assert means[TAG]["coverage"] >= 0.5
    assert means[TAG]["faithfulness"] >= 0.9
    assert means[TAG]["coverage"] - means["RAG"]["coverage"] >= 0.3
