"""E14 — serving under failure: fault rate x retry policy sweep.

The TAG serving stack (E13) assumed a healthy LM.  This experiment
injects a deterministic fault schedule (:mod:`repro.lm.faults`) under
three client policies — no-retry, retry, retry+fallback
(:mod:`repro.serve.resilience`) — and measures availability (fraction
of requests answered, degraded included) and goodput (answered
requests per simulated second).  All numbers come off the virtual
clock, so a faulty run is exactly as reproducible as a healthy one.

Expected shape: availability falls with the fault rate for no-retry,
stays near one for retry, and is pinned at one for retry+fallback
(the fallback tier needs no LM call, so nothing can fault it); the
price is goodput — retries burn simulated seconds on backoff and
re-attempts.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
verification runs (``make verify``).
"""

import os

import pytest

from repro.core import (
    FallbackPipeline,
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import FaultPlan, LMConfig, SimulatedLM
from repro.serve import ResiliencePolicy, RetryPolicy, TagServer

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
FAULT_RATES = (0.0, 0.3) if SMOKE else (0.0, 0.05, 0.15, 0.3)
REQUESTS = 8 if SMOKE else 32
WORKERS = 4
WINDOW = 4
FAULT_SEED = 7

_DATASET = movies.build()
_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)

_RETRY = ResiliencePolicy(retry=RetryPolicy(max_attempts=4))
#: name -> (resilience policy, use a fallback tier?)
POLICIES = {
    "no-retry": (ResiliencePolicy.no_retry(), False),
    "retry": (_RETRY, False),
    "retry+fallback": (_RETRY, True),
}


def _factory(with_fallback: bool):
    def factory(lm):
        primary = TAGPipeline(
            FixedQuerySynthesizer(_SQL),
            SQLExecutor(_DATASET.db),
            SingleCallGenerator(lm, aggregation=True),
        )
        if not with_fallback:
            return primary
        # The degraded tier answers with the raw table — no LM call,
        # so no fault can reach it.
        raw_table = TAGPipeline(
            FixedQuerySynthesizer(_SQL),
            SQLExecutor(_DATASET.db),
            NoGenerator(),
        )
        return FallbackPipeline([("tag", primary), ("table", raw_table)])

    return factory


def _requests() -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(REQUESTS)
    ]


def _serve(rate: float, policy_name: str):
    resilience, with_fallback = POLICIES[policy_name]
    server = TagServer(
        _factory(with_fallback),
        SimulatedLM(LMConfig(seed=0)),
        workers=WORKERS,
        window=WINDOW,
        fault_plan=FaultPlan.uniform(rate, seed=FAULT_SEED),
        resilience=resilience,
    )
    return server.serve(_requests())


def _sweep():
    return {
        (rate, name): _serve(rate, name)
        for rate in FAULT_RATES
        for name in POLICIES
    }


def _render(reports) -> str:
    lines = [
        f"TAG serving under failure, {REQUESTS} requests, "
        f"{WORKERS} workers, window {WINDOW}:",
        "",
        "  rate  policy          avail  goodput   p50-s   p95-s"
        "  retries  degraded",
    ]
    for (rate, name), report in reports.items():
        lines.append(
            f"  {rate:4.2f}  {name:<14s}"
            f"  {report.availability:5.2f}"
            f"  {report.goodput_rps:7.3f}"
            f"  {report.latency_percentile(0.5):6.2f}"
            f"  {report.latency_percentile(0.95):6.2f}"
            f"  {report.usage.retries:7d}"
            f"  {report.degraded_count:8d}"
        )
    return "\n".join(lines)


def test_zero_fault_rate_matches_healthy_baseline(benchmark):
    """Acceptance: the whole resilience stack is a no-op when healthy —
    rate-0 serving reproduces the plain (PR-1) server bit for bit."""
    guarded, baseline = benchmark.pedantic(
        lambda: (
            _serve(0.0, "retry"),
            TagServer(
                _factory(with_fallback=False),
                SimulatedLM(LMConfig(seed=0)),
                workers=WORKERS,
                window=WINDOW,
            ).serve(_requests()),
        ),
        rounds=1,
        iterations=1,
    )
    assert guarded.answers() == baseline.answers()
    assert guarded.simulated_seconds == baseline.simulated_seconds
    assert guarded.usage == baseline.usage
    assert [r.et_seconds for r in guarded.results] == [
        r.et_seconds for r in baseline.results
    ]
    assert guarded.availability == 1.0
    assert guarded.usage.retries == 0


def test_fault_rate_x_policy_sweep(benchmark):
    """Acceptance: retries+fallback strictly dominates no-retry in
    availability at every nonzero fault rate, and the sweep is
    byte-identical across runs."""
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = _render(reports)
    write_artifact("resilience.txt", table)

    # Deterministic fault schedules: re-running the sweep reproduces
    # every number, so the artifact is byte-identical.
    assert _render(_sweep()) == table

    for rate in FAULT_RATES:
        if rate == 0.0:
            continue
        unguarded = reports[(rate, "no-retry")]
        guarded = reports[(rate, "retry+fallback")]
        assert guarded.availability > unguarded.availability
        assert guarded.availability == 1.0
        assert reports[(rate, "retry")].usage.retries > 0
        # Fallback degradation only happens when retries are exhausted.
        assert guarded.degraded_count <= len(guarded.results)
    # Availability never *increases* with the fault rate for the
    # unguarded policy (it can only lose requests).
    unguarded_avail = [
        reports[(rate, "no-retry")].availability for rate in FAULT_RATES
    ]
    assert unguarded_avail[0] == 1.0
    assert unguarded_avail[-1] < 1.0


@pytest.mark.skipif(SMOKE, reason="full sweep only")
def test_retries_trade_goodput_for_availability(benchmark):
    """Retries keep availability high but each saved request pays
    backoff + re-attempt simulated seconds."""
    unguarded, guarded = benchmark.pedantic(
        lambda: (_serve(0.3, "no-retry"), _serve(0.3, "retry")),
        rounds=1,
        iterations=1,
    )
    assert guarded.availability > unguarded.availability
    assert guarded.usage.simulated_seconds > unguarded.usage.simulated_seconds
