"""E1 — regenerate the paper's Table 1.

Accuracy (exact match) and execution time for all five methods across
the four query types, over the full 80-query TAG-Bench.  The timed body
is one complete benchmark run (all methods x all queries); the shape
assertions encode the paper's headline claims.
"""

from repro.bench.report import format_table1
from repro.bench.runner import run_benchmark

from benchmarks.conftest import write_artifact

TAG = "Hand-written TAG"
BASELINES = ["Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"]


def test_table1(benchmark, full_report):
    report = benchmark.pedantic(
        lambda: run_benchmark(seed=0), rounds=1, iterations=1
    )
    write_artifact("table1.txt", format_table1(report))

    # Paper: every baseline <= ~0.20; hand-written TAG >= 0.40 on every
    # scoreable type; TAG fastest or nearly fastest.
    for method in BASELINES:
        assert report.accuracy(method) <= 0.25
    for query_type in ("match", "comparison", "ranking"):
        assert report.accuracy(TAG, query_type=query_type) >= 0.40
    fastest_baseline = min(report.mean_et(m) for m in BASELINES)
    assert report.mean_et(TAG) <= fastest_baseline * 1.15
