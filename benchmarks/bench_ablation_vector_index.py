"""E7 — ablation: vector index variant (flat exact vs IVF approximate).

Substrate-level ablation for the RAG stack: recall@10 of the IVF index
against exact flat search over the benchmark's row corpus, sweeping
nprobe.  (FAISS's IndexFlatIP vs IndexIVFFlat trade-off.)
"""

import numpy as np
import pytest

from repro.core import VectorSearchExecutor
from repro.embed import HashingEmbedder, serialize_row
from repro.vector import FlatIndex, IVFIndex

from benchmarks.conftest import write_artifact

NPROBES = (1, 2, 4, 8)
N_CLUSTERS = 24


def _corpus(datasets) -> np.ndarray:
    embedder = HashingEmbedder()
    texts = []
    dataset = datasets["formula_1"]
    for table_name in dataset.db.table_names:
        table = dataset.db.table(table_name)
        names = table.schema.column_names
        for row in table.rows:
            texts.append(serialize_row(dict(zip(names, row))))
    return embedder.embed_batch(texts)


def _recall_at_10(corpus: np.ndarray, nprobe: int) -> float:
    flat = FlatIndex(corpus.shape[1])
    flat.add(corpus)
    ivf = IVFIndex(
        corpus.shape[1], n_clusters=N_CLUSTERS, nprobe=nprobe, seed=0
    )
    ivf.train(corpus)
    ivf.add(corpus)
    hits = 0
    probes = range(0, len(corpus), max(1, len(corpus) // 50))
    for row in probes:
        true_ids, _ = flat.search(corpus[row], 10)
        got_ids, _ = ivf.search(corpus[row], 10)
        hits += len(set(true_ids.tolist()) & set(got_ids.tolist()))
    return hits / (len(list(probes)) * 10)


@pytest.mark.parametrize("nprobe", (1, 4))
def test_ivf_search_speed(benchmark, nprobe, datasets):
    corpus = _corpus(datasets)
    ivf = IVFIndex(
        corpus.shape[1], n_clusters=N_CLUSTERS, nprobe=nprobe, seed=0
    )
    ivf.train(corpus)
    ivf.add(corpus)
    benchmark(lambda: ivf.search(corpus[0], 10))


def test_flat_search_speed(benchmark, datasets):
    corpus = _corpus(datasets)
    flat = FlatIndex(corpus.shape[1])
    flat.add(corpus)
    benchmark(lambda: flat.search(corpus[0], 10))


def test_recall_improves_with_nprobe(benchmark, datasets):
    corpus = _corpus(datasets)
    recalls = benchmark.pedantic(
        lambda: {
            nprobe: _recall_at_10(corpus, nprobe) for nprobe in NPROBES
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        f"IVF recall@10 vs flat exact search "
        f"({len(corpus)} rows, {N_CLUSTERS} clusters):"
    ]
    lines += [
        f"  nprobe={nprobe}  recall={recall:.3f}"
        for nprobe, recall in recalls.items()
    ]
    write_artifact("ablation_vector_index.txt", "\n".join(lines))

    assert recalls[8] >= recalls[1]
    assert recalls[8] >= 0.9
