"""E20 — semantic serving cache: duplicate-rate x threshold sweep.

Production NL-query streams repeat themselves: the same dashboard
question arrives re-phrased, re-cased, or verbatim, many times a day.
The semantic serving cache (:mod:`repro.serve.semantic`) answers such
repeats from stored :class:`TAGResult`\\ s — canonical-equal repeats via
the exact fast path, paraphrases via embedding similarity above a
threshold — at zero LM cost and zero simulated seconds.

This benchmark sweeps the stream's duplicate rate against the cache's
near-match threshold and serves every stream twice, cache off and cache
on, over the same pipeline and seed.  Each stream arrives as successive
``serve()`` windows (results are stored between windows, as in a
long-running deployment), so repeats inside a window coalesce and
repeats across windows hit the cache.  Expected shape: at duplicate
rate 0 the cache changes nothing (lookups are free, answers identical);
at every positive duplicate rate cache-on strictly dominates cache-off
on goodput and on LM tokens; lowering the threshold converts paraphrase
misses into near hits and widens the win.  The acceptance gate is
*zero wrong-answer hits*: every answer in each cache-on run must be
byte-identical to the cache-off run's answer at the same index.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
runs (folded into ``make bench-smoke``).
"""

import os

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.serve import SemanticResultCache, TagServer

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

REQUESTS = 12 if SMOKE else 36
WINDOW_REQUESTS = 6 if SMOKE else 12
DUPLICATE_RATES = (0.0, 0.5) if SMOKE else (0.0, 0.25, 0.5, 0.75)
THRESHOLDS = (0.85,) if SMOKE else (0.8, 0.9, 0.95)

_DATASET = movies.build()
_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)

#: Four-slot question generator.  The slot indices follow a linear
#: scheme over Z6 so any two distinct questions differ in at least two
#: content slots, keeping their canonical-embedding cosine below ~0.6 —
#: well clear of the near-match band, so the threshold sweep never
#: conflates genuinely different questions.
_VERBS = ("Summarize", "Rank", "Count", "Compare", "Describe", "Contrast")
_ATTRS = (
    "the reviews", "the revenues", "the ratings",
    "the genres", "the budgets", "the runtimes",
)
_SUBJECTS = (
    "of romance movies", "of horror films", "of comedy releases",
    "of drama pictures", "of action blockbusters", "of animated features",
)
_QUALS = (
    "from the nineties", "released after 2000", "with huge budgets",
    "from small studios", "praised by critics", "loved by audiences",
)


def _question(k: int) -> str:
    i, j = k % 6, k // 6
    return (
        f"{_VERBS[i]} {_ATTRS[j]} {_SUBJECTS[(i + j) % 6]} "
        f"{_QUALS[(i + 2 * j) % 6]}"
    )


#: Surface manglers for repeats of one underlying question.  0 is the
#: original; 1 and 2 are canonical-equal re-phrasings (exact fast
#: path); 3 appends a content word, so it canonicalizes differently
#: (cosine ~0.87-0.94) and can only be caught by the near-match path.
_MANGLERS = (
    lambda q: q,
    lambda q: q.lower() + "!",
    lambda q: q.upper(),
    lambda q: q + " overall",
)


def _factory(lm) -> TAGPipeline:
    return TAGPipeline(
        FixedQuerySynthesizer(_SQL),
        SQLExecutor(_DATASET.db),
        SingleCallGenerator(lm, aggregation=True),
    )


def _stream(duplicate_rate: float) -> list[str]:
    """``REQUESTS`` questions over ``distinct`` underlying questions.

    Repeat ``r`` of a question uses surface mangler ``r % 4``, so a
    duplicate-heavy stream mixes verbatim repeats, canonical-equal
    re-phrasings, and near-paraphrases.
    """
    distinct = max(1, round(REQUESTS * (1.0 - duplicate_rate)))
    return [
        _MANGLERS[(index // distinct) % len(_MANGLERS)](
            _question(index % distinct)
        )
        for index in range(REQUESTS)
    ]


class _Run:
    """Aggregate of one stream served as successive windows."""

    def __init__(self, reports) -> None:
        self.reports = reports

    @property
    def answers(self) -> list[object]:
        return [a for report in self.reports for a in report.answers()]

    @property
    def ok(self) -> bool:
        return all(r.ok for rep in self.reports for r in rep.results)

    @property
    def simulated_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.reports)

    @property
    def goodput_rps(self) -> float:
        answered = sum(
            r.ok for rep in self.reports for r in rep.results
        )
        return answered / self.simulated_seconds

    @property
    def tokens(self) -> int:
        return sum(
            r.usage.prompt_tokens + r.usage.output_tokens
            for r in self.reports
        )

    def meter(self, name: str) -> int:
        return sum(
            getattr(r.usage, f"semcache_{name}") for r in self.reports
        )


def _serve(requests: list[str], threshold: float | None) -> _Run:
    cache = (
        None
        if threshold is None
        else SemanticResultCache(capacity=256, threshold=threshold)
    )
    server = TagServer(
        _factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=4,
        window=4,
        semantic_cache=cache,
    )
    return _Run(
        [
            server.serve(requests[start : start + WINDOW_REQUESTS])
            for start in range(0, len(requests), WINDOW_REQUESTS)
        ]
    )


def test_duplicate_rate_threshold_sweep(benchmark):
    """Acceptance: cache-on strictly dominates cache-off on goodput and
    LM tokens at every positive duplicate rate, with zero wrong-answer
    cache hits anywhere in the sweep."""

    def sweep():
        cells = {}
        for rate in DUPLICATE_RATES:
            requests = _stream(rate)
            baseline = _serve(requests, threshold=None)
            for threshold in THRESHOLDS:
                cells[(rate, threshold)] = (
                    baseline,
                    _serve(requests, threshold=threshold),
                )
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"E20 semantic serving cache, {REQUESTS} requests, "
        "4 workers, window 4:",
        "",
        "  dup-rate  thresh   goodput off->on   tokens off->on"
        "   exact  near  miss",
    ]
    for (rate, threshold), (baseline, cached) in cells.items():
        lines.append(
            f"  {rate:8.2f}  {threshold:6.2f}  "
            f"{baseline.goodput_rps:7.2f} -> {cached.goodput_rps:7.2f}"
            f"  {baseline.tokens:6d} -> {cached.tokens:6d}"
            f"  {cached.meter('hits'):6d}"
            f"  {cached.meter('near_hits'):4d}"
            f"  {cached.meter('misses'):4d}"
        )
    write_artifact("semcache_sweep.txt", "\n".join(lines))

    for (rate, threshold), (baseline, cached) in cells.items():
        # Zero wrong-answer hits: byte-identical answers, index by
        # index, against the cache-off run of the same stream.
        assert cached.answers == baseline.answers, (rate, threshold)
        assert cached.ok
        if rate == 0.0:
            # All-distinct stream: the cache is pure overhead-free
            # bookkeeping — same tokens, same simulated time.
            assert cached.meter("hits") == 0
            assert cached.tokens == baseline.tokens
            assert (
                cached.simulated_seconds == baseline.simulated_seconds
            )
        else:
            hits = cached.meter("hits") + cached.meter("near_hits")
            assert hits > 0, (rate, threshold)
            assert cached.goodput_rps > baseline.goodput_rps, (
                rate,
                threshold,
            )
            assert cached.tokens < baseline.tokens, (rate, threshold)


@pytest.mark.skipif(SMOKE, reason="full sweep only")
def test_lower_threshold_catches_more_paraphrases(benchmark):
    """Near hits grow monotonically as the threshold loosens: the
    paraphrase variant scores between the extremes, so it flips from
    miss to near hit somewhere inside the sweep."""
    requests = _stream(0.75)

    def run():
        return {
            threshold: _serve(requests, threshold=threshold)
            for threshold in THRESHOLDS
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    near = [
        reports[threshold].meter("near_hits")
        for threshold in sorted(THRESHOLDS)
    ]
    for looser, tighter in zip(near, near[1:]):
        assert looser >= tighter
    assert near[0] > near[-1]
