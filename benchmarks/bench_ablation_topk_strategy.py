"""E11 — ablation: sem_topk strategy (pairwise quickselect vs scoring).

LOTUS implements several top-k algorithms; ours offers pairwise
quickselect (the default, used by the benchmark pipelines) and a
single-batch absolute-scoring sort.  This ablation compares their LM
cost and their exact-match agreement with the gold ordering over the
benchmark's reasoning ranking queries.
"""

from repro.bench.evaluate import exact_match
from repro.bench.queries import PipelineContext
from repro.bench.suites.match import _top_posts
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators
from repro.text.technicality import technicality_score

from benchmarks.conftest import write_artifact


def _run(method: str, datasets):
    lm = SimulatedLM(LMConfig(seed=0))
    ops = SemanticOperators(lm, batch_size=32)
    posts = datasets["codebase_community"].frame("posts")
    correct = 0
    trials = 0
    for pool_size in (5, 8, 10, 12, 15):
        pool = _top_posts(posts, pool_size)
        got = ops.sem_topk(
            pool, "Which {Title} is most technical?", 3, method=method
        )["Title"].tolist()
        gold = [
            title
            for _, title in sorted(
                (
                    (technicality_score(str(t)), t)
                    for t in pool["Title"].tolist()
                ),
                key=lambda pair: pair[0],
                reverse=True,
            )
        ][:3]
        trials += 1
        correct += exact_match(got, gold, ordered=True)
    return correct / trials, lm.usage.calls, lm.usage.simulated_seconds


def test_topk_strategies(benchmark, datasets):
    quick = benchmark.pedantic(
        lambda: _run("quickselect", datasets), rounds=1, iterations=1
    )
    score = _run("score", datasets)

    write_artifact(
        "ablation_topk_strategy.txt",
        "sem_topk strategy (top-3 technicality over growing pools):\n"
        f"  quickselect: EM={quick[0]:.2f} calls={quick[1]:3d} "
        f"ET={quick[2]:.2f}s\n"
        f"  score:       EM={score[0]:.2f} calls={score[1]:3d} "
        f"ET={score[2]:.2f}s",
    )
    # Scoring costs exactly one call per row; quickselect costs more
    # comparisons but never fewer than n-1 for the first partition.
    assert score[1] == 5 + 8 + 10 + 12 + 15
    assert quick[1] >= score[1] - 5
    assert quick[0] >= 0.2 and score[0] >= 0.2
