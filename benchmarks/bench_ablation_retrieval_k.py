"""E6 — ablation: RAG retrieval depth k.

The paper fixes k=10 retrieved rows.  This ablation sweeps k and shows
the structural result behind RAG's 0.00 accuracy: deeper retrieval
raises ET but cannot lift exact-match accuracy, because point lookups
plus in-context computation cannot replace exact computation over the
full table.
"""

import pytest

from repro.bench.runner import run_benchmark
from repro.lm import LMConfig, SimulatedLM
from repro.methods import RAGMethod

from benchmarks.conftest import write_artifact

KS = (1, 5, 10, 20, 50)


def _rag_run(k: int, suite, datasets):
    queries = [s for s in suite if s.query_type != "aggregation"]
    method = RAGMethod(SimulatedLM(LMConfig(seed=0)), k=k)
    report = run_benchmark(
        seed=0, methods=[method], queries=queries, datasets=datasets
    )
    return report.accuracy("RAG"), report.mean_et("RAG")


@pytest.mark.parametrize("k", (5, 10, 20))
def test_rag_k(benchmark, k, suite, datasets):
    accuracy, et = benchmark.pedantic(
        lambda: _rag_run(k, suite, datasets), rounds=1, iterations=1
    )
    print(f"\nk={k}: accuracy={accuracy:.2f} ET={et:.2f}s")


def test_rag_depth_cannot_buy_accuracy(benchmark, suite, datasets):
    rows = benchmark.pedantic(
        lambda: {k: _rag_run(k, suite, datasets) for k in KS},
        rounds=1,
        iterations=1,
    )
    lines = ["RAG accuracy / ET vs retrieval depth k:"]
    lines += [
        f"  k={k:3d}  EM={accuracy:.2f}  ET={et:6.2f}s"
        for k, (accuracy, et) in rows.items()
    ]
    write_artifact("ablation_retrieval_k.txt", "\n".join(lines))

    # Accuracy stays pinned near zero at every depth ...
    assert all(accuracy <= 0.10 for accuracy, _ in rows.values())
    # ... while cost grows with k.
    assert rows[50][1] > rows[5][1]
