"""E9 — ablation: BIRD-style External Knowledge (evidence).

The paper's Text2SQL prompt carries an ``-- External Knowledge:`` line
that its runs leave as "None".  This ablation supplies *oracle*
evidence (the exact world knowledge each question needs, as BIRD's
evidence field would) and measures how far it lifts Text2SQL —
separating Text2SQL's *knowledge* gap (fixable by evidence) from its
*reasoning* gap (not fixable: no SQL equivalent exists).
"""

from repro.bench.external_knowledge import oracle_external_knowledge
from repro.bench.runner import run_benchmark
from repro.lm import LMConfig, SimulatedLM
from repro.methods import Text2SQLMethod

from benchmarks.conftest import write_artifact


def _accuracy(provider, suite, datasets, capability):
    queries = [
        s
        for s in suite
        if s.capability == capability and s.query_type != "aggregation"
    ]
    method = Text2SQLMethod(
        SimulatedLM(LMConfig(seed=0)),
        external_knowledge_provider=provider,
    )
    report = run_benchmark(
        seed=0, methods=[method], queries=queries, datasets=datasets
    )
    return report.accuracy("Text2SQL")


def test_external_knowledge_ablation(benchmark, suite, datasets):
    results = benchmark.pedantic(
        lambda: {
            ("knowledge", "none"): _accuracy(
                None, suite, datasets, "knowledge"
            ),
            ("knowledge", "oracle"): _accuracy(
                oracle_external_knowledge, suite, datasets, "knowledge"
            ),
            ("reasoning", "none"): _accuracy(
                None, suite, datasets, "reasoning"
            ),
            ("reasoning", "oracle"): _accuracy(
                oracle_external_knowledge, suite, datasets, "reasoning"
            ),
        },
        rounds=1,
        iterations=1,
    )
    lines = ["Text2SQL exact match with/without oracle evidence:"]
    for (capability, evidence), accuracy in results.items():
        lines.append(
            f"  {capability:10s} evidence={evidence:6s} EM={accuracy:.2f}"
        )
    write_artifact("ablation_external_knowledge.txt", "\n".join(lines))

    # Evidence helps knowledge queries materially ...
    assert results[("knowledge", "oracle")] >= (
        results[("knowledge", "none")] + 0.10
    )
    # ... but cannot rescue reasoning queries (no SQL equivalent).
    assert results[("reasoning", "oracle")] <= 0.10
