"""E17 — cost-based plan choice for LM-heavy queries.

E16 showed that *batching* collapses LM cost with duplication; this
experiment shows that *plan choice* matters on top of it.  The sweep
crosses cheap-predicate selectivity x duplication on a fault-free
judgment workload and compares three plans for the same query:

* ``per-row``   — ``optimize=False, udf_batch_size=None``: the naive
  oracle, one fused written-order predicate, one LM call per row;
* ``batch=16``  — a hand-pinned morsel size with no cheap tier
  registered (what a careful caller wrote before the optimizer
  existed: batched, deduplicated, memoized — but no cascade and no
  cost-derived batch size);
* ``optimized`` — the defaults: the optimizer reorders the cheap
  predicate ahead of the LM predicate, derives ``udf_batch_size`` from
  the distinct-value bound, and routes through the cheap-classifier
  cascade tier.

The cascade's cheap tier here is a lookup table distilled offline from
a probe model: judgment answers are a deterministic function of the
prompt, so probing a separate ``SimulatedLM`` with the same seed
yields verdicts that provably agree with the measured model — sound by
construction — over a covered subset of values (deterministic
character-sum coverage, never ``hash()``).  Distillation happens at
setup time and is not part of the measured query, matching how a real
cascade amortizes a distilled classifier across queries.

Cost accounting: the expensive tier is measured in simulated LM
seconds (virtual clock); cheap-tier calls are priced at the cost
model's token ratio (cheap/expensive tokens per call) times the
measured per-call seconds of the *batched* baseline on the same
configuration — cheap cascade calls are batched dispatches, so the
fair reference is a batched expensive call, and the cascade still
cannot win by getting its cheap work for free.

Headline acceptance: the optimized plan strictly beats BOTH baselines
on total LM virtual time in every configuration, and by >= 1.5x
against the hand-batched plan on the all-unique unselective
configuration — the regime where dedup and the cheap predicate cannot
help, so only the cascade cuts LM work.  (At high duplication the
margin narrows: escalations form small LM batches that amortize
overhead worse than the baseline's full morsels.)

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
verification runs (``make verify``).
"""

import os

import pytest

from repro.analysis.cost import CostModel
from repro.db import Column, Database, DataType, TableSchema
from repro.lm import SimulatedLM, register_llm_judge
from repro.lm.udf import judgment_udf_prompt

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
ROWS = 96 if SMOKE else 384
#: Fraction of rows the cheap deterministic predicate keeps.
SELECTIVITY = (1.0, 0.25) if SMOKE else (1.0, 0.5, 0.25)
#: rows per distinct value; 1 = all unique, 16 = duplicate-heavy.
DUPLICATION = (1, 4) if SMOKE else (1, 4, 16)
#: The distilled cheap tier covers values with character-sum % 5 < 4
#: (~80% of distinct values, mixing covered and escalated).
COVERAGE_MOD, COVERAGE_KEEP = 5, 4

TASK = "a positive review"
PLANS = ("per-row", "batch=16", "optimized")


def _covered(value: str) -> bool:
    """Deterministic coverage choice (DET-safe: no ``hash()``)."""
    return (
        sum(ord(character) for character in value) % COVERAGE_MOD
        < COVERAGE_KEEP
    )


def _distill_cheap_tier(values: list[str]):
    """Offline distillation: probe a same-seed model for the covered
    values and freeze the verdicts into a lookup table."""
    probe = SimulatedLM()
    table = {
        value: probe.complete(
            judgment_udf_prompt(TASK, value), max_tokens=4
        ).text
        for value in values
        if _covered(value)
    }

    def cheap(task, value):
        if task != TASK:
            return None
        return table.get(value)

    return cheap


def _build(duplication: int, cascade: bool):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("s", DataType.TEXT),
                Column("n", DataType.INTEGER),
            ],
        )
    )
    distinct = max(1, ROWS // duplication)
    values = [f"review text #{index}" for index in range(distinct)]
    db.insert(
        "t",
        [(values[index % distinct], index) for index in range(ROWS)],
    )
    lm = SimulatedLM()
    cheap = _distill_cheap_tier(values) if cascade else None
    register_llm_judge(db, lm, cheap=cheap)
    return db, lm


def _sql(selectivity: float) -> str:
    threshold = int(ROWS * selectivity)
    return (
        f"SELECT s, n FROM t WHERE n < {threshold} "
        f"AND LLM('{TASK}', s) = 'yes' ORDER BY n"
    )


def _run(selectivity: float, duplication: int, plan: str):
    cascade = plan == "optimized"
    db, lm = _build(duplication, cascade)
    sql = _sql(selectivity)
    if plan == "per-row":
        result = db.execute(sql, optimize=False, udf_batch_size=None)
    elif plan == "batch=16":
        result = db.execute(sql, udf_batch_size=16)
    else:
        result = db.execute(sql)
    return result.rows, lm.usage.snapshot()


def _total_seconds(usage, batched_call_seconds: float) -> float:
    """Expensive virtual seconds plus the priced cheap tier."""
    model = CostModel()
    cheap_calls = usage.cascade_cheap_hits + usage.cascade_escalations
    cheap_ratio = model.cheap_tokens_per_call / model.tokens_per_call
    return usage.simulated_seconds + (
        cheap_calls * batched_call_seconds * cheap_ratio
    )


def _sweep():
    runs = {}
    for selectivity in SELECTIVITY:
        for duplication in DUPLICATION:
            for plan in PLANS:
                runs[(selectivity, duplication, plan)] = _run(
                    selectivity, duplication, plan
                )
    return runs


def _totals(runs):
    totals = {}
    for selectivity in SELECTIVITY:
        for duplication in DUPLICATION:
            batched = runs[(selectivity, duplication, "batch=16")][1]
            per_call = batched.simulated_seconds / max(batched.calls, 1)
            for plan in PLANS:
                usage = runs[(selectivity, duplication, plan)][1]
                totals[(selectivity, duplication, plan)] = (
                    _total_seconds(usage, per_call)
                )
    return totals


def _render(runs, totals) -> str:
    lines = [
        f"E17: LM-aware plan choice, {ROWS} rows, "
        f"cheap-tier coverage {COVERAGE_KEEP}/{COVERAGE_MOD} "
        "of distinct values",
        "query: SELECT s, n FROM t WHERE n < T "
        "AND LLM('a positive review', s) = 'yes' ORDER BY n",
        "",
        "  sel   dup  plan       total-LM-s  exp-calls  cheap-hits"
        "  escalated  vs per-row",
    ]
    for (selectivity, duplication, plan), (_, usage) in runs.items():
        total = totals[(selectivity, duplication, plan)]
        baseline = totals[(selectivity, duplication, "per-row")]
        lines.append(
            f"  {selectivity:4.2f}  {duplication:3d}  {plan:<9s}"
            f"  {total:10.2f}"
            f"  {usage.calls:9d}"
            f"  {usage.cascade_cheap_hits:10d}"
            f"  {usage.cascade_escalations:9d}"
            f"  {baseline / total:9.1f}x"
        )
    return "\n".join(lines)


def test_optimized_plan_beats_both_baselines(benchmark):
    """Acceptance: identical rows on every plan; the optimized plan is
    strictly cheaper than per-row AND hand-batched in every
    configuration, >= 1.5x vs hand-batched on the all-unique
    unselective one (where only the cascade can cut LM work)."""
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    totals = _totals(runs)
    write_artifact("optimizer_plan_choice.txt", _render(runs, totals))

    for selectivity in SELECTIVITY:
        for duplication in DUPLICATION:
            oracle_rows = runs[(selectivity, duplication, "per-row")][0]
            for plan in PLANS:
                assert (
                    runs[(selectivity, duplication, plan)][0]
                    == oracle_rows
                ), (selectivity, duplication, plan)
            optimized = totals[(selectivity, duplication, "optimized")]
            assert optimized < totals[
                (selectivity, duplication, "per-row")
            ], (selectivity, duplication)
            assert optimized < totals[
                (selectivity, duplication, "batch=16")
            ], (selectivity, duplication)

    headline = (max(SELECTIVITY), min(DUPLICATION))
    ratio = (
        totals[(*headline, "batch=16")]
        / totals[(*headline, "optimized")]
    )
    assert ratio >= 1.5


def test_cascade_expensive_calls_shrink_with_coverage(benchmark):
    """The optimized plan escalates only uncovered distinct values, so
    its expensive-call count is strictly below the hand-batched plan's
    (which pays one call per distinct value)."""
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for selectivity in SELECTIVITY:
        for duplication in DUPLICATION:
            batched = runs[(selectivity, duplication, "batch=16")][1]
            optimized = runs[(selectivity, duplication, "optimized")][1]
            assert 0 < optimized.calls < batched.calls
            assert optimized.calls == optimized.cascade_escalations
            assert optimized.cascade_cheap_hits > 0


@pytest.mark.skipif(SMOKE, reason="full sweep only")
def test_sweep_is_deterministic(benchmark):
    first = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    totals = _totals(first)
    again = _sweep()
    assert _render(first, totals) == _render(again, _totals(again))
