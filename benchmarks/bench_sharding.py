"""E21 — sharded scan+UDF execution: shard-count x fault-rate sweep.

Partitioned tables run their scan, cheap filters, and batched-UDF
morsels as per-shard pipelines on threads; concurrent shards' morsels
meet at the :class:`~repro.serve.BatchingLM` flush barrier and coalesce
into bigger accelerator batches, which amortize the per-batch overhead
and raise effective parallelism toward the latency model's
``max_parallel``.  The accelerator makespan — the serving layer's
:class:`~repro.serve.clock.VirtualClock` — is the ET metric, exactly as
in the serving experiments.

Fault axis.  The sweep injects ``latency_spike`` faults (a pure hash of
``(seed, prompt, attempt)``, so the schedule is identical at every
shard and worker count).  Error-kind faults are E14's axis and are
deliberately not swept here: a would-error prompt rejects its whole
micro-batch by the :class:`~repro.lm.faults.FaultyLM` batch contract,
and the replay de-batches the flush — a blast-radius effect whose cost
grows with batch size and would swamp the scheduling comparison this
experiment isolates.

Headline acceptance: >= 3x makespan speedup at 8 shards vs 1 shard at
a fixed fault rate, with byte-identical result rows, row order, and
invariant Usage counters (calls, tokens, cache and fault counters)
across every (shards, workers) cell.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
verification runs (``make verify``).
"""

import os

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.lm import SimulatedLM, register_llm_judge
from repro.lm.faults import FaultPlan, FaultyLM
from repro.serve.batching import BatchingLM
from repro.serve.clock import VirtualClock

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
ROWS = 64 if SMOKE else 320
#: (shards, workers) cells; shard 1 / worker 1 is the baseline.
CELLS = ((1, 1), (8, 8)) if SMOKE else ((1, 1), (2, 2), (4, 4), (8, 8))
FAULT_RATES = (0.0, 0.1) if SMOKE else (0.0, 0.1, 0.25)
#: Flush window larger than any coalesced wave, so micro-batch size is
#: limited by what the shards submit, not by the scheduler cap.
WINDOW = 64
UDF_BATCH = 8

SQL = "SELECT s, LLM('a positive review', s) AS judged FROM t ORDER BY n"

#: Usage fields that must be byte-identical across cells at a fixed
#: fault rate.  ``batches``/``simulated_seconds`` are excluded by
#: design: coalesced flushes ARE the speedup being measured.
INVARIANT = (
    "calls",
    "prompt_tokens",
    "output_tokens",
    "udf_cache_hits",
    "udf_cache_misses",
    "faults_injected",
)


def _run(shards: int, workers: int, fault_rate: float):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("n", DataType.INTEGER),
                Column("s", DataType.TEXT),
            ],
        )
    )
    db.insert("t", [(i, f"review text #{i}") for i in range(ROWS)])
    clock = VirtualClock()
    plan = FaultPlan(seed=7, latency_spike_rate=fault_rate)
    lm = BatchingLM(FaultyLM(SimulatedLM(), plan), window=WINDOW, clock=clock)
    register_llm_judge(db, lm)
    db.set_partitioning("t", "n", shards=shards)
    db.configure_sharding(workers=workers, lm=lm)
    result = db.execute(SQL, udf_batch_size=UDF_BATCH)
    usage = lm.usage
    return (
        result.rows,
        clock.now(),
        {name: getattr(usage, name) for name in INVARIANT},
    )


def _sweep():
    return {
        (shards, workers, rate): _run(shards, workers, rate)
        for rate in FAULT_RATES
        for shards, workers in CELLS
    }


def _render(runs) -> str:
    lines = [
        f"E21: sharded scan+UDF execution, {ROWS} rows, "
        f"udf_batch_size={UDF_BATCH}, window={WINDOW}",
        f"query: {SQL}",
        "",
        "  fault  shards  workers  makespan-s  speedup  calls  faults",
    ]
    for (shards, workers, rate), (_, makespan, usage) in runs.items():
        baseline = runs[(*CELLS[0], rate)][1]
        lines.append(
            f"  {rate:5.2f}  {shards:6d}  {workers:7d}"
            f"  {makespan:10.3f}  {baseline / makespan:6.2f}x"
            f"  {usage['calls']:5d}  {usage['faults_injected']:6d}"
        )
    return "\n".join(lines)


def test_shard_x_fault_sweep(benchmark):
    """Acceptance: every cell returns byte-identical rows and invariant
    counters; 8 shards are >= 3x faster than 1 at every fault rate."""
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_artifact("sharding.txt", _render(runs))

    for rate in FAULT_RATES:
        base_rows, base_makespan, base_usage = runs[(*CELLS[0], rate)]
        for shards, workers in CELLS[1:]:
            rows, makespan, usage = runs[(shards, workers, rate)]
            assert rows == base_rows, (shards, workers, rate)
            assert usage == base_usage, (shards, workers, rate)
        top_makespan = runs[(*CELLS[-1], rate)][1]
        assert base_makespan / top_makespan >= 3.0

    # The fault schedule is pure in (seed, prompt, attempt): raising
    # the rate injects strictly more spikes, never different rows.
    healthy_rows = runs[(*CELLS[0], FAULT_RATES[0])][0]
    for rate in FAULT_RATES[1:]:
        assert runs[(*CELLS[0], rate)][0] == healthy_rows
        assert runs[(*CELLS[0], rate)][2]["faults_injected"] > 0


@pytest.mark.skipif(SMOKE, reason="full sweep only")
def test_sweep_is_deterministic(benchmark):
    first = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert _render(first) == _render(_sweep())
