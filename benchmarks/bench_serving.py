"""E13 — serving throughput: micro-batch window x concurrency sweep.

The paper credits hand-written TAG's low ET to vLLM-style batched
inference (§4.3); a *server* gets the same win across concurrent
requests by coalescing their LM calls into micro-batches
(:mod:`repro.serve`).  This benchmark sweeps the micro-batch window and
the worker count over a fixed request stream and reports simulated
requests/sec — deterministic, machine-independent numbers from the
virtual clock.

Expected shape: throughput grows monotonically with the window up to
the latency model's ``max_parallel`` (16), then flattens; at window 1
micro-batching is off and every request pays full per-call overhead.
"""

import pytest

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.serve import TagServer

from benchmarks.conftest import write_artifact

WINDOWS = (1, 2, 4, 8, 16)
WORKER_COUNTS = (1, 4, 16)
REQUESTS = 32

_DATASET = movies.build()
_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


def _factory(lm) -> TAGPipeline:
    return TAGPipeline(
        FixedQuerySynthesizer(_SQL),
        SQLExecutor(_DATASET.db),
        SingleCallGenerator(lm, aggregation=True),
    )


def _requests() -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(REQUESTS)
    ]


def _serve(workers: int, window: int):
    server = TagServer(
        _factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=workers,
        window=window,
    )
    return server.serve(_requests())


@pytest.mark.parametrize("window", WINDOWS)
def test_window_sweep(benchmark, window):
    report = benchmark.pedantic(
        lambda: _serve(workers=16, window=window),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nwindow={window}: {report.throughput_rps:.2f} req/s "
        f"({report.simulated_seconds:.2f}s simulated)"
    )
    assert all(result.ok for result in report.results)


def test_serving_throughput_monotone(benchmark):
    """Acceptance: throughput improves monotonically window 1 -> optimal."""
    reports = benchmark.pedantic(
        lambda: {
            window: _serve(workers=16, window=window)
            for window in WINDOWS
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        f"TAG serving throughput, {REQUESTS} requests, 16 workers:",
        "",
        "  window   req/s   simulated-s   LM batches",
    ]
    lines += [
        f"  {window:6d}  {report.throughput_rps:6.2f}  "
        f"{report.simulated_seconds:11.2f}  {report.usage.batches:10d}"
        for window, report in reports.items()
    ]
    throughputs = [
        reports[window].throughput_rps for window in WINDOWS
    ]
    speedup = throughputs[-1] / throughputs[0]
    lines.append(f"\n  window-1 -> window-16 speedup: {speedup:.1f}x")

    concurrency_lines = ["", "Worker sweep at window 16:"]
    for workers in WORKER_COUNTS:
        report = _serve(workers=workers, window=16)
        concurrency_lines.append(
            f"  workers={workers:3d}  {report.throughput_rps:6.2f} req/s"
        )
    write_artifact(
        "serving_throughput.txt",
        "\n".join(lines + concurrency_lines),
    )

    # Strictly monotone up to the latency model's parallelism cap.
    for narrower, wider in zip(throughputs, throughputs[1:]):
        assert wider > narrower
    # Batching is the dominant serving win, as in the paper's §4.3.
    assert speedup >= 4.0
    # Every answer stays identical to the unbatched deployment's.
    answers = {
        window: report.answers() for window, report in reports.items()
    }
    assert all(
        answers[window] == answers[1] for window in WINDOWS
    )


def test_concurrency_without_batching_is_no_faster(benchmark):
    """Workers alone don't help: one simulated accelerator serializes
    unbatched calls, so the win must come from micro-batching."""
    solo, pooled = benchmark.pedantic(
        lambda: (_serve(workers=1, window=1), _serve(workers=16, window=1)),
        rounds=1,
        iterations=1,
    )
    assert pooled.throughput_rps == pytest.approx(
        solo.throughput_rps, rel=0.01
    )
