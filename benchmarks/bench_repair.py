"""E18 — self-correction under bad generations: fault rate x repair budget.

E14 covered *transport* failures (timeouts, rate limits) with retries;
this experiment covers *generation* failures — the LM returns
plausible-but-broken SQL (``malformed_sql`` faults garble the
synthesized query) and a plain pipeline turns every one into a terminal
error.  The self-correcting pipeline
(:class:`repro.core.repair.SelfCorrectingPipeline`) instead feeds the
failed SQL plus the analyzer/engine diagnostics back into a repair
prompt and retries, up to ``max_repairs`` times.

The sweep runs the Text2SQL baseline over the formula_1 suite questions
under a fixed deterministic fault schedule and varies the repair
budget.  Expected shape: failures fall as the budget grows (each repair
re-draws the fault schedule on a fresh prompt, so even repairs can be
garbled — budget 2 absorbs one garbled repair); the price is LM calls
and simulated seconds.  Two properties are asserted, not just plotted:

- budget 0 reproduces the one-shot baseline byte-for-byte (answers,
  errors, usage) — the loop is pay-for-what-you-use;
- whenever a repair succeeds, the answer equals the healthy-run oracle
  answer — repair restores the *correct* query, it does not invent a
  different one.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
verification runs (``make verify``).
"""

import os

from repro.bench.suite import build_suite
from repro.data import load_domain
from repro.lm import FaultPlan, FaultyLM, LMConfig, SimulatedLM
from repro.methods.text2sql import Text2SQLMethod

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
FAULT_RATES = (0.0, 0.6) if SMOKE else (0.0, 0.3, 0.6)
REPAIR_BUDGETS = (0, 2) if SMOKE else (0, 1, 2)
FAULT_SEED = 5

_DATASET = load_domain("formula_1", seed=0)
_SPECS = [spec for spec in build_suite() if spec.domain == "formula_1"]


def _run(rate: float, max_repairs: int):
    """One sweep cell: every formula_1 question under one fault rate
    and one repair budget.  Returns (per-question results, usage)."""
    lm = FaultyLM(
        SimulatedLM(LMConfig(seed=0)),
        FaultPlan(seed=FAULT_SEED, malformed_sql_rate=rate),
    )
    method = Text2SQLMethod(lm, max_repairs=max_repairs)
    results = [method.answer(spec, _DATASET) for spec in _SPECS]
    return results, lm.usage


def _sweep():
    return {
        (rate, budget): _run(rate, budget)
        for rate in FAULT_RATES
        for budget in REPAIR_BUDGETS
    }


def _failures(results) -> int:
    return sum(1 for result in results if not result.ok)


def _render(reports) -> str:
    lines = [
        f"Text2SQL self-correction, {len(_SPECS)} formula_1 questions, "
        f"malformed-SQL fault seed {FAULT_SEED}:",
        "",
        "  rate  repairs  failed  attempts  repaired  exhausted"
        "  faults   sim-s",
    ]
    for (rate, budget), (results, usage) in reports.items():
        lines.append(
            f"  {rate:4.2f}  {budget:7d}  {_failures(results):6d}"
            f"  {usage.repair_attempts:8d}"
            f"  {usage.repair_successes:8d}"
            f"  {usage.repair_exhausted:9d}"
            f"  {usage.faults_injected:6d}"
            f"  {usage.simulated_seconds:6.1f}"
        )
    return "\n".join(lines)


def test_zero_budget_reproduces_one_shot_behavior(benchmark):
    """Acceptance: ``max_repairs=0`` is byte-identical to the plain
    (pre-repair) Text2SQL method under the same fault schedule —
    answers, errors, per-question timings, and the full usage meter."""

    def both():
        guarded, guarded_usage = _run(0.6, 0)
        lm = FaultyLM(
            SimulatedLM(LMConfig(seed=0)),
            FaultPlan(seed=FAULT_SEED, malformed_sql_rate=0.6),
        )
        baseline_method = Text2SQLMethod(lm)  # today's default: no loop
        baseline = [baseline_method.answer(spec, _DATASET) for spec in _SPECS]
        return guarded, guarded_usage, baseline, lm.usage

    guarded, guarded_usage, baseline, baseline_usage = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert guarded == baseline
    assert guarded_usage == baseline_usage
    assert guarded_usage.repair_attempts == 0


def test_fault_rate_x_repair_budget_sweep(benchmark):
    """Acceptance: at every nonzero fault rate, ``max_repairs=2``
    recovers at least half of the previously-terminal failures, repaired
    answers equal the healthy-run oracle answers, and the sweep is
    byte-identical across runs."""
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = _render(reports)
    write_artifact("repair.txt", table)

    # Deterministic fault schedules and repair prompts: re-running the
    # sweep reproduces every number, so the artifact is byte-identical.
    assert _render(_sweep()) == table

    oracle, oracle_usage = reports[(0.0, 0)]
    assert _failures(oracle) == 0
    assert oracle_usage.faults_injected == 0

    for rate in FAULT_RATES:
        unrepaired, _ = reports[(rate, 0)]
        repaired, repaired_usage = reports[(rate, max(REPAIR_BUDGETS))]
        terminal = _failures(unrepaired)
        remaining = _failures(repaired)
        if rate == 0.0:
            # Healthy model: the loop never fires and costs nothing —
            # usage is identical at every budget.
            for budget in REPAIR_BUDGETS:
                _, usage = reports[(rate, budget)]
                assert usage == oracle_usage
            continue
        assert terminal > 0
        # The headline: budget 2 recovers >= half of the one-shot
        # failures.
        assert (terminal - remaining) * 2 >= terminal
        assert repaired_usage.repair_attempts > 0
        assert repaired_usage.repair_successes > 0
        # Failures never increase with budget.
        failure_curve = [
            _failures(reports[(rate, budget)][0])
            for budget in REPAIR_BUDGETS
        ]
        assert failure_curve == sorted(failure_curve, reverse=True)
        # A successful repair restores the *oracle* answer — for every
        # budget, every answered question matches the healthy run.
        for budget in REPAIR_BUDGETS:
            results, _ = reports[(rate, budget)]
            for result, expected in zip(results, oracle):
                if result.ok:
                    assert result.answer == expected.answer


def test_repairs_trade_simulated_seconds_for_answers(benchmark):
    """Each recovered answer is paid for in repair prompts: simulated
    seconds grow monotonically with the budget at a fixed fault rate."""
    rate = max(FAULT_RATES)
    reports = benchmark.pedantic(
        lambda: {b: _run(rate, b) for b in REPAIR_BUDGETS},
        rounds=1,
        iterations=1,
    )
    seconds = [
        reports[budget][1].simulated_seconds for budget in REPAIR_BUDGETS
    ]
    assert seconds == sorted(seconds)
    assert seconds[-1] > seconds[0]
