"""E16 — batched/deduplicated/memoized LM UDFs inside the SQL engine.

The per-row UDF path pays one synchronous ``complete()`` per row
occurrence; the vectorized path (``udf_batch_size=N``) collects a
morsel of rows, deduplicates the distinct argument tuples, and issues
one ``complete_batch()`` — so its LM cost scales with *distinct*
values per morsel, not rows.  This experiment sweeps batch size x
duplication factor on a judgment workload (the paper's Figure 1 ``LLM``
UDF shape) and reports simulated LM seconds per configuration, plus
the dispatched-call accounting (``udf_cache_misses``) that explains
the shape: virtual time tracks dispatched work, and dispatched work
collapses with duplication.

Headline acceptance: >= 5x virtual-time speedup at batch 64 on the
duplicate-heavy workload vs the per-row oracle, with byte-identical
result rows.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the sweep for CI-style
verification runs (``make verify``).
"""

import os

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.lm import SimulatedLM, register_llm_judge

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
ROWS = 64 if SMOKE else 512
BATCH_SIZES = (1, 64) if SMOKE else (1, 8, 64)
#: rows per distinct value; 1 = all unique, 16 = duplicate-heavy.
DUPLICATION = (1, 16) if SMOKE else (1, 4, 16)

SQL = "SELECT s, LLM('a positive review', s) AS judged FROM t ORDER BY n"


def _build(duplication: int) -> tuple[Database, SimulatedLM]:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("s", DataType.TEXT),
                Column("n", DataType.INTEGER),
            ],
        )
    )
    distinct = max(1, ROWS // duplication)
    db.insert(
        "t",
        [(f"review text #{index % distinct}", index) for index in range(ROWS)],
    )
    lm = SimulatedLM()
    register_llm_judge(db, lm)
    return db, lm


def _run(duplication: int, udf_batch_size: int | None):
    db, lm = _build(duplication)
    result = db.execute(SQL, udf_batch_size=udf_batch_size)
    return result.rows, lm.usage.snapshot()


def _sweep():
    runs = {}
    for duplication in DUPLICATION:
        runs[(duplication, None)] = _run(duplication, None)
        for batch_size in BATCH_SIZES:
            runs[(duplication, batch_size)] = _run(duplication, batch_size)
    return runs


def _render(runs) -> str:
    lines = [
        f"E16: LM-UDF execution path, {ROWS} rows, query: {SQL}",
        "",
        "  dup  path       LM-s     calls  batches  udf-hits  udf-miss"
        "  speedup",
    ]
    for (duplication, batch_size), (_, usage) in runs.items():
        baseline = runs[(duplication, None)][1].simulated_seconds
        path = "per-row" if batch_size is None else f"batch={batch_size}"
        speedup = baseline / usage.simulated_seconds
        lines.append(
            f"  {duplication:3d}  {path:<9s}"
            f"  {usage.simulated_seconds:7.2f}"
            f"  {usage.calls:6d}"
            f"  {usage.batches:7d}"
            f"  {usage.udf_cache_hits:8d}"
            f"  {usage.udf_cache_misses:8d}"
            f"  {speedup:6.1f}x"
        )
    return "\n".join(lines)


def test_batch_size_x_duplication_sweep(benchmark):
    """Acceptance: every configuration returns byte-identical rows;
    the duplicate-heavy batch-64 path is >= 5x faster in virtual time."""
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_artifact("udf_batching.txt", _render(runs))

    for duplication in DUPLICATION:
        oracle_rows, oracle_usage = runs[(duplication, None)]
        for batch_size in BATCH_SIZES:
            rows, usage = runs[(duplication, batch_size)]
            assert rows == oracle_rows
            # The batched path never dispatches more than the per-row
            # path's call count, and never more than distinct values.
            assert usage.calls <= oracle_usage.calls
            assert usage.calls == usage.udf_cache_misses

    heavy = max(DUPLICATION)
    baseline = runs[(heavy, None)][1].simulated_seconds
    batched = runs[(heavy, max(BATCH_SIZES))][1].simulated_seconds
    assert baseline / batched >= 5.0


def test_dispatched_calls_scale_with_distinct_values(benchmark):
    """At duplication d, the batched path dispatches ROWS/d prompts
    (one per distinct value) against the per-row path's ROWS."""
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for duplication in DUPLICATION:
        _, usage = runs[(duplication, max(BATCH_SIZES))]
        assert usage.calls == max(1, ROWS // duplication)


@pytest.mark.skipif(SMOKE, reason="full sweep only")
def test_sweep_is_deterministic(benchmark):
    first = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert _render(first) == _render(_sweep())
