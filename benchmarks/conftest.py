"""Shared benchmark fixtures.

The full TAG-Bench report is computed once per session and shared by
the Table 1 / Table 2 / Figure 2 benchmarks; each bench file also
writes its regenerated artifact under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.runner import BenchmarkReport, run_benchmark
from repro.bench.suite import build_suite
from repro.data import load_all

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_artifact(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text, encoding="utf-8")
    print("\n" + text)


@pytest.fixture(scope="session")
def full_report() -> BenchmarkReport:
    return run_benchmark(seed=0)


@pytest.fixture(scope="session")
def datasets():
    return load_all(seed=0)


@pytest.fixture(scope="session")
def suite():
    return build_suite()
