"""E2 — regenerate the paper's Table 2.

The same 80-query run re-aggregated by capability (Knowledge vs
Reasoning).  The timed body re-aggregates the session report; shape
assertions encode the paper's claims (TAG consistently above 50% on
both capabilities, Text2SQL much weaker on reasoning than knowledge).
"""

from repro.bench.report import format_table2, table2_rows

from benchmarks.conftest import write_artifact

TAG = "Hand-written TAG"


def test_table2(benchmark, full_report):
    rows = benchmark.pedantic(
        lambda: table2_rows(full_report), rounds=3, iterations=1
    )
    write_artifact("table2.txt", format_table2(full_report))

    assert len(rows) == 5
    assert full_report.accuracy(TAG, capability="knowledge") >= 0.5
    assert full_report.accuracy(TAG, capability="reasoning") >= 0.5
    text2sql_knowledge = full_report.accuracy(
        "Text2SQL", capability="knowledge"
    )
    text2sql_reasoning = full_report.accuracy(
        "Text2SQL", capability="reasoning"
    )
    assert text2sql_knowledge > text2sql_reasoning
    assert text2sql_reasoning <= 0.10
