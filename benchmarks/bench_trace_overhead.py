"""E15 — observability overhead: tracing must cost ~nothing when off.

The observability layer (:mod:`repro.obs`) promises two things about
cost.  First, the *virtual* numbers are untouched: span durations are
derived from work each request already does (token counts, operator
row counts), so a traced run reports exactly the same
``simulated_seconds``, usage counters, and answers as an untraced one.
Second, the *wall-clock* toll of leaving the instrumentation compiled
in is negligible when no tracer is installed — every hook starts with
a thread-local ``trace.active()`` check that bails before any
allocation.

This experiment pins both claims: a paired traced/untraced serving run
compared field by field, and a microbenchmark of the disabled helpers
against an empty loop.

Smoke mode: set ``REPRO_SMOKE=1`` to shrink the workload for CI-style
verification runs (``make verify``).
"""

import os
import time

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.obs import MetricsRegistry, Tracer, to_chrome, trace
from repro.serve import TagServer

from benchmarks.conftest import write_artifact

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
REQUESTS = 8 if SMOKE else 32
NOOP_CALLS = 20_000 if SMOKE else 200_000
WORKERS = 4
WINDOW = 4

_DATASET = movies.build()
_SQL = (
    "SELECT movie_title, review FROM movies "
    "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
)


def _factory(lm) -> TAGPipeline:
    return TAGPipeline(
        FixedQuerySynthesizer(_SQL),
        SQLExecutor(_DATASET.db),
        SingleCallGenerator(lm, aggregation=True),
    )


def _requests() -> list[str]:
    return [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(REQUESTS)
    ]


def _serve(traced: bool):
    tracer = Tracer() if traced else None
    metrics = MetricsRegistry() if traced else None
    server = TagServer(
        _factory,
        SimulatedLM(LMConfig(seed=0)),
        workers=WORKERS,
        window=WINDOW,
        tracer=tracer,
        metrics=metrics,
    )
    started = time.perf_counter()
    report = server.serve(_requests())
    elapsed = time.perf_counter() - started
    return report, tracer, elapsed


def _time_noop_helpers() -> tuple[float, float]:
    """Seconds per iteration: disabled trace hooks vs. an empty loop."""
    indices = range(NOOP_CALLS)
    started = time.perf_counter()
    for _ in indices:
        if trace.active():
            trace.leaf("lm.call", 0.001)
    hooked = (time.perf_counter() - started) / NOOP_CALLS
    started = time.perf_counter()
    for _ in indices:
        pass
    empty = (time.perf_counter() - started) / NOOP_CALLS
    return hooked, empty


def _render(untraced, traced, tracer, hooked, empty) -> str:
    spans = sum(
        sum(1 for _ in root.walk()) for _, root in tracer.roots
    )
    return "\n".join(
        [
            f"Tracing overhead, {REQUESTS} requests, "
            f"{WORKERS} workers, window {WINDOW}:",
            "",
            f"  untraced makespan   {untraced.simulated_seconds:.6f} s",
            f"  traced   makespan   {traced.simulated_seconds:.6f} s"
            f"  ({spans} spans recorded)",
            f"  usage identical     {traced.usage == untraced.usage}",
            f"  answers identical   "
            f"{traced.answers() == untraced.answers()}",
            "",
            f"  disabled hook       {hooked * 1e9:8.1f} ns/call",
            f"  empty loop          {empty * 1e9:8.1f} ns/call",
        ]
    )


def test_tracing_preserves_serving_numbers(benchmark):
    """Acceptance: a traced run reproduces the untraced run's virtual
    numbers field for field — tracing observes, never perturbs."""
    (untraced, _, _), (traced, tracer, _) = benchmark.pedantic(
        lambda: (_serve(traced=False), _serve(traced=True)),
        rounds=1,
        iterations=1,
    )
    assert traced.simulated_seconds == untraced.simulated_seconds
    assert traced.usage == untraced.usage
    assert traced.answers() == untraced.answers()
    assert [r.et_seconds for r in traced.results] == [
        r.et_seconds for r in untraced.results
    ]
    # The traced run actually recorded something.
    assert len(tracer.roots) == REQUESTS
    assert '"lm.call"' in to_chrome(tracer)


def test_disabled_hooks_are_near_free(benchmark):
    """Acceptance: with no tracer installed the instrumentation costs
    one thread-local read per hook — nanoseconds, not microseconds."""
    (untraced, _, wall_off), (traced, tracer, _) = benchmark.pedantic(
        lambda: (_serve(traced=False), _serve(traced=True)),
        rounds=1,
        iterations=1,
    )
    hooked, empty = _time_noop_helpers()
    write_artifact(
        "trace_overhead.txt",
        _render(untraced, traced, tracer, hooked, empty),
    )
    # Loose wall-clock bound: a disabled hook is a function call plus
    # a thread-local attribute read.  10 µs/call would mean something
    # is allocating on the disabled path.
    assert hooked < 10e-6
    assert wall_off >= 0.0  # timed, reported in the artifact
