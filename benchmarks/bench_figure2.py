"""E3 — regenerate the paper's Figure 2.

The qualitative aggregation comparison on "Provide information about
the races held on Sepang International Circuit": RAG answers from a few
retrieved rows (incomplete), Text2SQL+LM overflows its context and
falls back to parametric knowledge, hand-written TAG enumerates all 19
seasons.  The timed body runs the three methods on the query; the
assertions encode the completeness ordering Figure 2 illustrates.
"""

from repro.bench.suite import build_suite
from repro.bench.suites.aggregation import SEPANG_QUESTION
from repro.data import load_domain
from repro.lm import LMConfig, SimulatedLM
from repro.methods import (
    HandwrittenTAGMethod,
    RAGMethod,
    Text2SQLLMMethod,
)

from benchmarks.conftest import write_artifact


def _coverage(answer: str) -> int:
    return sum(1 for year in range(1999, 2018) if str(year) in answer)


def _run_figure2():
    dataset = load_domain("formula_1", seed=0)
    spec = next(
        s for s in build_suite() if s.question == SEPANG_QUESTION
    )
    outcomes = {}
    for method in (
        RAGMethod(SimulatedLM(LMConfig(seed=0))),
        Text2SQLLMMethod(SimulatedLM(LMConfig(seed=0))),
        HandwrittenTAGMethod(SimulatedLM(LMConfig(seed=0))),
    ):
        method.prepare(dataset)
        outcomes[method.name] = method.answer(spec, dataset)
    return outcomes


def test_figure2(benchmark):
    outcomes = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)

    lines = [f"Figure 2 query: {SEPANG_QUESTION}", ""]
    for name, result in outcomes.items():
        answer = str(result.answer)
        lines.append(
            f"=== {name} (ET {result.et_seconds:.2f}s, "
            f"coverage {_coverage(answer)}/19) ==="
        )
        lines.append(answer)
        lines.append("")
    write_artifact("figure2.txt", "\n".join(lines))

    rag = str(outcomes["RAG"].answer)
    t2slm = str(outcomes["Text2SQL + LM"].answer)
    tag = str(outcomes["Hand-written TAG"].answer)
    assert _coverage(tag) == 19
    assert _coverage(rag) < 10
    assert _coverage(tag) > _coverage(rag)
    assert "general knowledge" in t2slm  # parametric-only answer
    assert outcomes["Text2SQL + LM"].diagnostics["context_errors"] >= 1
