"""Writing your own hand-written TAG pipeline.

Answers a business-style question the paper's introduction motivates —
combining exact computation (joins, aggregation) with LM knowledge and
reasoning — over the california_schools domain:

    "Among Bay Area schools, how do charter and non-charter schools
     compare on SAT math, and which city has the strongest charters?"

The pipeline mixes dataframe operations (exact computation in the data
system) with semantic operators (LM judgments), which is the whole
point of the TAG division of labour.

Run:  python examples/custom_pipeline.py
"""

from repro.data import load_domain
from repro.frame import DataFrame, merge
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators


def main() -> None:
    dataset = load_domain("california_schools", seed=0)
    lm = SimulatedLM(LMConfig(seed=0))
    ops = SemanticOperators(lm, batch_size=32)

    schools = dataset.frame("schools")
    scores = dataset.frame("satscores")

    # Exact computation: join schools to their SAT results.
    joined = merge(schools, scores, left_on="CDSCode", right_on="cds")

    # Semantic step: LM judges which cities are in the Bay Area
    # (world knowledge the tables do not contain) — deduplicated to
    # one judgment per distinct city, as the paper's pipelines do.
    cities = DataFrame({"City": joined["City"].unique()})
    bay_cities = ops.sem_filter(
        cities, "{City} is a city in the Bay Area region"
    )
    bay = joined[joined["City"].isin(bay_cities["City"].tolist())]
    print(f"Bay Area schools with SAT results: {len(bay)}")

    # Exact computation again: charter vs non-charter aggregate.
    comparison = bay.groupby("Charter").agg(
        n=("cds", "count"), avg_math=("AvgScrMath", "mean")
    )
    for record in comparison.to_records():
        kind = "charter" if record["Charter"] else "non-charter"
        print(
            f"  {kind:12s} n={record['n']:3d} "
            f"avg math={record['avg_math']:.1f}"
        )

    charters = bay[bay["Charter"] == 1]
    by_city = charters.groupby("City").agg(
        avg_math=("AvgScrMath", "mean"), n=("cds", "count")
    )
    best = by_city.sort_values("avg_math", ascending=False).head(3)
    print("\nStrongest charter cities by average SAT math:")
    for record in best.to_records():
        print(
            f"  {record['City']:15s} {record['avg_math']:.1f} "
            f"({record['n']} school(s))"
        )

    # Final semantic step: fold the findings into a narrative answer.
    summary = ops.sem_agg(
        best,
        "Summarize which Bay Area cities have the strongest charter "
        "schools on SAT math.",
    )
    print("\nNarrative answer:\n " + summary)
    print(
        f"\nLM usage: {lm.usage.calls} calls in {lm.usage.batches} "
        f"batches, {lm.usage.simulated_seconds:.2f}s simulated"
    )


if __name__ == "__main__":
    main()
