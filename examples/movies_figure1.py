"""Figure 1 walk-through: the paper's worked movie example, step by step.

Shows the three TAG stages explicitly — query synthesis by the LM in
the BIRD prompt format, query execution with an LM UDF running inside
SQL, and answer generation over the computed table.

Run:  python examples/movies_figure1.py
"""

from repro.core import SQLExecutor
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM, prompts


def main() -> None:
    dataset = movies.build()
    lm = SimulatedLM(LMConfig(seed=0))
    request = (
        "Summarize the reviews of the highest grossing romance movie "
        "considered a 'classic'"
    )

    # ----------------------------------------------------------------
    # Stage 1 - Query Synthesis: syn(R) -> Q   (paper Eq. 1)
    # ----------------------------------------------------------------
    # The paper's example hand-writes Q with an LM UDF for the
    # 'classic' judgment; we do the same and also show what the
    # automatic Text2SQL synthesis would have produced.
    synthesized = lm.complete(
        prompts.text2sql_prompt(dataset.prompt_schema(), request)
    ).text
    print("Automatic syn(R) would produce:")
    print(" ", synthesized, "\n")

    query = (
        "SELECT movie_title, review FROM movies "
        "WHERE genre = 'Romance' "
        "AND LLM('considered a ''classic''', movie_title) = 'yes' "
        "ORDER BY revenue DESC LIMIT 1"
    )
    print("Expert Q with an LM UDF (as in Figure 1):")
    print(" ", query, "\n")

    # ----------------------------------------------------------------
    # Stage 2 - Query Execution: exec(Q) -> T   (paper Eq. 2)
    # ----------------------------------------------------------------
    def llm_udf(task: str, value: str) -> str:
        condition = f"'{value}' is {task}"
        return lm.complete(prompts.judgment_prompt(condition)).text

    dataset.db.register_udf("LLM", llm_udf, expensive=True)
    print("Physical plan (cheap genre filter before the LM UDF):")
    print(dataset.db.explain(query), "\n")

    table = SQLExecutor(dataset.db).execute(query)
    print("T =", table, "\n")

    # ----------------------------------------------------------------
    # Stage 3 - Answer Generation: gen(R, T) -> A   (paper Eq. 3)
    # ----------------------------------------------------------------
    answer = lm.complete(
        prompts.answer_prompt(request, table, aggregation=True)
    ).text
    print("A =", answer)


if __name__ == "__main__":
    main()
