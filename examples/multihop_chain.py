"""Multi-hop TAG: chaining syn/exec/gen iterations.

The paper defines TAG as one syn/exec/gen iteration and points to
multi-hop execution as the natural extension (§2, §5).  This example
answers a question no single hop can:

    "Provide information about the races held at the Southeast Asian
     circuit that hosted the most races."

Hop 1 resolves *which* circuit that is (LM knowledge filter + exact
aggregation); hop 2 runs a fresh TAG iteration about that circuit,
splicing hop 1's answer into its request.

Run:  python examples/multihop_chain.py
"""

from repro.core import (
    FixedQuerySynthesizer,
    Hop,
    MapReduceGenerator,
    NoGenerator,
    SQLExecutor,
    TAGChain,
    TAGPipeline,
)
from repro.data import load_domain
from repro.frame import DataFrame
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators


class SoutheastAsiaCircuitSynthesizer:
    """Hop 1 syn: an expert query with the LM's knowledge inlined.

    Uses a semantic filter over circuit names to decide which circuits
    are in Southeast Asia (world knowledge), then emits exact SQL that
    counts races per circuit.
    """

    def __init__(self, dataset, ops: SemanticOperators) -> None:
        self.dataset = dataset
        self.ops = ops

    def synthesize(self, request: str) -> str:
        circuits = self.dataset.frame("circuits")
        southeast = self.ops.sem_filter(
            DataFrame({"name": circuits["name"].unique()}),
            "{name} is located in southeast asia",
        )
        quoted = ", ".join(
            "'" + name.replace("'", "''") + "'"
            for name in southeast["name"].tolist()
        )
        return (
            "SELECT c.name FROM circuits c JOIN races r "
            "ON c.circuitId = r.circuitId "
            f"WHERE c.name IN ({quoted}) "
            "GROUP BY c.name ORDER BY COUNT(*) DESC LIMIT 1"
        )


class CircuitRacesSynthesizer:
    """Hop 2 syn: parse the circuit from the spliced request."""

    def synthesize(self, request: str) -> str:
        circuit = request.split("held on ")[1].rstrip(".").replace(
            "'", "''"
        )
        return (
            "SELECT r.year, r.round, r.date, r.name FROM races r "
            "JOIN circuits c ON r.circuitId = c.circuitId "
            f"WHERE c.name = '{circuit}' ORDER BY r.year"
        )


def main() -> None:
    dataset = load_domain("formula_1", seed=0)
    lm = SimulatedLM(LMConfig(seed=0))
    ops = SemanticOperators(lm, batch_size=32)

    chain = TAGChain(
        [
            Hop(
                "Which Southeast Asian circuit hosted the most races?",
                TAGPipeline(
                    SoutheastAsiaCircuitSynthesizer(dataset, ops),
                    SQLExecutor(dataset.db),
                    NoGenerator(),
                ),
            ),
            Hop(
                "Provide information about the races held on {answer}.",
                TAGPipeline(
                    CircuitRacesSynthesizer(),
                    SQLExecutor(dataset.db),
                    MapReduceGenerator(lm),
                ),
            ),
        ]
    )
    result = chain.run()
    print("Hop 1 answer:", result.hops[0].answer)
    print("Hop 2 request:", result.hops[1].request)
    print("\nFinal answer:\n", result.answer[:500])
    print(
        f"\nLM usage: {lm.usage.calls} calls, "
        f"{lm.usage.simulated_seconds:.2f}s simulated"
    )


if __name__ == "__main__":
    main()
