"""Run the full 80-query TAG-Bench and print the paper's tables.

All five methods from §4.2 run over all five domains; output is
Table 1 (per query type) and Table 2 (per capability), plus a per-
method diagnostics summary.  Fully deterministic for a given seed.

Run:  python examples/run_benchmark.py [seed]
"""

import sys
from collections import Counter

from repro.bench.report import format_table1, format_table2
from repro.bench.runner import run_benchmark


def main(seed: int = 0) -> None:
    print(f"Running TAG-Bench (seed={seed}) ...\n")
    report = run_benchmark(seed=seed)
    print(format_table1(report))
    print()
    print(format_table2(report))

    print("\nDiagnostics:")
    for method in report.methods:
        records = [r for r in report.records if r.method == method]
        calls = sum(r.diagnostics.get("lm_calls", 0) for r in records)
        overflows = sum(
            r.diagnostics.get("context_errors", 0) for r in records
        )
        errors = Counter(
            r.error.split(":")[0] for r in records if r.error
        )
        print(
            f"  {method:20s} lm_calls={calls:6d} "
            f"context_errors={overflows:3d} errors={dict(errors)}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
