"""Quickstart: the TAG model in five minutes.

Builds a small movie database, then answers one natural-language
request three ways — vanilla Text2SQL, RAG, and a TAG pipeline — to
show why the paper argues the full syn/exec/gen loop is needed.

Run:  python examples/quickstart.py
"""

from repro.core import (
    EmbeddingSynthesizer,
    FixedQuerySynthesizer,
    NoGenerator,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
    VectorSearchExecutor,
)
from repro.data import movies
from repro.embed import HashingEmbedder
from repro.lm import LMConfig, SimulatedLM, prompts


def main() -> None:
    dataset = movies.build()
    lm = SimulatedLM(LMConfig(seed=0))
    request = (
        "Summarize the reviews of the highest grossing romance movie "
        "considered a 'classic'"
    )
    print(f"Request: {request}\n")

    # --- 1. Text2SQL: syn -> exec, no generation step -----------------
    # SQL alone cannot express "considered a classic"; the closest
    # relational query returns raw rows, not an answer.
    text2sql = TAGPipeline(
        FixedQuerySynthesizer(
            "SELECT movie_title, review FROM movies "
            "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
        ),
        SQLExecutor(dataset.db),
        NoGenerator(),
    )
    result = text2sql.run(request)
    print("[Text2SQL]  ", result.answer, "\n")

    # --- 2. RAG: embed -> retrieve 10 rows -> one LM call -------------
    embedder = HashingEmbedder()
    rag = TAGPipeline(
        EmbeddingSynthesizer(embedder),
        VectorSearchExecutor(dataset, embedder, k=10),
        SingleCallGenerator(lm, aggregation=True),
    )
    result = rag.run(request)
    print("[RAG]       ", result.answer[:300], "\n")

    # --- 3. TAG: LM inside exec (UDF), then generation over the table --
    def llm_udf(task: str, value: str) -> str:
        condition = f"'{value}' is {task}"
        return lm.complete(prompts.judgment_prompt(condition)).text

    dataset.db.register_udf("LLM", llm_udf, expensive=True)
    tag = TAGPipeline(
        FixedQuerySynthesizer(
            "SELECT movie_title, review FROM movies "
            "WHERE genre = 'Romance' "
            "AND LLM('considered a ''classic''', movie_title) = 'yes' "
            "ORDER BY revenue DESC LIMIT 1"
        ),
        SQLExecutor(dataset.db),
        SingleCallGenerator(lm, aggregation=True),
    )
    result = tag.run(request)
    print("[TAG]        table =", result.table)
    print("[TAG]        answer =", result.answer)
    print(
        f"\nLM usage: {lm.usage.calls} calls, "
        f"{lm.usage.simulated_seconds:.2f} simulated seconds"
    )


if __name__ == "__main__":
    main()
