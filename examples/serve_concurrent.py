"""Concurrent TAG serving: many requests, one micro-batching LM.

Spins up a :class:`repro.serve.TagServer` over the movies dataset and
serves the same request stream three ways — one worker with no
batching, a worker pool with micro-batching, and the pool again with
the LRU prompt cache on — to show where a TAG deployment's throughput
comes from.  All times are simulated (virtual clock), so the printed
numbers are identical on any machine.

Run:  python examples/serve_concurrent.py
"""

from repro.core import (
    FixedQuerySynthesizer,
    SQLExecutor,
    SingleCallGenerator,
    TAGPipeline,
)
from repro.data import movies
from repro.lm import LMConfig, SimulatedLM
from repro.serve import TagServer


def main() -> None:
    dataset = movies.build()

    def factory(lm) -> TAGPipeline:
        return TAGPipeline(
            FixedQuerySynthesizer(
                "SELECT movie_title, review FROM movies "
                "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
            ),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    # A realistic stream repeats popular questions: 8 distinct
    # requests, each asked by three different users.
    requests = [
        f"Summarize the reviews of the top romance movie (topic {i % 8})"
        for i in range(24)
    ]

    configurations = [
        ("sequential (1 worker, window 1)", dict(workers=1, window=1)),
        ("micro-batched (16 workers, window 16)",
         dict(workers=16, window=16)),
        ("micro-batched + prompt cache",
         dict(workers=16, window=16, cache_size=256)),
    ]
    for label, kwargs in configurations:
        server = TagServer(factory, SimulatedLM(LMConfig(seed=0)), **kwargs)
        report = server.serve(requests)
        print(
            f"{label:42s} {report.throughput_rps:8.2f} req/s  "
            f"({report.simulated_seconds:6.2f}s simulated, "
            f"{report.usage.calls} LM calls, "
            f"{report.usage.cache_hits} cache hits)"
        )

    # Identical answers whichever way the requests are served.
    baseline = TagServer(
        factory, SimulatedLM(LMConfig(seed=0)), workers=1, window=1
    ).serve(requests)
    batched = TagServer(
        factory, SimulatedLM(LMConfig(seed=0)), workers=16, window=16
    ).serve(requests)
    assert baseline.answers() == batched.answers()
    print("\nAnswers are identical across all serving configurations.")
    print(f"Example answer: {str(baseline.results[0].result.answer)[:120]}")


if __name__ == "__main__":
    main()
