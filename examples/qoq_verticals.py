"""The paper's introduction example: QoQ trends for the retail vertical.

§1 motivates TAG with a Databricks-internal question — "what are the
QoQ trends for the 'retail' vertical?" — over an accounts/products/
revenue table.  Answering it needs (a) the LM's world knowledge of
which companies are retail (not in the table), (b) an interpretation of
"QoQ" (quarter-over-quarter revenue change), and (c) exact computation
over every matching row.  That division of labour is exactly a TAG
pipeline:

    semantic filter (LM) -> exact grouping/arithmetic (data system)
    -> narrative answer (LM)

Run:  python examples/qoq_verticals.py
"""

from repro.data import accounts
from repro.frame import DataFrame
from repro.lm import LMConfig, SimulatedLM
from repro.semantic import SemanticOperators


def main() -> None:
    dataset = accounts.build(seed=0)
    lm = SimulatedLM(LMConfig(seed=0))
    ops = SemanticOperators(lm, batch_size=32)
    table = dataset.frame("accounts")

    # (a) World knowledge: which accounts belong to the retail vertical?
    names = DataFrame(
        {"account_name": table["account_name"].unique()}
    )
    retail = ops.sem_filter(
        names, "{account_name} is in the retail vertical"
    )
    retail_names = retail["account_name"].tolist()
    print("LM judges these accounts retail:", retail_names)

    # (b)+(c) Exact computation: quarterly totals and QoQ deltas.
    rows = table[table["account_name"].isin(retail_names)]
    by_quarter = rows.groupby("quarter").agg(
        revenue=("revenue", "sum")
    ).sort_values("quarter")
    quarters = by_quarter["quarter"].tolist()
    totals = by_quarter["revenue"].tolist()
    print("\nQuarterly retail revenue:")
    trend_rows = []
    for position, (quarter, total) in enumerate(zip(quarters, totals)):
        if position == 0:
            change = "--"
        else:
            change = f"{(total / totals[position - 1] - 1) * 100:+.1f}%"
        trend_rows.append(
            {"quarter": quarter, "revenue": round(total, 1), "qoq": change}
        )
        print(f"  {quarter}: {total:10.1f}  QoQ {change}")

    # Narrative answer over the computed trend table.
    answer = ops.sem_agg(
        DataFrame.from_records(trend_rows),
        "What are the QoQ trends for the 'retail' vertical?",
    )
    print("\nAnswer:\n " + answer)
    print(
        f"\nLM usage: {lm.usage.calls} calls, "
        f"{lm.usage.simulated_seconds:.2f}s simulated"
    )


if __name__ == "__main__":
    main()
