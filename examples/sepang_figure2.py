"""Figure 2 reproduction: qualitative aggregation answers side by side.

Runs the paper's example aggregation query — "Provide information about
the races held on Sepang International Circuit." — through RAG,
Text2SQL+LM, and hand-written TAG, and reports each answer plus how many
of the 19 real seasons (1999-2017) it covers.

Run:  python examples/sepang_figure2.py
"""

from repro.bench.suite import build_suite
from repro.bench.suites.aggregation import SEPANG_QUESTION
from repro.data import load_domain
from repro.lm import LMConfig, SimulatedLM
from repro.methods import (
    HandwrittenTAGMethod,
    RAGMethod,
    Text2SQLLMMethod,
)


def coverage(answer: str) -> int:
    return sum(1 for year in range(1999, 2018) if str(year) in answer)


def main() -> None:
    dataset = load_domain("formula_1", seed=0)
    spec = next(
        s for s in build_suite() if s.question == SEPANG_QUESTION
    )
    methods = [
        RAGMethod(SimulatedLM(LMConfig(seed=0))),
        Text2SQLLMMethod(SimulatedLM(LMConfig(seed=0))),
        HandwrittenTAGMethod(SimulatedLM(LMConfig(seed=0))),
    ]
    print(f"Query: {SEPANG_QUESTION}\n")
    for method in methods:
        method.prepare(dataset)
        result = method.answer(spec, dataset)
        answer = str(result.answer)
        print(f"=== {method.name} (ET {result.et_seconds:.2f}s) ===")
        print(answer[:600])
        print(f"--> seasons covered: {coverage(answer)}/19\n")


if __name__ == "__main__":
    main()
