"""Exception hierarchy for the TAG reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subsystems define
narrower classes here rather than in their own modules so that error
handling does not require importing engine internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Relational engine errors
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so Text2SQL failure diagnostics can
    report *where* a generated query broke.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(DatabaseError):
    """The query parsed but could not be bound to the catalog.

    Raised for unknown tables/columns, ambiguous references, misplaced
    aggregates, and similar semantic errors.
    """


class ExecutionError(DatabaseError):
    """A runtime failure while executing a query plan."""


class SchemaError(DatabaseError):
    """Invalid schema definition or a constraint violation on write."""


class AnalysisError(DatabaseError):
    """Static analysis rejected the query before planning.

    Carries the full :class:`repro.analysis.QueryReport` so callers can
    surface individual diagnostics (and their source spans) instead of
    one flattened message.  Raised by ``Database.execute(analyze=True)``
    and mapped to a ``TAGError`` of kind ``"analysis"`` at step 0 by the
    TAG pipeline.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


# --------------------------------------------------------------------------
# Repair loop errors (repro.core.repair)
# --------------------------------------------------------------------------


class RepairExhaustedError(ReproError):
    """The validate→repair→retry loop ran out of repair budget.

    Carries the full attempt history (a list of
    :class:`repro.core.repair.RepairAttempt`, original synthesis first)
    so the structured ``TAGError`` built from this exception — and any
    fallback tier that inspects it — can show every SQL candidate that
    was tried and why each one failed.  The last attempt's underlying
    engine error is chained as ``__cause__``.
    """

    def __init__(self, attempts: list) -> None:
        repairs = max(len(attempts) - 1, 0)
        super().__init__(
            f"repair budget exhausted after {repairs} "
            f"repair{'s' if repairs != 1 else ''} "
            f"({len(attempts)} failed attempts)"
        )
        self.attempts = list(attempts)


# --------------------------------------------------------------------------
# Simulated language model errors
# --------------------------------------------------------------------------


class LMError(ReproError):
    """Base class for simulated-LM failures."""


class ContextLengthError(LMError):
    """The prompt (plus requested generation) exceeds the context window.

    The paper's Text2SQL+LM baseline hits exactly this failure when it
    serializes too many retrieved rows into the generation prompt; the
    benchmark counts such queries as incorrect.
    """

    def __init__(self, prompt_tokens: int, context_window: int) -> None:
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds the "
            f"{context_window}-token context window"
        )
        self.prompt_tokens = prompt_tokens
        self.context_window = context_window


class PromptRoutingError(LMError):
    """No registered handler recognised the prompt format."""


class TransientLMError(LMError):
    """A retryable serving-side failure (backend hiccup, shed load).

    Base class of every *injectable* fault: production LM serving sees
    rate limits, timeouts, and garbled outputs as routine events, and a
    client distinguishes them from permanent errors (bad prompt, context
    overflow) by whether a retry can succeed.  ``latency_s`` is the
    simulated seconds the failed call burned before erroring, so fault
    handling costs virtual time exactly like successful calls do.
    """

    retryable = True

    def __init__(self, message: str, latency_s: float = 0.0) -> None:
        super().__init__(message)
        self.latency_s = latency_s


class RateLimitError(TransientLMError):
    """The deployment shed this request (HTTP 429 analogue).

    Rejected at admission, so it burns almost no simulated compute.
    """


class LMTimeoutError(TransientLMError):
    """The call exceeded the serving timeout and was cancelled.

    The most expensive fault: the requester paid the full timeout in
    simulated seconds and got nothing back.
    """

    def __init__(self, timeout_s: float) -> None:
        super().__init__(
            f"LM call timed out after {timeout_s:g} simulated seconds",
            latency_s=timeout_s,
        )
        self.timeout_s = timeout_s


class MalformedOutputError(TransientLMError):
    """The model produced undecodable output (truncated/garbled text).

    The compute ran to completion — ``latency_s`` is a full call's worth
    — but the payload is unusable.  ``text`` carries the garbled output
    for diagnostics.
    """

    def __init__(self, text: str, latency_s: float = 0.0) -> None:
        super().__init__(
            f"malformed LM output: {text[:60]!r}", latency_s=latency_s
        )
        self.text = text


# --------------------------------------------------------------------------
# Resilience middleware errors (repro.serve.resilience)
# --------------------------------------------------------------------------


class DeadlineExceededError(LMError):
    """The request's simulated-seconds budget ran out before success.

    Raised by the resilience middleware when retries (attempt latencies
    plus backoff sleeps) would push a request past its deadline; the
    last underlying failure is chained as ``__cause__``.
    """

    def __init__(self, deadline_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"deadline of {deadline_s:g}s exceeded after "
            f"{elapsed_s:g} simulated seconds"
        )
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class CircuitOpenError(LMError):
    """The circuit breaker is open: the call was rejected client-side.

    Fails fast by design — ``latency_s`` is always 0.0; no simulated LM
    compute is spent while the backend is known-bad.
    """

    latency_s = 0.0

    def __init__(self, cooldown_remaining_s: float) -> None:
        super().__init__(
            "circuit breaker open; half-opens in "
            f"{cooldown_remaining_s:g} simulated seconds"
        )
        self.cooldown_remaining_s = cooldown_remaining_s


# --------------------------------------------------------------------------
# Dataframe / semantic operator errors
# --------------------------------------------------------------------------


class FrameError(ReproError):
    """Invalid dataframe operation (unknown column, length mismatch, ...)."""


class SemanticOperatorError(ReproError):
    """A semantic operator received an invalid instruction or inputs."""


# --------------------------------------------------------------------------
# Benchmark errors
# --------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """Benchmark configuration or evaluation failure."""
