"""Exception hierarchy for the TAG reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subsystems define
narrower classes here rather than in their own modules so that error
handling does not require importing engine internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Relational engine errors
# --------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so Text2SQL failure diagnostics can
    report *where* a generated query broke.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(DatabaseError):
    """The query parsed but could not be bound to the catalog.

    Raised for unknown tables/columns, ambiguous references, misplaced
    aggregates, and similar semantic errors.
    """


class ExecutionError(DatabaseError):
    """A runtime failure while executing a query plan."""


class SchemaError(DatabaseError):
    """Invalid schema definition or a constraint violation on write."""


# --------------------------------------------------------------------------
# Simulated language model errors
# --------------------------------------------------------------------------


class LMError(ReproError):
    """Base class for simulated-LM failures."""


class ContextLengthError(LMError):
    """The prompt (plus requested generation) exceeds the context window.

    The paper's Text2SQL+LM baseline hits exactly this failure when it
    serializes too many retrieved rows into the generation prompt; the
    benchmark counts such queries as incorrect.
    """

    def __init__(self, prompt_tokens: int, context_window: int) -> None:
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds the "
            f"{context_window}-token context window"
        )
        self.prompt_tokens = prompt_tokens
        self.context_window = context_window


class PromptRoutingError(LMError):
    """No registered handler recognised the prompt format."""


# --------------------------------------------------------------------------
# Dataframe / semantic operator errors
# --------------------------------------------------------------------------


class FrameError(ReproError):
    """Invalid dataframe operation (unknown column, length mismatch, ...)."""


class SemanticOperatorError(ReproError):
    """A semantic operator received an invalid instruction or inputs."""


# --------------------------------------------------------------------------
# Benchmark errors
# --------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """Benchmark configuration or evaluation failure."""
