"""Deterministic text embeddings (substitute for the paper's E5 model)."""

from repro.embed.hashing import HashingEmbedder, serialize_row

__all__ = ["HashingEmbedder", "serialize_row"]
