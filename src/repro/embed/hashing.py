"""Feature-hashing embedder.

Replaces the E5 embedding model in the RAG baselines: each text is
embedded as a unit-norm bag of hashed word and character-trigram
features.  Texts sharing vocabulary land near each other in cosine
space, which is the property row-level RAG retrieval depends on —
without any model weights, and fully deterministic.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence

import numpy as np

from repro.text.tokenize import tokens


def _bucket(feature: str, dimensions: int) -> tuple[int, float]:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    index = int.from_bytes(digest[:4], "big") % dimensions
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return index, sign


class HashingEmbedder:
    """Hashes word unigrams and character trigrams into a dense vector."""

    def __init__(
        self, dimensions: int = 256, use_trigrams: bool = True
    ) -> None:
        if dimensions < 8:
            raise ValueError("dimensions must be at least 8")
        self.dimensions = dimensions
        self.use_trigrams = use_trigrams

    def embed(self, text: str) -> np.ndarray:
        """Unit-norm embedding of one text."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        words = tokens(text)
        for word in words:
            index, sign = _bucket("w:" + word, self.dimensions)
            vector[index] += sign
        if self.use_trigrams:
            lowered = " " + text.lower() + " "
            for position in range(len(lowered) - 2):
                trigram = lowered[position : position + 3]
                index, sign = _bucket("t:" + trigram, self.dimensions)
                vector[index] += 0.4 * sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """(n, dimensions) matrix of unit-norm embeddings."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])


def serialize_row(record: Mapping[str, object]) -> str:
    """Serialize one row as the paper's RAG baseline does: "- col: val"."""
    return "\n".join(f"- {key}: {value}" for key, value in record.items())
