"""Feature-hashing embedder.

Replaces the E5 embedding model in the RAG baselines: each text is
embedded as a unit-norm bag of hashed word and character-trigram
features.  Texts sharing vocabulary land near each other in cosine
space, which is the property row-level RAG retrieval depends on —
without any model weights, and fully deterministic.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence

import numpy as np

from repro.text.tokenize import tokens


def _bucket(feature: str, dimensions: int) -> tuple[int, float]:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    index = int.from_bytes(digest[:4], "big") % dimensions
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return index, sign


class HashingEmbedder:
    """Hashes word unigrams and character trigrams into a dense vector.

    Degenerate-text contract.  A text that contributes *no* features
    (empty, or punctuation-only/stopword-only with trigrams disabled)
    used to embed as the all-zero vector, which makes cosine similarity
    against it ill-defined: depending on the caller's convention a zero
    key "matches" nothing or everything.  Every embedding is now
    unit-norm: degenerate texts all map to one reserved *sentinel
    bucket*, so they are mutually identical (cosine 1.0 against each
    other) and near-orthogonal to real content — a well-defined point,
    never an ill-defined one.  Callers that must not conflate distinct
    degenerate texts (the semantic serving cache) should test
    :meth:`is_degenerate` and refuse to key on such texts at all.
    """

    def __init__(
        self, dimensions: int = 256, use_trigrams: bool = True
    ) -> None:
        if dimensions < 8:
            raise ValueError("dimensions must be at least 8")
        self.dimensions = dimensions
        self.use_trigrams = use_trigrams

    def is_degenerate(self, text: str) -> bool:
        """True when ``text`` yields no hashed features.

        Such a text embeds as the shared sentinel-bucket vector (see the
        class docstring), so all degenerate texts are indistinguishable
        in cosine space; similarity-keyed callers should treat them as
        uncacheable rather than rely on their embedding.
        """
        if tokens(text):
            return False
        return not (self.use_trigrams and len(text) >= 1)

    def embed(self, text: str) -> np.ndarray:
        """Unit-norm embedding of one text (sentinel for degenerate)."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        words = tokens(text)
        for word in words:
            index, sign = _bucket("w:" + word, self.dimensions)
            vector[index] += sign
        if self.use_trigrams:
            lowered = " " + text.lower() + " "
            for position in range(len(lowered) - 2):
                trigram = lowered[position : position + 3]
                index, sign = _bucket("t:" + trigram, self.dimensions)
                vector[index] += 0.4 * sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            return vector / norm
        index, sign = _bucket("degenerate:", self.dimensions)
        vector[index] = sign
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """(n, dimensions) matrix of unit-norm embeddings."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])


def serialize_row(record: Mapping[str, object]) -> str:
    """Serialize one row as the paper's RAG baseline does: "- col: val"."""
    return "\n".join(f"- {key}: {value}" for key, value in record.items())
