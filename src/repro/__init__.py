"""repro: a from-scratch reproduction of Table-Augmented Generation (TAG).

Reproduces "Text2SQL is Not Enough: Unifying AI and Databases with TAG"
(CIDR 2025) as a self-contained, offline, deterministic Python library:
the TAG model (:mod:`repro.core`), every substrate its evaluation needs
(relational SQL engine, simulated LM, embeddings, vector indexes,
semantic operators, synthetic BIRD-style datasets), the five evaluated
methods (:mod:`repro.methods`), and the 80-query TAG-Bench with the
Table 1 / Table 2 / Figure 2 harness (:mod:`repro.bench`).

Quickstart::

    from repro import run_benchmark, format_table1
    report = run_benchmark(seed=0)
    print(format_table1(report))
"""

from repro.bench import (
    build_suite,
    format_table1,
    format_table2,
    run_benchmark,
)
from repro.core import TAGPipeline, TAGResult
from repro.db import Database
from repro.errors import ReproError
from repro.frame import DataFrame
from repro.knowledge import KnowledgeBase
from repro.lm import LMConfig, SimulatedLM
from repro.obs import MetricsRegistry, Tracer
from repro.semantic import SemanticOperators
from repro.serve import BatchingLM, TagServer

__version__ = "1.0.0"

__all__ = [
    "BatchingLM",
    "DataFrame",
    "Database",
    "KnowledgeBase",
    "LMConfig",
    "MetricsRegistry",
    "ReproError",
    "SemanticOperators",
    "SimulatedLM",
    "TAGPipeline",
    "TAGResult",
    "TagServer",
    "Tracer",
    "__version__",
    "build_suite",
    "format_table1",
    "format_table2",
    "run_benchmark",
]
