"""Dynamic race detection: Eraser locksets + vector-clock ordering.

The static pass (:mod:`repro.analysis.concurrency`) proves what it can
from source; this module checks what actually *happened*.  Shared-state
hot spots in the serving stack carry tiny hooks (:func:`read`,
:func:`write`, :func:`guard`) that are no-ops until a
:class:`RaceChecker` is installed — the same zero-cost-when-disabled
contract as the tracer (E15): every hook starts with one module-global
``None`` check and bails.

With a checker installed, each access to a named shared variable is
checked two ways, in the style of Eraser refined by vector clocks:

- **lockset**: the intersection of locks held across all accesses to a
  variable must stay non-empty once the variable is written by more
  than one thread;
- **happens-before**: accesses ordered by thread fork/join or by
  release→acquire on a common lock cannot race, whatever locks they
  held — so single-owner handoffs (the server reading worker results
  after ``join``) are not false positives.

A pair of accesses races when at least one is a write, they come from
different threads, no common lock was held, and neither
happens-before the other.  Detection is *schedule-insensitive* for the
seeded fixtures this repo tests: an unguarded counter incremented by
two plain threads has no ordering edges and an empty lockset
intersection on every interleaving, so the finding is deterministic
across runs (the acceptance contract).

Thread identity is the thread *name* (the server names its workers
``tag-worker-<i>`` deterministically); never ``get_ident`` — ids vary
across runs and would leak into report bytes.

Lock-order tracking rides along: acquiring ``B`` while holding ``A``
records an ``A -> B`` edge, and a cycle in the resulting digraph is
reported as a potential deadlock even when the schedule happened not
to deadlock this time.

Metering: with a :class:`~repro.obs.metrics.MetricsRegistry` attached,
:meth:`RaceChecker.report` publishes ``repro_conc_events_total``,
``repro_conc_vars_total``, and ``repro_conc_races_total``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a cycle: metrics.py itself carries the hooks
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "RaceChecker",
    "RaceFinding",
    "RaceReport",
    "checking",
    "fork",
    "guard",
    "install",
    "installed",
    "join",
    "read",
    "reacquired",
    "releasing",
    "uninstall",
    "write",
]


# ---------------------------------------------------------------------------
# Findings and report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RaceFinding:
    """One detected hazard."""

    #: ``"race"`` or ``"lock-order"``.
    kind: str
    #: Shared-variable name, or the cycle rendering for lock-order.
    variable: str
    #: Sorted thread names involved.
    threads: tuple[str, ...]
    message: str

    def render(self) -> str:
        return (
            f"{self.kind}: {self.variable} "
            f"[{', '.join(self.threads)}] — {self.message}"
        )

    def __str__(self) -> str:
        return self.render()


@dataclass
class RaceReport:
    """Deterministically-ordered findings plus run statistics."""

    findings: list[RaceFinding] = field(default_factory=list)
    events: int = 0
    variables: int = 0
    threads: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"racecheck: {'clean' if self.ok else 'RACY'} "
            f"({len(self.findings)} finding(s), {self.events} events, "
            f"{self.variables} vars, {self.threads} threads)"
        ]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Vector clocks
# ---------------------------------------------------------------------------


def _dominates(later: dict[str, int], earlier: dict[str, int]) -> bool:
    """Does clock ``later`` happen-after (>=) clock ``earlier``?"""
    for thread, tick in earlier.items():
        if later.get(thread, 0) < tick:
            return False
    return True


def _merge(into: dict[str, int], other: dict[str, int]) -> None:
    for thread, tick in other.items():
        if into.get(thread, 0) < tick:
            into[thread] = tick


@dataclass
class _Access:
    """Last access to a variable by one thread (FastTrack-style epoch)."""

    clock: dict[str, int]
    locks: frozenset[str]
    is_write: bool
    count: int = 1


class _VarState:
    """Per-variable detector state."""

    __slots__ = ("reads", "writes", "racy")

    def __init__(self) -> None:
        #: thread name -> last read / last write access.
        self.reads: dict[str, _Access] = {}
        self.writes: dict[str, _Access] = {}
        self.racy = False


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class RaceChecker:
    """Collects shared-state access events and reports hazards.

    All hook methods are thread-safe (one internal lock serializes
    detector state); the hooks are called from the instrumented code's
    own threads, so the checker's lock is the only synchronization the
    detector itself needs.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._lock = threading.Lock()
        self._metrics = metrics
        self._vars: dict[str, _VarState] = {}
        #: thread name -> vector clock.
        self._clocks: dict[str, dict[str, int]] = {}
        #: thread name -> list of held lock names (acquisition order).
        self._held: dict[str, list[str]] = {}
        #: lock name -> clock of its last release.
        self._lock_clocks: dict[str, dict[str, int]] = {}
        #: child thread name -> parent clock snapshot (set by fork()).
        self._pending_forks: dict[str, dict[str, int]] = {}
        #: observed lock-order edges ``held -> acquired``.
        self._order_edges: dict[str, set[str]] = {}
        self._races: dict[tuple[str, str, str], RaceFinding] = {}
        self._events = 0

    # -- thread bookkeeping (caller holds self._lock) --------------------

    def _me_locked(self) -> str:
        name = threading.current_thread().name
        if name not in self._clocks:
            clock = self._pending_forks.pop(name, None)
            self._clocks[name] = dict(clock) if clock else {}
            self._clocks[name][name] = (
                self._clocks[name].get(name, 0) + 1
            )
            self._held.setdefault(name, [])
        return name

    # -- synchronization events ------------------------------------------

    def fork(self, child: str) -> None:
        """Parent is about to start thread ``child``: pass our clock."""
        with self._lock:
            self._events += 1
            me = self._me_locked()
            self._pending_forks[child] = dict(self._clocks[me])
            self._clocks[me][me] = self._clocks[me].get(me, 0) + 1

    def join(self, child: str) -> None:
        """Parent joined thread ``child``: absorb its clock."""
        with self._lock:
            self._events += 1
            me = self._me_locked()
            child_clock = self._clocks.get(child)
            if child_clock is not None:
                _merge(self._clocks[me], child_clock)

    def acquired(self, lock_name: str) -> None:
        with self._lock:
            self._events += 1
            me = self._me_locked()
            held = self._held[me]
            for already in held:
                if already != lock_name:
                    self._order_edges.setdefault(already, set()).add(
                        lock_name
                    )
            held.append(lock_name)
            release_clock = self._lock_clocks.get(lock_name)
            if release_clock is not None:
                _merge(self._clocks[me], release_clock)

    def released(self, lock_name: str) -> None:
        with self._lock:
            self._events += 1
            me = self._me_locked()
            held = self._held[me]
            if lock_name in held:
                held.reverse()
                held.remove(lock_name)
                held.reverse()
            self._lock_clocks[lock_name] = dict(self._clocks[me])
            self._clocks[me][me] = self._clocks[me].get(me, 0) + 1

    def releasing(self, lock_name: str) -> None:
        """About to block in ``cv.wait()``: publish our clock.

        ``Condition.wait`` releases and re-acquires its lock inside the
        library, invisible to :func:`guard`; these two hooks restore
        the release→acquire happens-before edge around the wait (the
        held-set is left alone — no instrumented access can run while
        the thread is blocked).
        """
        with self._lock:
            self._events += 1
            me = self._me_locked()
            clock = self._clocks[me]
            existing = self._lock_clocks.setdefault(lock_name, {})
            _merge(existing, clock)
            clock[me] = clock.get(me, 0) + 1

    def reacquired(self, lock_name: str) -> None:
        """``cv.wait()`` returned: absorb clocks published at releases."""
        with self._lock:
            self._events += 1
            me = self._me_locked()
            release_clock = self._lock_clocks.get(lock_name)
            if release_clock is not None:
                _merge(self._clocks[me], release_clock)

    # -- data access events ----------------------------------------------

    def read(self, variable: str) -> None:
        self._access(variable, is_write=False)

    def write(self, variable: str) -> None:
        self._access(variable, is_write=True)

    def _access(self, variable: str, is_write: bool) -> None:
        with self._lock:
            self._events += 1
            me = self._me_locked()
            clock = self._clocks[me]
            locks = frozenset(self._held[me])
            state = self._vars.setdefault(variable, _VarState())
            # Check against other threads' remembered accesses: a
            # write conflicts with reads and writes, a read only with
            # writes.
            conflicting = (
                list(state.writes.items())
                + (list(state.reads.items()) if is_write else [])
            )
            for other, access in conflicting:
                if other == me:
                    continue
                if access.locks & locks:
                    continue  # a common lock serializes the pair
                if _dominates(clock, access.clock):
                    continue  # ordered: fork/join or lock handoff
                self._record_race_locked(
                    variable, me, other, is_write, access.is_write
                )
            entry = _Access(dict(clock), locks, is_write)
            if is_write:
                state.writes[me] = entry
            else:
                state.reads[me] = entry
            clock[me] = clock.get(me, 0) + 1

    def _record_race_locked(
        self,
        variable: str,
        thread_a: str,
        thread_b: str,
        a_writes: bool,
        b_writes: bool,
    ) -> None:
        state = self._vars[variable]
        state.racy = True
        threads = tuple(sorted((thread_a, thread_b)))
        key = (variable, *threads)
        if key in self._races:
            return
        shape = (
            "write/write" if (a_writes and b_writes) else "read/write"
        )
        self._races[key] = RaceFinding(
            kind="race",
            variable=variable,
            threads=threads,
            message=(
                f"unordered {shape} with no common lock "
                "(empty lockset intersection, no fork/join or "
                "release->acquire edge)"
            ),
        )

    # -- reporting ---------------------------------------------------------

    def report(self) -> RaceReport:
        """Snapshot the findings (safe to call after worker joins)."""
        with self._lock:
            findings = sorted(
                self._races.values(),
                key=lambda f: (f.variable, f.threads),
            )
            findings.extend(self._order_findings_locked())
            report = RaceReport(
                findings=findings,
                events=self._events,
                variables=len(self._vars),
                threads=len(self._clocks),
            )
            metrics = self._metrics
        if metrics is not None:
            metrics.counter("repro_conc_events_total").inc(report.events)
            metrics.counter("repro_conc_vars_total").inc(
                report.variables
            )
            metrics.counter("repro_conc_races_total").inc(
                len(report.findings)
            )
        return report

    def _order_findings_locked(self) -> list[RaceFinding]:
        findings = []
        for cycle in _cycles(self._order_edges):
            findings.append(
                RaceFinding(
                    kind="lock-order",
                    variable=" -> ".join(cycle + [cycle[0]]),
                    threads=(),
                    message=(
                        "locks acquired in conflicting orders "
                        "(potential deadlock)"
                    ),
                )
            )
        return findings


def _cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles, smallest-node-first, deterministically sorted."""
    found: set[tuple[str, ...]] = set()

    def walk(start: str, node: str, trail: list[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start and len(trail) > 1:
                pivot = trail.index(min(trail))
                found.add(tuple(trail[pivot:] + trail[:pivot]))
            elif nxt not in trail and nxt > start:
                walk(start, nxt, trail + [nxt])

    for start in sorted(edges):
        walk(start, start, [start])
    return [list(cycle) for cycle in sorted(found)]


# ---------------------------------------------------------------------------
# Module-level hooks (the zero-cost-when-disabled surface)
# ---------------------------------------------------------------------------

_CHECKER: RaceChecker | None = None


def install(checker: RaceChecker) -> None:
    """Activate ``checker`` for all hooks (one checker at a time)."""
    global _CHECKER
    _CHECKER = checker


def uninstall() -> None:
    global _CHECKER
    _CHECKER = None


def installed() -> bool:
    return _CHECKER is not None


class checking:
    """``with checking(checker):`` — install for a scope, then restore."""

    def __init__(self, checker: RaceChecker) -> None:
        self.checker = checker
        self._saved: RaceChecker | None = None

    def __enter__(self) -> RaceChecker:
        self._saved = _CHECKER
        install(self.checker)
        return self.checker

    def __exit__(self, *exc_info: object) -> bool:
        global _CHECKER
        _CHECKER = self._saved
        return False


def read(variable: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.read(variable)


def write(variable: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.write(variable)


def fork(child: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.fork(child)


def join(child: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.join(child)


def releasing(lock_name: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.releasing(lock_name)


def reacquired(lock_name: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.reacquired(lock_name)


class _Guard:
    """Lock proxy that notifies the checker around acquire/release."""

    __slots__ = ("name", "target")

    def __init__(self, name: str, target) -> None:
        self.name = name
        self.target = target

    def __enter__(self) -> None:
        self.target.__enter__()
        checker = _CHECKER
        if checker is not None:
            checker.acquired(self.name)
        return None

    def __exit__(self, *exc_info: object) -> bool:
        checker = _CHECKER
        if checker is not None:
            checker.released(self.name)
        return bool(self.target.__exit__(*exc_info))


def guard(name: str, lock):
    """``with guard("BatchingLM._cv", self._cv):`` — instrumented lock.

    Returns the raw lock when no checker is installed, so the disabled
    path costs one global read and a branch before the normal ``with``.
    """
    if _CHECKER is None:
        return lock
    return _Guard(name, lock)
