"""Per-operator execution statistics: the engine behind EXPLAIN ANALYZE.

Wraps a physical plan (:mod:`repro.db.plan`) in counting proxies so a
single execution yields, for every operator, the rows that flowed in
and out and a *virtual* execution time from a deterministic
:class:`OperatorCostModel` — never wall-clock, so analyzed output is
byte-identical across machines and runs, like everything else measured
in this repro.

Counting is honest about laziness: operators are Volcano-style
iterators, so a ``Limit`` that stops pulling early is reflected in its
children's ``rows_out`` (what actually flowed, not table cardinality).
``rows_in`` of a node is defined as the sum of its children's
``rows_out``; leaves (scans, constant rows) have ``rows_in == 0``.

This module touches plans only through duck typing (``execute``,
``layout``, ``describe``, and the ``child``/``left``/``right``
attributes), so it imports nothing from the database layer and the
database layer can lazy-import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import trace

#: Attribute names under which plan nodes hold their inputs.
_CHILD_ATTRS = ("child", "left", "right")


@dataclass(frozen=True)
class OperatorCostModel:
    """Virtual seconds an operator costs, as a pure function of rows.

    The constants model a fast in-memory engine: a fixed per-operator
    startup plus linear per-row costs.  Absolute calibration matters
    less than determinism — the point is *attribution* (where rows and
    time go), on a scale that composes with the simulated LM's seconds.
    """

    startup_s: float = 0.0001
    per_row_in_s: float = 0.000001
    per_row_out_s: float = 0.000001

    def seconds(self, stats: "OperatorStats") -> float:
        """This node's own (exclusive) virtual execution time."""
        return (
            self.startup_s
            + stats.rows_in * self.per_row_in_s
            + stats.rows_out * self.per_row_out_s
        )


DEFAULT_COST = OperatorCostModel()


@dataclass
class OperatorStats:
    """Observed flow through one plan operator.

    ``extra`` holds operator-specific counters: at instrumentation
    time it is bound to the *same dict object* as the plan node's
    ``exec_stats`` attribute (batched UDF operators expose LM call,
    batch, and cache counters there), so the values are live after
    execution without relying on generator finalization order.  Nodes
    without ``exec_stats`` get an empty dict and render exactly as
    before.
    """

    describe: str
    rows_out: int = 0
    children: list["OperatorStats"] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: Span name override for trace emission.  Sharded operators set a
    #: stable label (``Exchange``/``Merge``) via their ``trace_describe``
    #: attribute because ``describe()`` includes the shard count, which
    #: must never leak into traces (byte-identical at any shard count).
    trace_label: str | None = None
    #: Per-shard pipeline stats are hidden from trace emission: the
    #: *number* of such subtrees depends on the shard count.  They still
    #: render in EXPLAIN ANALYZE and still count toward the parent's
    #: ``rows_in``.
    hidden: bool = False

    @property
    def rows_in(self) -> int:
        return sum(child.rows_out for child in self.children)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class _CountingNode:
    """Proxy that counts rows yielded by the wrapped operator."""

    __slots__ = ("_inner", "_stats")

    def __init__(self, inner: object, stats: OperatorStats) -> None:
        self._inner = inner
        self._stats = stats

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def execute(self):
        stats = self._stats
        for row in self._inner.execute():
            stats.rows_out += 1
            yield row


def _is_plan_node(value: object) -> bool:
    return hasattr(value, "execute") and hasattr(value, "layout")


def instrument_plan(node) -> tuple[object, OperatorStats]:
    """Wrap ``node`` (recursively) in counting proxies.

    Child attributes of the original nodes are replaced in place with
    proxies — plans are built fresh per execution, so nothing outlives
    the call.  Returns ``(proxy_root, stats_root)``; execute the proxy,
    then read the stats.
    """
    child_stats: list[OperatorStats] = []
    for attr in _CHILD_ATTRS:
        child = getattr(node, attr, None)
        if child is not None and _is_plan_node(child):
            proxy, stats = instrument_plan(child)
            setattr(node, attr, proxy)
            child_stats.append(stats)
    shards = getattr(node, "shards", None)
    if isinstance(shards, list):
        # An exchange: each per-shard pipeline is instrumented (one
        # proxy per shard, each touched by exactly one shard thread;
        # the post-join read is ordered by Thread.join), but marked
        # hidden so traces never depend on the shard count.
        proxies = []
        for pipeline in shards:
            proxy, stats = instrument_plan(pipeline)
            stats.hidden = True
            proxies.append(proxy)
            child_stats.append(stats)
        node.shards = proxies
    stats = OperatorStats(
        describe=node.describe(),
        children=child_stats,
        extra=getattr(node, "exec_stats", None) or {},
        trace_label=getattr(node, "trace_describe", None),
    )
    return _CountingNode(node, stats), stats


def render_stats(
    stats: OperatorStats,
    cost: OperatorCostModel = DEFAULT_COST,
    depth: int = 0,
) -> str:
    """The ``explain()`` tree, annotated with per-operator statistics."""
    extra = "".join(
        f" {key}={value}" for key, value in stats.extra.items()
    )
    line = (
        "  " * depth
        + f"{stats.describe} [rows_in={stats.rows_in} "
        + f"rows_out={stats.rows_out} vtime={cost.seconds(stats):.6f}s"
        + f"{extra}]"
    )
    lines = [line]
    for child in stats.children:
        lines.append(render_stats(child, cost, depth + 1))
    return "\n".join(lines)


def emit_operator_spans(
    stats: OperatorStats, cost: OperatorCostModel = DEFAULT_COST
) -> None:
    """Mirror the stats tree as nested ``op:`` spans on the active trace.

    Each operator's span covers its children plus its own exclusive
    cost, laying the plan out as a properly nested flame graph on the
    request's virtual timeline.  No-op when tracing is inactive.
    """
    if not trace.active() or stats.hidden:
        return
    with trace.span(
        "op:" + (stats.trace_label or stats.describe),
        rows_in=stats.rows_in,
        rows_out=stats.rows_out,
    ):
        for child in stats.children:
            emit_operator_spans(child, cost)
        trace.advance(cost.seconds(stats))


@dataclass
class AnalyzedQuery:
    """EXPLAIN ANALYZE output: the result set plus the annotated plan.

    ``optimizer`` carries the query optimizer's decision report
    (duck-typed: anything with ``decisions`` and ``render()``) when the
    statement involved expensive UDFs; plans without LM work render
    exactly as before.  ``truncated`` is ``(kept, total)`` when a
    ``max_rows`` cap dropped result rows — truncation is metered at
    the engine and noted in the render, never silent.
    """

    stats: OperatorStats
    result: object  # a repro.db ResultSet (duck-typed, see module doc)
    cost: OperatorCostModel = DEFAULT_COST
    optimizer: object | None = None
    truncated: "tuple[int, int] | None" = None

    @property
    def total_seconds(self) -> float:
        return sum(self.cost.seconds(node) for node in self.stats.walk())

    def render(self) -> str:
        rendered = render_stats(self.stats, self.cost)
        if self.optimizer is not None and getattr(
            self.optimizer, "decisions", None
        ):
            rendered += "\n" + self.optimizer.render()
        if self.truncated is not None:
            kept, total = self.truncated
            rendered += (
                f"\nResult truncated: kept {kept} of {total} rows "
                f"(max_rows={kept})"
            )
        return rendered
