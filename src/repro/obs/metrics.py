"""A process-wide metrics registry with deterministic snapshots.

Counters, gauges, and histograms in the Prometheus style, built for a
simulated deployment: every value is either an event count or a
virtual-clock quantity, so a snapshot is machine-independent.  Two
design points keep snapshots byte-deterministic:

- **fixed bucket bounds** — histograms take their bounds at creation
  (default :data:`DEFAULT_BUCKETS`) instead of adapting to data, so
  bucket layout never depends on observation order;
- **order-independent sums** — concurrent workers observe values in
  OS-schedule order, and naive float accumulation would make the
  histogram sum differ in its last bits run to run.  Observations are
  kept and summed with ``math.fsum`` (exactly rounded, hence
  permutation-invariant) at snapshot time.

Instruments are identified by name alone; requesting the same name with
a different kind is an error rather than a silent shadowing.
"""

from __future__ import annotations

import math
import threading

from repro.obs import racecheck

#: Default histogram bounds, in virtual seconds (upper-inclusive edges).
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "_name", "_value")

    def __init__(self, lock: threading.Lock, name: str = "counter") -> None:
        self._lock = lock
        self._name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.write(f"metrics.{self._name}")
            self._value += amount

    @property
    def value(self) -> int:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read(f"metrics.{self._name}")
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_lock", "_name", "_value")

    def __init__(self, lock: threading.Lock, name: str = "gauge") -> None:
        self._lock = lock
        self._name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.write(f"metrics.{self._name}")
            self._value = float(value)

    @property
    def value(self) -> float:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read(f"metrics.{self._name}")
            return self._value


class Histogram:
    """Observation distribution over fixed, deterministic bounds."""

    __slots__ = ("_lock", "_name", "bounds", "_counts", "_observations")

    def __init__(
        self,
        lock: threading.Lock,
        bounds: tuple[float, ...],
        name: str = "histogram",
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"bounds must be a non-empty ascending tuple, got {bounds}"
            )
        self._lock = lock
        self._name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._observations: list[float] = []

    def observe(self, value: float) -> None:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.write(f"metrics.{self._name}")
            self._observations.append(float(value))
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[position] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read(f"metrics.{self._name}")
            return len(self._observations)

    def snapshot(self) -> dict[str, object]:
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read(f"metrics.{self._name}")
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(self.bounds, self._counts)
            }
            buckets["+Inf"] = self._counts[-1]
            return {
                "count": len(self._observations),
                # fsum is exactly rounded, so the sum is independent of
                # the order worker threads observed in.
                "sum": math.fsum(self._observations),
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named instruments behind one lock; scrape with :meth:`snapshot`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, tuple[str, object]] = {}

    def _get(self, name: str, kind: str, factory):
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read("MetricsRegistry._instruments")
            entry = self._instruments.get(name)
            if entry is None:
                racecheck.write("MetricsRegistry._instruments")
                instrument = factory()
                self._instruments[name] = (kind, instrument)
                return instrument
            existing_kind, instrument = entry
            if existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, not {kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(
            name, "counter", lambda: Counter(self._lock, name)
        )

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(self._lock, name))

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(
            name, "histogram", lambda: Histogram(self._lock, bounds, name)
        )

    def snapshot(self) -> dict[str, object]:
        """All instruments, name-sorted: ``{name: value-or-histogram}``.

        Deterministic for a deterministic workload: counts and gauge
        values are exact, histogram sums are permutation-invariant.
        """
        with racecheck.guard("MetricsRegistry._lock", self._lock):
            racecheck.read("MetricsRegistry._instruments")
            names = sorted(self._instruments)
            entries = [(name, *self._instruments[name]) for name in names]
        scraped: dict[str, object] = {}
        for name, kind, instrument in entries:
            if kind == "histogram":
                scraped[name] = instrument.snapshot()
            else:
                scraped[name] = instrument.value
        return scraped
