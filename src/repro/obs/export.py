"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

Both exporters are byte-deterministic: spans are walked in (request
index, depth-first order), span ids are assigned positionally during
the walk (never from runtime object identity), every mapping is
serialized with sorted keys and fixed separators, and all timestamps
are virtual seconds (JSONL) or their integer-microsecond rounding
(Chrome).  Two runs of the same workload — at any worker count —
produce identical files.

The Chrome format (``chrome://tracing`` / Perfetto) uses one ``tid``
per request, so a served stream renders as one swim-lane per request
with the pipeline steps, SQL operators, and LM calls nested inside.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import Span, Tracer


def _dumps(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _records(tracer: Tracer) -> list[dict[str, object]]:
    """Flatten the trace to one dict per span, ids assigned in walk order."""
    records: list[dict[str, object]] = []
    next_id = 1
    for index, root in tracer.roots:

        def visit(span: Span, parent_id: int | None) -> None:
            nonlocal next_id
            span_id = next_id
            next_id += 1
            record: dict[str, object] = {
                "id": span_id,
                "parent": parent_id,
                "request": index,
                "name": span.name,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "attrs": dict(span.attrs),
            }
            if span.events:
                record["events"] = [
                    {
                        "name": happened.name,
                        "at_s": happened.at_s,
                        "attrs": dict(happened.attrs),
                    }
                    for happened in span.events
                ]
            records.append(record)
            for child in span.children:
                visit(child, span_id)

        visit(root, None)
    return records


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, one span per line."""
    lines = [_dumps(record) for record in _records(tracer)]
    return "\n".join(lines) + ("\n" if lines else "")


def _microseconds(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def to_chrome(tracer: Tracer) -> str:
    """A ``chrome://tracing`` / Perfetto ``trace_event`` JSON document."""
    events: list[dict[str, object]] = []
    for index, root in tracer.roots:
        for span in root.walk():
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": index,
                    "cat": "tag",
                    "name": span.name,
                    "ts": _microseconds(span.start_s),
                    "dur": _microseconds(span.duration_s),
                    "args": dict(span.attrs),
                }
            )
            for happened in span.events:
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": index,
                        "cat": "tag",
                        "name": happened.name,
                        "ts": _microseconds(happened.at_s),
                        "args": dict(happened.attrs),
                    }
                )
    return _dumps({"displayTimeUnit": "ms", "traceEvents": events})


def write_trace(
    tracer: Tracer, path: str | Path, format: str = "chrome"
) -> Path:
    """Serialize the trace to ``path``; returns the written path."""
    if format == "chrome":
        payload = to_chrome(tracer)
    elif format == "jsonl":
        payload = to_jsonl(tracer)
    else:
        raise ValueError(
            f"unknown trace format {format!r}; expected 'chrome' or 'jsonl'"
        )
    target = Path(path)
    target.write_text(payload, encoding="utf-8")
    return target
