"""Deterministic structured tracing on per-request virtual timelines.

A :class:`Tracer` records one tree of :class:`Span`\\ s per served
request: request -> pipeline step -> SQL operator / LM call / retry
attempt.  Spans are stamped on a *per-request virtual timeline* — a
plain float cursor starting at 0.0 when the request begins — never on
wall-clock time, and never on the shared makespan clock either.

Why not the makespan clock?  The serving layer's
:class:`~repro.serve.clock.VirtualClock` measures the single simulated
accelerator that micro-batches are serialized through, so its readings
at any instant depend on which *other* requests were in flight — i.e.
on the worker count.  Span durations here are instead pure functions of
the work itself (token counts through the latency model, rows through
the operator cost model, fault/backoff costs from their deterministic
plans), so a request's trace is byte-identical across runs *and* across
``workers=1`` vs ``workers=8``.  The scheduling-dependent numbers
(batch-shared latencies, makespan) stay where they belong: in
:class:`~repro.lm.usage.Usage` and the metrics registry.

Components emit spans through the module-level helpers (:func:`span`,
:func:`leaf`, :func:`event`, :func:`advance`) against a thread-local
active context, so no constructor plumbing is needed: the pipeline,
batching facade, and resilience middleware all pick up whatever request
context their thread is serving.  With no active context every helper
is a cheap no-op, so tracing-off overhead is effectively zero
(``benchmarks/bench_trace_overhead.py``).

Span identity is deliberately absent at runtime: ids are assigned at
export time from (request index, depth-first order), never from
``id()``/``uuid``/counters that would vary across runs — the
determinism linter's DET106 rule enforces this for the whole package.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs import racecheck


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (breaker trip, deadline)."""

    name: str
    #: Request-timeline offset, in virtual seconds.
    at_s: float
    attrs: dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed operation on a request's virtual timeline."""

    name: str
    #: Start/end offsets from the request's t=0, in virtual seconds.
    start_s: float
    end_s: float = 0.0
    attrs: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def walk(self):
        """Depth-first pre-order over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class _Context:
    """One request's live trace state, bound to the serving thread."""

    __slots__ = ("cursor", "stack")

    def __init__(self, root: Span) -> None:
        self.cursor = 0.0
        self.stack: list[Span] = [root]


_LOCAL = threading.local()


def _context() -> _Context | None:
    return getattr(_LOCAL, "context", None)


def active() -> bool:
    """Is a request trace being recorded on this thread?"""
    return _context() is not None


class _NullSpan:
    """Shared no-op context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager for one open span on the active context."""

    __slots__ = ("context", "span")

    def __init__(self, context: _Context, opened: Span) -> None:
        self.context = context
        self.span = opened

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> bool:
        self.span.end_s = self.context.cursor
        popped = self.context.stack.pop()
        assert popped is self.span, "span stack out of order"
        return False


def span(name: str, **attrs: object):
    """Open a nested span; a no-op when no trace is active."""
    context = _context()
    if context is None:
        return _NULL_SPAN
    opened = Span(name, start_s=context.cursor, attrs=attrs)
    context.stack[-1].children.append(opened)
    context.stack.append(opened)
    return _OpenSpan(context, opened)


def leaf(name: str, seconds: float = 0.0, **attrs: object) -> None:
    """Record a closed child span of ``seconds`` virtual duration.

    Advances the request cursor, so siblings lay out sequentially.
    """
    context = _context()
    if context is None:
        return
    start = context.cursor
    context.cursor = start + seconds
    context.stack[-1].children.append(
        Span(name, start_s=start, end_s=context.cursor, attrs=attrs)
    )


def event(name: str, **attrs: object) -> None:
    """Attach a point event to the innermost open span."""
    context = _context()
    if context is None:
        return
    context.stack[-1].events.append(
        SpanEvent(name, at_s=context.cursor, attrs=attrs)
    )


def advance(seconds: float) -> None:
    """Move the request's virtual cursor forward (inside an open span)."""
    context = _context()
    if context is not None:
        context.cursor += seconds


class _Suspended:
    """Context manager hiding the active trace from nested calls."""

    __slots__ = ("saved",)

    def __enter__(self) -> None:
        self.saved = _context()
        _LOCAL.context = None

    def __exit__(self, *exc_info: object) -> bool:
        _LOCAL.context = self.saved
        return False


def suspended():
    """Temporarily deactivate tracing on this thread.

    The batching scheduler uses this around a flush: the flush runs on
    whichever requester's thread completed the barrier, so letting the
    inner model self-trace there would attribute the whole micro-batch
    to one arbitrary request.  The per-request ``lm.call`` spans are
    emitted at delivery instead, on each requester's own context.
    """
    return _Suspended()


class _RequestContext:
    """Context manager for one request's root span."""

    __slots__ = ("tracer", "index", "root", "saved")

    def __init__(self, tracer: "Tracer", name: str, index: int) -> None:
        self.tracer = tracer
        self.index = index
        self.root = Span(
            "request", start_s=0.0, attrs={"index": index, "request": name}
        )

    def __enter__(self) -> Span:
        self.saved = _context()
        _LOCAL.context = _Context(self.root)
        return self.root

    def __exit__(self, *exc_info: object) -> bool:
        context = _context()
        if context is not None:
            self.root.end_s = context.cursor
        _LOCAL.context = self.saved
        self.tracer._record(self.index, self.root)
        return False


class _NullRequest:
    """Disabled-tracer stand-in for :meth:`Tracer.request`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_REQUEST = _NullRequest()


class Tracer:
    """Collects request span trees; disabled tracers record nothing."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._roots: list[tuple[int, Span]] = []

    def request(self, name: str, index: int):
        """Open (and on exit record) the root span for one request."""
        if not self.enabled:
            return _NULL_REQUEST
        return _RequestContext(self, name, index)

    def _record(self, index: int, root: Span) -> None:
        with racecheck.guard("Tracer._lock", self._lock):
            racecheck.write("Tracer._roots")
            self._roots.append((index, root))

    @property
    def roots(self) -> list[tuple[int, Span]]:
        """Recorded (request index, root span) pairs, sorted by index.

        The sort makes export order a pure function of the request
        stream — worker threads record completions in OS-schedule
        order, which must never leak into artifact bytes.
        """
        with racecheck.guard("Tracer._lock", self._lock):
            racecheck.read("Tracer._roots")
            return sorted(self._roots, key=lambda pair: pair[0])

    def clear(self) -> None:
        with racecheck.guard("Tracer._lock", self._lock):
            racecheck.write("Tracer._roots")
            self._roots = []
