"""Deterministic observability: tracing, metrics, EXPLAIN ANALYZE.

The paper's core claim is about *where* work happens — SQL operators
vs. LM calls vs. post-hoc reasoning — and this package makes that
attribution visible without sacrificing the repro's determinism
guarantees:

- :mod:`repro.obs.trace` — nested spans (request -> pipeline step ->
  SQL operator / LM call / retry) on per-request virtual timelines;
  byte-identical traces across runs and worker counts;
- :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  deterministic bucket bounds and permutation-invariant sums, scraped
  into :class:`~repro.serve.server.ServeReport`;
- :mod:`repro.obs.racecheck` — an Eraser-style lockset + vector-clock
  dynamic race checker behind zero-cost-when-disabled hooks, the
  runtime half of the concurrency analyzer
  (:mod:`repro.analysis.concurrency`);
- :mod:`repro.obs.export` — JSON-lines and Chrome ``trace_event``
  exporters (``python -m repro trace``, ``serve --trace out.json``);
- :mod:`repro.obs.explain` — per-operator rows/virtual-time counting
  behind ``EXPLAIN ANALYZE`` in :meth:`repro.db.Database.execute`.

This package imports nothing from the rest of the library, so every
layer (db, lm, core, serve) can emit spans without import cycles.
"""

from repro.obs import racecheck, trace
from repro.obs.explain import (
    AnalyzedQuery,
    OperatorCostModel,
    OperatorStats,
    emit_operator_spans,
    instrument_plan,
    render_stats,
)
from repro.obs.export import to_chrome, to_jsonl, write_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.racecheck import RaceChecker, RaceFinding, RaceReport
from repro.obs.trace import Span, SpanEvent, Tracer

__all__ = [
    "AnalyzedQuery",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorCostModel",
    "OperatorStats",
    "RaceChecker",
    "RaceFinding",
    "RaceReport",
    "Span",
    "SpanEvent",
    "Tracer",
    "racecheck",
    "emit_operator_spans",
    "instrument_plan",
    "render_stats",
    "to_chrome",
    "to_jsonl",
    "trace",
    "write_trace",
]
