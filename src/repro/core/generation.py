"""Answer-generation (gen) step implementations."""

from __future__ import annotations

from typing import Any

from repro.lm import SimulatedLM
from repro.lm.prompts import answer_prompt, summary_prompt


class NoGenerator:
    """gen that skips the LM: the executed table *is* the answer.

    This is vanilla Text2SQL, which "omits the final generation step
    and stops short after query execution" (§3).  The table is
    flattened into a value list for exact-match scoring.
    """

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> list[Any]:
        values: list[Any] = []
        for record in table:
            if len(record) == 1:
                values.append(next(iter(record.values())))
            else:
                values.append(tuple(record.values()))
        return values


class SingleCallGenerator:
    """gen with one LM call over the serialized table (the RAG pattern)."""

    def __init__(self, lm: SimulatedLM, aggregation: bool = False) -> None:
        self.lm = lm
        self.aggregation = aggregation

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> str:
        prompt = answer_prompt(
            request, table, aggregation=self.aggregation
        )
        return self.lm.complete(prompt).text


class RefineGenerator:
    """gen by sequential refinement: fold chunks through a running answer.

    The complementary iterative pattern to map-reduce (§3, "iterative or
    recursive LM generation patterns"): the model keeps one working
    answer and revises it against each successive chunk of rows, so
    later rows can correct earlier conclusions.  Costs one call per
    chunk, strictly sequential.
    """

    def __init__(self, lm: SimulatedLM, chunk_rows: int = 16) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.lm = lm
        self.chunk_rows = chunk_rows

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> str:
        if not table:
            response = self.lm.complete(
                answer_prompt(request, [], aggregation=True)
            )
            return response.text
        items = [
            "; ".join(f"{key}: {value}" for key, value in record.items())
            for record in table
        ]
        answer = ""
        for start in range(0, len(items), self.chunk_rows):
            chunk = items[start : start + self.chunk_rows]
            if answer:
                chunk = [f"Current draft answer: {answer}"] + chunk
            response = self.lm.complete(summary_prompt(request, chunk))
            answer = response.text
        return answer


class MapReduceGenerator:
    """gen with hierarchical folding for tables beyond one context.

    Rows are summarised in chunks and the partial summaries folded
    until one answer remains — the iterative generation pattern the
    paper highlights (§3, "LM Generation Patterns").
    """

    def __init__(self, lm: SimulatedLM, chunk_rows: int = 24) -> None:
        if chunk_rows < 2:
            raise ValueError("chunk_rows must be >= 2")
        self.lm = lm
        self.chunk_rows = chunk_rows

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> str:
        if not table:
            response = self.lm.complete(
                answer_prompt(request, [], aggregation=True)
            )
            return response.text
        items = [
            "; ".join(f"{key}: {value}" for key, value in record.items())
            for record in table
        ]
        while len(items) > self.chunk_rows:
            folded: list[str] = []
            for start in range(0, len(items), self.chunk_rows):
                chunk = items[start : start + self.chunk_rows]
                response = self.lm.complete(
                    summary_prompt(request, chunk)
                )
                folded.append(response.text)
            items = folded
        response = self.lm.complete(summary_prompt(request, items))
        return response.text
