"""The TAG model: query synthesis, query execution, answer generation.

Implements the paper's three-equation model (§2)::

    syn(R)    -> Q      (query synthesis)
    exec(Q)   -> T      (query execution)
    gen(R, T) -> A      (answer generation)

A :class:`TAGPipeline` composes one implementation of each step.  The
library ships interchangeable step implementations, so every baseline
in the paper's evaluation is a TAG special case:

- Text2SQL        = LMQuerySynthesizer + SQLExecutor + NoGenerator
- RAG             = EmbeddingSynthesizer + VectorSearchExecutor +
  SingleCallGenerator
- Text2SQL + LM   = LMQuerySynthesizer(retrieval mode) + SQLExecutor +
  SingleCallGenerator
- hand-written TAG = expert pipelines over semantic operators
  (see :mod:`repro.methods.handwritten`)
"""

from repro.core.execution import SQLExecutor, VectorSearchExecutor
from repro.core.generation import (
    MapReduceGenerator,
    NoGenerator,
    RefineGenerator,
    SingleCallGenerator,
)
from repro.core.multihop import ChainResult, Hop, TAGChain
from repro.core.repair import (
    RepairAttempt,
    RepairPolicy,
    SelfCorrectingPipeline,
    describe_failure,
    render_transcript,
)
from repro.core.synthesis import (
    EmbeddingSynthesizer,
    FixedQuerySynthesizer,
    LMQuerySynthesizer,
)
from repro.core.tag import (
    FallbackAttempt,
    FallbackPipeline,
    TAGError,
    TAGPipeline,
    TAGResult,
)

__all__ = [
    "ChainResult",
    "EmbeddingSynthesizer",
    "FallbackAttempt",
    "FallbackPipeline",
    "FixedQuerySynthesizer",
    "Hop",
    "LMQuerySynthesizer",
    "MapReduceGenerator",
    "NoGenerator",
    "RefineGenerator",
    "RepairAttempt",
    "RepairPolicy",
    "SQLExecutor",
    "SelfCorrectingPipeline",
    "SingleCallGenerator",
    "TAGChain",
    "TAGError",
    "TAGPipeline",
    "TAGResult",
    "VectorSearchExecutor",
    "describe_failure",
    "render_transcript",
]
