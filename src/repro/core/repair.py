"""The self-correcting pipeline: deterministic validate→repair→retry.

One bad generation should not be a terminal failure.  The analyzer
pre-flight and the engine already say *exactly* why a synthesized query
is broken (span-level ANA diagnostics, syntax positions, planning
errors); feedback-driven self-correction feeds that evidence back to
the model and retries — the loop SQL-repair studies show recovers a
large fraction of invalid/hallucinated text-to-SQL generations.

:class:`SelfCorrectingPipeline` is a :class:`~repro.core.tag
.TAGPipeline` whose exec step wraps a bounded repair loop:

1. run exec as usual (the analyzer pre-flight runs inside the executor
   when enabled);
2. on an engine failure (:class:`~repro.errors.DatabaseError`), build a
   repair prompt from the schema, the failed SQL, and the structured
   diagnostics (:func:`describe_failure`), ask the LM for a corrected
   query, and re-execute;
3. repeat up to ``policy.max_repairs`` times; when the budget runs dry,
   raise :class:`~repro.errors.RepairExhaustedError` carrying the full
   attempt history — the pipeline's normal error capture turns it into
   a structured ``TAGError`` (kind ``"repair_exhausted"``), so a
   :class:`~repro.core.tag.FallbackPipeline` degrades to its next tier
   exactly as for any other failure.

Every attempt is recorded as a :class:`RepairAttempt` on
``TAGResult.repairs`` (success or not) and metered one-meter-three-ways:
``Usage.repair_attempts/repair_successes/repair_exhausted``,
``repro_repair_*_total`` metrics counters, and the per-request
transcript (:func:`render_transcript`).

Determinism.  With ``max_repairs=0`` the pipeline takes *exactly* the
base class's code path — byte-identical traces, usage, and answers.
With repairs enabled, every input to the loop (failed SQL, rendered
diagnostics, prompt text, LM response) is a pure function of the
request and the catalog, so repair schedules are identical across runs
and worker counts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.tag import TAGError, TAGPipeline, TAGResult
from repro.errors import (
    AnalysisError,
    DatabaseError,
    RepairExhaustedError,
    SQLSyntaxError,
)
from repro.lm.prompts import repair_prompt
from repro.obs import trace

#: Usage counter -> metrics counter, the standard naming convention.
_METRIC_NAMES = {
    "repair_attempts": "repro_repair_attempts_total",
    "repair_successes": "repro_repair_successes_total",
    "repair_exhausted": "repro_repair_exhausted_total",
}

#: Usage increments are read-modify-write; shared across pipelines so
#: concurrent serving workers never lose a repair count.
_METER_LOCK = threading.Lock()


@dataclass(frozen=True)
class RepairPolicy:
    """How much repair a pipeline may spend on one request."""

    #: Repair prompts allowed per request; 0 disables the loop (the
    #: pipeline then behaves byte-identically to a plain TAGPipeline).
    max_repairs: int = 2
    #: Generation budget for each repair completion.
    max_tokens: int = 256

    def __post_init__(self) -> None:
        if self.max_repairs < 0:
            raise ValueError(
                f"max_repairs must be >= 0, got {self.max_repairs}"
            )
        if self.max_tokens <= 0:
            raise ValueError(
                f"max_tokens must be > 0, got {self.max_tokens}"
            )


@dataclass
class RepairAttempt:
    """One entry of a request's repair transcript.

    ``attempt`` 0 is the original synthesis; 1..N are repairs.  A
    successful attempt has ``error is None`` and empty ``diagnostics``;
    a failed one carries the structured error plus the flattened
    diagnostics text that was fed into the next repair prompt.
    """

    attempt: int
    sql: str
    error: TAGError | None = None
    diagnostics: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None


def describe_failure(error: BaseException) -> str:
    """Structured diagnostics text for a failed SQL attempt.

    Analyzer rejections render every error-severity diagnostic with its
    span; syntax errors carry their position; other engine failures
    fall back to the exception's class and message.  This is the text a
    repair prompt grounds its correction on, so it must name the
    offending identifiers the way the handlers expect.
    """
    report = getattr(error, "report", None)
    if isinstance(error, AnalysisError) and report is not None:
        return "; ".join(
            diagnostic.render() for diagnostic in report.errors
        )
    if isinstance(error, SQLSyntaxError) and error.position is not None:
        return f"syntax error at position {error.position}: {error}"
    return f"{type(error).__name__}: {error}"


def render_transcript(attempts: list[RepairAttempt]) -> str:
    """Human-readable repair transcript (used by reports and tests)."""
    if not attempts:
        return "repair transcript: no attempts"
    outcome = "repaired" if attempts[-1].ok else "exhausted"
    lines = [
        f"repair transcript: {len(attempts)} attempts, {outcome}"
    ]
    for entry in attempts:
        stage = "synthesis" if entry.attempt == 0 else "repair"
        status = "ok" if entry.ok else "failed"
        lines.append(f"attempt {entry.attempt} ({stage}): {status}")
        lines.append(f"  sql: {' '.join(entry.sql.split())}")
        if entry.error is not None:
            lines.append(f"  error: {entry.error}")
        if entry.diagnostics:
            lines.append(f"  diagnostics: {entry.diagnostics}")
    return "\n".join(lines)


class SelfCorrectingPipeline(TAGPipeline):
    """A TAGPipeline whose exec step runs the bounded repair loop.

    ``lm`` is any ``complete``-shaped model (the same object the
    synthesis step uses, so repair tokens land in the same
    :class:`~repro.lm.usage.Usage`); ``schema_sql`` is the BIRD schema
    encoding of the catalog the queries run against (normally
    ``dataset.prompt_schema()``).  ``external_knowledge`` is forwarded
    into repair prompts so a repaired generation sees the same evidence
    the original one did; ``rewrite_sql`` optionally post-processes
    each repaired query (e.g. the retrieval-mode broadening of
    Text2SQL+LM) so repairs go through the same shaping as the original
    synthesis.  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` mirror.
    """

    def __init__(
        self,
        synthesis,
        execution,
        generation,
        lm,
        schema_sql: str,
        policy: RepairPolicy | None = None,
        external_knowledge: str | None = None,
        rewrite_sql: "Callable[[str], str] | None" = None,
        metrics: Any = None,
    ) -> None:
        super().__init__(synthesis, execution, generation)
        self.lm = lm
        self.schema_sql = schema_sql
        self.policy = policy if policy is not None else RepairPolicy()
        self.external_knowledge = external_knowledge
        self.rewrite_sql = rewrite_sql
        self.metrics = metrics

    def _execute_step(
        self, request: str, result: TAGResult
    ) -> list[dict[str, Any]]:
        try:
            return super()._execute_step(request, result)
        except DatabaseError as error:
            if self.policy.max_repairs < 1 or not isinstance(
                result.query, str
            ):
                raise
            return self._repair(request, result, error)

    # ------------------------------------------------------------------
    # the repair loop
    # ------------------------------------------------------------------

    def _repair(
        self, request: str, result: TAGResult, error: DatabaseError
    ) -> list[dict[str, Any]]:
        attempts = [self._failed_attempt(0, result.query, error)]
        result.repairs = attempts
        for attempt in range(1, self.policy.max_repairs + 1):
            failed = attempts[-1]
            self._meter("repair_attempts")
            with trace.span(
                "repair", attempt=attempt, kind=failed.error.kind
            ):
                sql = self._resynthesize(request, failed, attempt)
                result.query = sql
                try:
                    with trace.span("step:execution"):
                        table = self.execution.execute(sql)
                except DatabaseError as retry_error:
                    attempts.append(
                        self._failed_attempt(attempt, sql, retry_error)
                    )
                    trace.event(
                        "repair.failed",
                        attempt=attempt,
                        kind=attempts[-1].error.kind,
                    )
                    continue
                attempts.append(RepairAttempt(attempt=attempt, sql=sql))
                self._meter("repair_successes")
                trace.event("repair.succeeded", attempt=attempt)
                return table
        self._meter("repair_exhausted")
        raise RepairExhaustedError(attempts) from error

    def _resynthesize(
        self, request: str, failed: RepairAttempt, attempt: int
    ) -> str:
        prompt = repair_prompt(
            self.schema_sql,
            request,
            failed.sql,
            failed.diagnostics,
            self.external_knowledge,
            attempt=attempt,
        )
        sql = self.lm.complete(
            prompt, max_tokens=self.policy.max_tokens
        ).text
        if self.rewrite_sql is not None:
            sql = self.rewrite_sql(sql)
        return sql

    def _failed_attempt(
        self, attempt: int, sql: str, error: DatabaseError
    ) -> RepairAttempt:
        return RepairAttempt(
            attempt=attempt,
            sql=sql,
            error=TAGError.from_exception(error, step=1, sql=sql),
            diagnostics=describe_failure(error),
        )

    def _meter(self, counter: str) -> None:
        usage = getattr(self.lm, "usage", None)
        if usage is not None:
            with _METER_LOCK:
                setattr(usage, counter, getattr(usage, counter) + 1)
        if self.metrics is not None:
            self.metrics.counter(_METRIC_NAMES[counter]).inc()
