"""Multi-hop TAG: chaining syn/exec/gen iterations.

The paper defines TAG "tractably as a single iteration of these steps,
but one can consider extending TAG in a multi-hop fashion" (§2) and
names the agentic loop as future work (§5).  :class:`TAGChain` is that
extension in its deterministic form: a sequence of hops where each
hop's request template may splice in the previous hop's answer
(``{answer}``) and the original request (``{request}``)::

    chain = TAGChain([
        Hop("Which circuit located in Southeast Asia hosted the most "
            "races?", pipeline_one),
        Hop("Provide information about the races held on {answer}.",
            pipeline_two),
    ])
    result = chain.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tag import TAGPipeline, TAGResult
from repro.errors import ReproError


@dataclass
class Hop:
    """One chain stage: a request template plus the pipeline to run it.

    The template may reference ``{answer}`` (previous hop's answer,
    empty string on the first hop) and ``{request}`` (the original
    request passed to :meth:`TAGChain.run`).
    """

    template: str
    pipeline: TAGPipeline


@dataclass
class ChainResult:
    """All hop results plus the final answer."""

    hops: list[TAGResult] = field(default_factory=list)

    @property
    def answer(self):
        return self.hops[-1].answer if self.hops else None

    @property
    def ok(self) -> bool:
        return bool(self.hops) and all(hop.ok for hop in self.hops)


class TAGChain:
    """Run hops in order, feeding each answer into the next template.

    A failed hop stops the chain (its error is on the hop's result);
    downstream hops never run with a poisoned ``{answer}``.
    """

    def __init__(self, hops: list[Hop]) -> None:
        if not hops:
            raise ReproError("TAGChain requires at least one hop")
        self.hops = list(hops)

    def run(self, request: str = "") -> ChainResult:
        result = ChainResult()
        previous_answer = ""
        for hop in self.hops:
            hop_request = hop.template.replace(
                "{request}", request
            ).replace("{answer}", _as_text(previous_answer))
            hop_result = hop.pipeline.run(hop_request)
            result.hops.append(hop_result)
            if not hop_result.ok:
                break
            previous_answer = hop_result.answer
        return result


def _as_text(answer) -> str:
    """Render a hop answer for splicing into the next request."""
    if answer is None:
        return ""
    if isinstance(answer, str):
        return answer
    if isinstance(answer, (list, tuple)):
        if len(answer) == 1:
            return _as_text(answer[0])
        return ", ".join(_as_text(value) for value in answer)
    return str(answer)
