"""Query-synthesis (syn) step implementations."""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from repro.data.base import Dataset
from repro.embed import HashingEmbedder
from repro.lm import SimulatedLM
from repro.lm.prompts import text2sql_prompt


class LMQuerySynthesizer:
    """syn via the LM in the BIRD Text2SQL prompt format.

    ``retrieval_mode=True`` converts the generated query into a broad
    row-retrieval query (``SELECT *``, no LIMIT) — the Text2SQL+LM
    baseline's synthesis, which asks the model for *relevant rows*
    rather than a direct answer.

    ``registry`` (a :class:`repro.serve.semantic.QueryRegistry`) turns
    on few-shot injection: the ``examples_k`` accepted entries most
    similar to the request are retrieval-ranked and flattened into the
    prompt as ``-- Example Question/SQL`` pairs.  The registry is
    frozen while a serve run is in flight (the server records new
    entries only between runs), so the injected examples — and hence
    the prompt bytes — are identical at any worker count.
    """

    def __init__(
        self,
        lm: SimulatedLM,
        dataset: Dataset,
        retrieval_mode: bool = False,
        external_knowledge: str | None = None,
        registry=None,
        examples_k: int = 3,
    ) -> None:
        self.lm = lm
        self.dataset = dataset
        self.retrieval_mode = retrieval_mode
        self.external_knowledge = external_knowledge
        self.registry = registry
        self.examples_k = examples_k

    def synthesize(self, request: str) -> str:
        examples = None
        if self.registry is not None:
            examples = [
                (entry.question, entry.sql)
                for entry in self.registry.examples(
                    request, self.examples_k
                )
            ]
        prompt = text2sql_prompt(
            self.dataset.prompt_schema(),
            request,
            self.external_knowledge,
            examples=examples,
        )
        sql = self.lm.complete(prompt, max_tokens=256).text
        if self.retrieval_mode:
            sql = _broaden_to_retrieval(sql)
        return sql


def _broaden_to_retrieval(sql: str) -> str:
    """Rewrite an answer query into an over-selecting retrieval query."""
    broadened = re.sub(
        r"^SELECT .*? FROM ",
        "SELECT * FROM ",
        sql,
        count=1,
        flags=re.IGNORECASE | re.DOTALL,
    )
    broadened = re.sub(
        r"\s+LIMIT \d+(\s+OFFSET \d+)?\s*$",
        "",
        broadened,
        flags=re.IGNORECASE,
    )
    return broadened


class FixedQuerySynthesizer:
    """syn that returns an expert-written query verbatim.

    The hand-written TAG baseline "leverages expert knowledge of the
    table schema rather than automatic query synthesis" (§4.2).
    """

    def __init__(self, query: Any) -> None:
        self.query = query

    def synthesize(self, request: str) -> Any:
        return self.query


class EmbeddingSynthesizer:
    """syn for vector-store execution: embed the request (RAG)."""

    def __init__(self, embedder: HashingEmbedder) -> None:
        self.embedder = embedder

    def synthesize(self, request: str) -> np.ndarray:
        return self.embedder.embed(request)
