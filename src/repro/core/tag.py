"""TAGPipeline: the composed syn -> exec -> gen loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import ReproError
from repro.obs import trace

#: Pipeline step names, indexed by the order they run.
STEP_NAMES = ("synthesis", "execution", "generation")


@dataclass
class TAGError:
    """A structured failure record: what broke, where, and why.

    Degradation decisions (fallback chains, serving reports, tests)
    match on ``kind`` and ``step`` rather than parsing strings; the
    original exception rides along for re-raising and diagnostics but
    is excluded from equality, so two runs that fail identically
    compare equal.

    ``sql`` preserves the SQL text that was being executed (or that
    analysis rejected) and ``step_input`` the failing step's input
    (the request for syn, the query for exec, the table for gen) — so
    error reports and repair prompts can show *what* was run, not just
    that it broke.  ``repairs`` carries the full repair-attempt history
    when the failure came through the self-correcting pipeline's
    exhausted budget (:mod:`repro.core.repair`).
    """

    #: Exception class name, e.g. ``"SQLSyntaxError"``.
    kind: str
    message: str
    #: Index into :data:`STEP_NAMES` of the failing step; None when the
    #: failure happened outside the pipeline (e.g. in a serving worker).
    step: int | None = None
    exception: Exception | None = field(
        default=None, repr=False, compare=False
    )
    #: The SQL text whose execution (or analysis) failed, when known.
    sql: str | None = None
    #: The failing step's input; excluded from equality and repr like
    #: the exception (it may be a large table or non-comparable object).
    step_input: Any = field(default=None, repr=False, compare=False)
    #: Repair attempts (:class:`repro.core.repair.RepairAttempt`) that
    #: preceded this failure, original synthesis first; empty unless the
    #: self-correcting pipeline exhausted its budget.
    repairs: list = field(default_factory=list)

    @classmethod
    def from_exception(
        cls,
        exception: Exception,
        step: int | None = None,
        sql: str | None = None,
        step_input: Any = None,
    ) -> "TAGError":
        from repro.errors import AnalysisError, RepairExhaustedError

        if isinstance(exception, RepairExhaustedError):
            # The repair loop ran dry: surface the budget exhaustion as
            # its own kind with the whole attempt history attached, so
            # fallback tiers and reports can show every candidate tried.
            attempts = exception.attempts
            return cls(
                kind="repair_exhausted",
                message=str(exception),
                step=1,
                exception=exception,
                sql=attempts[-1].sql if attempts else sql,
                step_input=step_input,
                repairs=list(attempts),
            )
        if isinstance(exception, AnalysisError):
            # Static analysis rejects the *synthesized* SQL, so the
            # fault is pinned on step 0 (synthesis) regardless of where
            # the pre-flight ran: the LM produced a query the catalog
            # cannot satisfy.
            return cls(
                kind="analysis",
                message=str(exception),
                step=0,
                exception=exception,
                sql=sql,
                step_input=step_input,
            )
        return cls(
            kind=type(exception).__name__,
            message=str(exception),
            step=step,
            exception=exception,
            sql=sql,
            step_input=step_input,
        )

    @property
    def step_name(self) -> str | None:
        return STEP_NAMES[self.step] if self.step is not None else None

    def to_exception(self) -> Exception:
        """The original exception, or a reconstruction if detached."""
        if self.exception is not None:
            return self.exception
        return ReproError(str(self))

    def __str__(self) -> str:
        where = f" (during {self.step_name})" if self.step is not None else ""
        return f"{self.kind}: {self.message}{where}"


@dataclass
class FallbackAttempt:
    """One failed tier of a fallback chain: who tried, how it failed."""

    method: str
    error: TAGError


@dataclass
class TAGResult:
    """Outcome of one TAG run.

    ``query`` is whatever ``syn`` produced (SQL text, an embedding
    request, ...); ``table`` is the data ``exec`` computed (a list of
    records); ``answer`` is the final natural-language answer or value
    list.  ``error`` carries the failure as a structured
    :class:`TAGError` when a step raised — the benchmark counts errored
    queries as incorrect, as the paper does for invalid generated SQL
    and context-length failures.

    When the result came through a :class:`FallbackPipeline`,
    ``method`` names the tier that produced it, ``degraded`` is True if
    any earlier tier failed first, and ``fallbacks`` records those
    failures in order — a served request's full degradation history.
    """

    request: str
    query: Any = None
    table: list[dict[str, Any]] = field(default_factory=list)
    answer: Any = None
    error: TAGError | None = None
    #: Name of the fallback tier that produced this result, if any.
    method: str | None = None
    #: True when at least one higher-preference tier failed first.
    degraded: bool = False
    #: Failed tiers that preceded this result, in attempt order.
    fallbacks: list[FallbackAttempt] = field(default_factory=list)
    #: Repair-attempt transcript (:class:`repro.core.repair
    #: .RepairAttempt`) when a self-correcting pipeline ran the repair
    #: loop for this request — present whether the loop succeeded or
    #: exhausted its budget; empty when no repair fired.
    repairs: list = field(default_factory=list)
    #: Root :class:`repro.obs.trace.Span` of this run, when the server
    #: traced it.  Excluded from equality: two identically-failing runs
    #: still compare equal whether or not one was traced.
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None


class SynthesisStep(Protocol):
    """syn(R) -> Q (paper Eq. 1)."""

    def synthesize(self, request: str) -> Any: ...  # noqa: E704


class ExecutionStep(Protocol):
    """exec(Q) -> T (paper Eq. 2)."""

    def execute(self, query: Any) -> list[dict[str, Any]]: ...  # noqa: E704


class GenerationStep(Protocol):
    """gen(R, T) -> A (paper Eq. 3)."""

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> Any: ...  # noqa: E704


class TAGPipeline:
    """One iteration of the TAG model (the paper's tractable definition).

    Exceptions from any step are captured on the result rather than
    propagated: a TAG *system* must report an answer (or lack of one)
    for every request, and the benchmark scores failures as incorrect.
    This deliberately covers *all* exceptions, not just
    :class:`~repro.errors.ReproError` — a buggy step (bad UDF, broken
    custom generator) must fail one request, not kill the serving
    worker running it.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate, so operator interrupts are never swallowed.
    """

    def __init__(
        self,
        synthesis: SynthesisStep,
        execution: ExecutionStep,
        generation: GenerationStep,
    ) -> None:
        self.synthesis = synthesis
        self.execution = execution
        self.generation = generation

    def run(self, request: str) -> TAGResult:
        result = TAGResult(request=request)
        step = 0
        try:
            with trace.span("step:synthesis"):
                result.query = self.synthesis.synthesize(request)
            step = 1
            result.table = self._execute_step(request, result)
            step = 2
            with trace.span("step:generation"):
                result.answer = self.generation.generate(
                    request, result.table
                )
        except Exception as error:  # noqa: BLE001 - see class docstring
            step_input = (request, result.query, result.table)[step]
            result.error = TAGError.from_exception(
                error,
                step=step,
                sql=(
                    result.query
                    if isinstance(result.query, str)
                    else None
                ),
                step_input=step_input,
            )
            trace.event(
                "step.error", step=STEP_NAMES[step], kind=result.error.kind
            )
        return result

    def _execute_step(
        self, request: str, result: TAGResult
    ) -> list[dict[str, Any]]:
        """Run exec for one request; the self-correcting pipeline's
        repair loop overrides exactly this seam."""
        with trace.span("step:execution"):
            return self.execution.execute(result.query)


class FallbackPipeline:
    """Graceful degradation: try tiers in preference order.

    A served request should degrade, not error: if the primary pipeline
    fails (a tripped breaker, an exhausted retry budget, broken SQL),
    the next tier answers instead — e.g. hand-written TAG falling back
    to Text2SQL-only, falling back to a refusal.  Each tier is a
    ``(name, pipeline)`` pair where the pipeline has ``run(request) ->
    TAGResult`` (a :class:`TAGPipeline`, another chain, anything
    duck-compatible).

    The returned result records its provenance: ``method`` is the tier
    that answered, ``degraded`` marks non-primary answers, and
    ``fallbacks`` lists every failed attempt's structured error.  When
    all tiers fail, the last tier's errored result is returned (the
    structured refusal) with the full failure history attached — the
    caller always gets exactly one result and never an exception.
    """

    def __init__(self, tiers: list[tuple[str, Any]]) -> None:
        if not tiers:
            raise ValueError("FallbackPipeline needs at least one tier")
        names = [name for name, _ in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.tiers = list(tiers)

    def run(self, request: str) -> TAGResult:
        attempts: list[FallbackAttempt] = []
        result = None
        for name, pipeline in self.tiers:
            with trace.span(f"tier:{name}"):
                result = pipeline.run(request)
            result.method = name
            result.degraded = bool(attempts)
            result.fallbacks = list(attempts)
            if result.ok:
                return result
            attempts.append(FallbackAttempt(method=name, error=result.error))
        # Every tier failed: the last result is the structured refusal.
        result.fallbacks = attempts[:-1]
        return result
