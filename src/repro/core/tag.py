"""TAGPipeline: the composed syn -> exec -> gen loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol


@dataclass
class TAGResult:
    """Outcome of one TAG run.

    ``query`` is whatever ``syn`` produced (SQL text, an embedding
    request, ...); ``table`` is the data ``exec`` computed (a list of
    records); ``answer`` is the final natural-language answer or value
    list.  ``error`` carries the failure when a step raised — the
    benchmark counts errored queries as incorrect, as the paper does
    for invalid generated SQL and context-length failures.
    """

    request: str
    query: Any = None
    table: list[dict[str, Any]] = field(default_factory=list)
    answer: Any = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SynthesisStep(Protocol):
    """syn(R) -> Q (paper Eq. 1)."""

    def synthesize(self, request: str) -> Any: ...  # noqa: E704


class ExecutionStep(Protocol):
    """exec(Q) -> T (paper Eq. 2)."""

    def execute(self, query: Any) -> list[dict[str, Any]]: ...  # noqa: E704


class GenerationStep(Protocol):
    """gen(R, T) -> A (paper Eq. 3)."""

    def generate(
        self, request: str, table: list[dict[str, Any]]
    ) -> Any: ...  # noqa: E704


class TAGPipeline:
    """One iteration of the TAG model (the paper's tractable definition).

    Exceptions from any step are captured on the result rather than
    propagated: a TAG *system* must report an answer (or lack of one)
    for every request, and the benchmark scores failures as incorrect.
    This deliberately covers *all* exceptions, not just
    :class:`~repro.errors.ReproError` — a buggy step (bad UDF, broken
    custom generator) must fail one request, not kill the serving
    worker running it.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate, so operator interrupts are never swallowed.
    """

    def __init__(
        self,
        synthesis: SynthesisStep,
        execution: ExecutionStep,
        generation: GenerationStep,
    ) -> None:
        self.synthesis = synthesis
        self.execution = execution
        self.generation = generation

    def run(self, request: str) -> TAGResult:
        result = TAGResult(request=request)
        try:
            result.query = self.synthesis.synthesize(request)
            result.table = self.execution.execute(result.query)
            result.answer = self.generation.generate(
                request, result.table
            )
        except Exception as error:  # noqa: BLE001 - see class docstring
            result.error = error
        return result
