"""Query-execution (exec) step implementations."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.base import Dataset
from repro.db import Database
from repro.embed import serialize_row
from repro.obs import trace
from repro.obs.explain import emit_operator_spans
from repro.vector.flat import FlatIndex


class SQLExecutor:
    """exec over the relational engine: SQL text -> list of records."""

    def __init__(
        self,
        db: Database,
        max_rows: int | None = None,
        analyze: bool = False,
        udf_batch_size: "int | str | None" = "auto",
        optimize: bool = True,
    ) -> None:
        self.db = db
        self.max_rows = max_rows
        self.analyze = analyze
        #: Batching mode for LM UDFs in exec SQL: ``"auto"`` (default)
        #: lets the cost-based optimizer choose, ``None`` pins per-row,
        #: an int pins that morsel size (see ``Database.execute``);
        #: results are identical, only the LM call pattern changes.
        self.udf_batch_size = udf_batch_size
        #: ``optimize=False`` disables the optimizer end to end (the
        #: ablation / escape hatch); ``"auto"`` then degrades to
        #: per-row execution.
        self.optimize = optimize

    def execute(self, query: str) -> list[dict[str, Any]]:
        # max_rows is enforced by the engine so truncation is metered
        # (Usage.rows_truncated / repro_exec_rows_truncated_total) and
        # noted in EXPLAIN ANALYZE output instead of silently dropping
        # rows here.
        if trace.active():
            # Under an active trace, run through the EXPLAIN ANALYZE
            # instrumentation and mirror the plan as operator spans;
            # row counts and virtual costs are pure functions of the
            # query and data, so the trace stays deterministic.
            analyzed = self.db.explain_analyze(
                query,
                optimize=self.optimize,
                analyze=self.analyze,
                udf_batch_size=self.udf_batch_size,
                max_rows=self.max_rows,
            )
            emit_operator_spans(analyzed.stats, analyzed.cost)
            result = analyzed.result
        else:
            result = self.db.execute(
                query,
                optimize=self.optimize,
                analyze=self.analyze,
                udf_batch_size=self.udf_batch_size,
                max_rows=self.max_rows,
            )
        return [
            dict(zip(result.columns, row)) for row in result.rows
        ]


class VectorSearchExecutor:
    """exec over a vector store: query embedding -> top-k row records.

    Builds a row-level index over every table of the dataset on first
    use (each row serialized "- col: val", as in the paper's RAG
    baseline) and serves similarity lookups against it.
    """

    def __init__(
        self,
        dataset: Dataset,
        embedder,
        k: int = 10,
        index: FlatIndex | None = None,
    ) -> None:
        self.dataset = dataset
        self.embedder = embedder
        self.k = k
        self._index = index
        self._records: list[dict[str, Any]] = []
        self._built = False

    def _build(self) -> None:
        texts: list[str] = []
        for table_name in self.dataset.db.table_names:
            table = self.dataset.db.table(table_name)
            names = table.schema.column_names
            for row in table.rows:
                record = dict(zip(names, row))
                self._records.append(record)
                texts.append(serialize_row(record))
        vectors = self.embedder.embed_batch(texts)
        if self._index is None:
            self._index = FlatIndex(self.embedder.dimensions)
        self._index.add(vectors)
        self._built = True

    @property
    def corpus_size(self) -> int:
        if not self._built:
            self._build()
        return len(self._records)

    def execute(self, query: np.ndarray) -> list[dict[str, Any]]:
        if not self._built:
            self._build()
        indices, _scores = self._index.search(query, self.k)
        return [self._records[int(index)] for index in indices]
