"""Deterministic LM-cost admission control for the serving layer.

Before a request is dispatched to any worker, the server can ask an
:class:`AdmissionPolicy` whether to serve it at all.  The policy runs
the static analyzer's :class:`~repro.analysis.CostEstimate` against a
configurable budget: a request whose SQL could trigger more LM-UDF
invocations than the budget allows is rejected *up front* — before a
single model call — instead of grinding the accelerator through
thousands of per-row LM calls (the failure mode TAG's LM-in-``exec``
design makes possible, paper §3).

Determinism: decisions are a pure function of the request text, the
catalog, and the budget.  They are computed sequentially on the serve
thread before workers are assigned, so the accept/reject set is
byte-identical at any worker count — property-tested in
``tests/serve/test_admission.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.analysis import QueryReport
from repro.core.tag import TAGError

#: Maps a request string to the analyzer's report for the SQL it will
#: execute, or None when the request is not SQL-bound (always admitted).
AdmissionEstimator = Callable[[str], "QueryReport | None"]


class _QueryFor(Protocol):  # pragma: no cover - typing only
    def __call__(self, request: str) -> str | None: ...


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admit: bool
    #: Human-readable reason when rejected.
    reason: str | None = None
    #: The analyzer report backing the decision (None when the
    #: estimator abstained).
    report: QueryReport | None = None

    def to_error(self) -> TAGError:
        """The structured error recorded for a rejected request.

        Analysis rejections (broken SQL) carry kind ``"analysis"`` at
        step 0 like every other analyzer failure; budget rejections are
        kind ``"admission"`` with no step — the pipeline never ran.
        """
        assert not self.admit and self.reason is not None
        if self.report is not None and not self.report.ok:
            return TAGError(
                kind="analysis", message=self.reason, step=0
            )
        return TAGError(kind="admission", message=self.reason, step=None)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budget-based admission: bound the LM cost any request may incur.

    ``estimator`` maps request text to a :class:`QueryReport` (see
    :class:`SQLAdmissionEstimator` for the standard SQL-bound one);
    requests it abstains on (returns None) are always admitted.
    """

    estimator: AdmissionEstimator
    #: Per-request ceiling on estimated LM-UDF invocations.
    max_lm_calls: int
    #: Optional per-request ceiling on total estimated LM tokens.
    max_lm_tokens: int | None = None
    #: When True (default), requests whose SQL fails static analysis
    #: are rejected outright — they could only fail later and louder.
    reject_invalid: bool = True
    #: The serving pipeline's ``max_repairs`` budget.  Each repair may
    #: re-execute the query (and so re-incur its full LM cost), so the
    #: worst case a request can cost is ``(1 + repair_budget)`` times
    #: the one-shot estimate; admission prices that worst case.  0 (no
    #: repair loop) reproduces one-shot pricing exactly.
    repair_budget: int = 0

    def decide(
        self, request: str, cached: bool = False
    ) -> AdmissionDecision:
        """Admit or reject one request against the LM-cost budget.

        ``cached=True`` marks a request the semantic serving cache can
        answer (:mod:`repro.serve.semantic`): it will dispatch no
        pipeline and so costs zero LM calls and zero tokens — a price
        within every budget, so it is admitted without consulting the
        estimator (whose one-shot cost estimate would price work that
        will never run).
        """
        if cached:
            return AdmissionDecision(admit=True)
        report = self.estimator(request)
        if report is None:
            return AdmissionDecision(admit=True)
        if not report.ok:
            if not self.reject_invalid:
                return AdmissionDecision(admit=True, report=report)
            first = report.errors[0]
            return AdmissionDecision(
                admit=False,
                reason=(
                    "static analysis rejected query "
                    f"({first.code}: {first.message})"
                ),
                report=report,
            )
        cost = report.cost
        attempts = 1 + self.repair_budget
        repair_note = (
            f" x{attempts} worst-case repair attempts"
            if self.repair_budget
            else ""
        )
        if (
            cost is not None
            and cost.lm_calls * attempts > self.max_lm_calls
        ):
            return AdmissionDecision(
                admit=False,
                reason=(
                    f"estimated {cost.lm_calls} LM calls"
                    f"{repair_note} exceeds "
                    f"admission budget {self.max_lm_calls}"
                ),
                report=report,
            )
        if (
            cost is not None
            and self.max_lm_tokens is not None
            and cost.lm_tokens * attempts > self.max_lm_tokens
        ):
            return AdmissionDecision(
                admit=False,
                reason=(
                    f"estimated {cost.lm_tokens} LM tokens"
                    f"{repair_note} exceeds "
                    f"admission budget {self.max_lm_tokens}"
                ),
                report=report,
            )
        return AdmissionDecision(admit=True, report=report)


class SQLAdmissionEstimator:
    """The standard estimator: request -> SQL -> analyzer report.

    ``query_for`` maps a request to the SQL it will execute (for the
    demo server that is the fixed synthesizer's query; a production
    deployment would use its template or a cached synthesis).  Return
    None to abstain — the request is then admitted unconditionally.
    """

    def __init__(
        self,
        db,
        query_for: _QueryFor,
    ) -> None:
        from repro.analysis import SQLAnalyzer

        self._analyzer = SQLAnalyzer(db)
        self._query_for = query_for

    def __call__(self, request: str) -> QueryReport | None:
        sql = self._query_for(request)
        if sql is None:
            return None
        return self._analyzer.analyze(sql)
