"""Semantic serving control plane: canonicalizer, result cache, registry.

TAG serving pays an LM synthesis + execution cost per request, but at
scale most questions are near-duplicates of questions already answered.
This module adds the cross-request control plane the ROADMAP's open
item 1 calls for:

- :func:`canonicalize` — a deterministic normalizer over
  :mod:`repro.text.tokenize` (case folding, stopword dropping, number
  and light entity normalization, stable ordering of order-insensitive
  conjunction pairs) producing the *canonical form* that keys
  everything downstream;

- :class:`SemanticResultCache` — a cache of full
  :class:`~repro.core.tag.TAGResult`\\ s keyed on ``(canonical form,
  catalog version, pipeline-config fingerprint)``, with an
  exact-canonical fast path, near-match lookup via
  :class:`~repro.embed.HashingEmbedder` + :class:`~repro.vector`
  cosine similarity above a threshold, and explicit invalidation on
  data/catalog change;

- :class:`QueryRegistry` — accepted ``(question, SQL, outcome)``
  entries, embedded and retrieval-ranked as few-shot examples for the
  Text2SQL prompt (:func:`repro.lm.prompts.text2sql_prompt`).

Determinism.  Cache lookups run sequentially on the serve thread,
*ahead of admission* (see :class:`~repro.serve.server.TagServer`), so
the hit/miss/coalesce partition of a request stream is a pure function
of the stream and the cache state — never of the worker count or OS
scheduling.  Stores happen after the run, in request order.  The
registry is frozen during a run (workers only read it), so injected
few-shot examples are byte-identical at any worker count.

Thread safety.  Both classes guard all state behind one lock with
:mod:`repro.obs.racecheck` instrumentation: the registry is read by
worker threads during synthesis, and both objects may be shared across
concurrently serving servers.  They are ``SHARED_ROOTS`` of the static
concurrency analyzer (``python -m repro lint --conc``) and replay clean
under the dynamic race checker at workers 1/4/8.

Metering is one-meter-three-sinks: every event increments the bound
:class:`~repro.lm.usage.Usage` (``semcache_*``), the bound
:class:`~repro.obs.metrics.MetricsRegistry`
(``repro_semcache_*_total``), and surfaces on the
:class:`~repro.serve.server.ServeReport` — and it happens at exactly
one seam per event (the lookup/invalidation paths below), so the
disabled-cache path (``capacity == 0``) meters one miss per lookup,
never a miss at ``get`` plus a drop at ``put``.
"""

from __future__ import annotations

import copy
import re
import threading
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.tag import TAGResult
from repro.embed import HashingEmbedder
from repro.lm.usage import Usage
from repro.obs import racecheck, trace
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import LRUCache
from repro.text.tokenize import STOPWORDS, tokens
from repro.vector import FlatIndex

# ---------------------------------------------------------------------------
# canonicalizer
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(r"^\d+(?:\.\d+)?$")
#: Coordinating tokens whose neighbours are order-insensitive.
_CONJUNCTIONS = frozenset({"and", "or"})


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical form of one natural-language request.

    ``text`` is the joined canonical tokens (the cache/registry key
    component), ``raw`` the input it came from.  ``degenerate`` marks a
    request with no content tokens at all (empty, punctuation-only,
    stopword-only): such a form carries no information to key on —
    distinct degenerate requests would collapse onto one key — so the
    cache and registry refuse to store or match it (the embedder-level
    twin of this contract is
    :meth:`repro.embed.HashingEmbedder.is_degenerate`).
    """

    text: str
    tokens: tuple[str, ...]
    raw: str

    @property
    def degenerate(self) -> bool:
        return not self.tokens


def _normalize_number(token: str) -> str:
    """Canonical digits: ``007`` -> ``7``, ``3.50`` -> ``3.5``."""
    if "." in token:
        whole, _, frac = token.partition(".")
        frac = frac.rstrip("0")
        whole = whole.lstrip("0") or "0"
        return f"{whole}.{frac}" if frac else whole
    return token.lstrip("0") or "0"


def _fold(token: str) -> str:
    """Light entity normalization: possessives and regular plurals.

    Deliberately tiny and idempotent (``_fold(_fold(x)) == _fold(x)``):
    just enough to make "movie reviews" and "movies review" share a
    form, never a stemmer.  The trailing ``y -> ie`` rewrite gives the
    two regular plural families one shared form — ``city``/``cities``
    meet at ``citie`` exactly where ``movie``/``movies`` meet at
    ``movie`` — without a lexicon to tell ``-ies`` plurals apart.
    """
    if token.endswith("'s"):
        token = token[:-2]
    elif token.endswith("s'"):
        token = token[:-1]
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        token = token[:-1]
    if len(token) > 3 and token.endswith("y"):
        token = token[:-1] + "ie"
    return token


def canonicalize(request: str) -> CanonicalForm:
    """Deterministic canonical form of a natural-language request.

    The pipeline, in order (each step idempotent on its own output, so
    ``canonicalize(canonicalize(x).text)`` is a fixed point — property-
    tested):

    1. word tokenization with case folding (punctuation and whitespace
       never reach the form);
    2. number normalization (leading/trailing-zero stripping);
    3. stable ordering of order-insensitive *conjunction pairs*: in
       ``x and y`` / ``x or y`` with single-token operands, the operands
       are sorted, so "comedy and romance" keys like "romance and
       comedy" — word order elsewhere is preserved (it carries meaning:
       "dogs bite men" must not collapse with "men bite dogs");
    4. stopword dropping (:data:`repro.text.tokenize.STOPWORDS`);
    5. light entity folding (possessives, regular plurals), dropping
       any token folding turns into a stopword.
    """
    raw = [
        _normalize_number(token) if _NUMBER_RE.match(token) else token
        for token in tokens(request)
    ]
    for position in range(1, len(raw) - 1):
        if raw[position] not in _CONJUNCTIONS:
            continue
        left, right = raw[position - 1], raw[position + 1]
        if left in STOPWORDS or right in STOPWORDS:
            continue
        if _fold(left) > _fold(right):
            raw[position - 1], raw[position + 1] = right, left
    folded = [
        _fold(token) for token in raw if token not in STOPWORDS
    ]
    kept = tuple(
        token for token in folded if token and token not in STOPWORDS
    )
    return CanonicalForm(text=" ".join(kept), tokens=kept, raw=request)


# ---------------------------------------------------------------------------
# semantic result cache
# ---------------------------------------------------------------------------


@dataclass
class SemanticHit:
    """One cache hit: the served result plus lookup provenance."""

    #: A private copy of the stored result, its ``request`` rewritten
    #: to the incoming request (a near hit may have been computed for a
    #: paraphrase).
    result: TAGResult
    #: ``"exact"`` (canonical fast path) or ``"near"`` (embedding
    #: match above the threshold).
    via: str
    #: Cosine similarity of the match; 1.0 on the exact path.
    similarity: float
    #: The request whose execution populated the entry.
    source_request: str


@dataclass
class _Entry:
    """One stored result and the context it is valid in."""

    key: tuple
    request: str
    result: TAGResult
    #: Row of this entry's embedding in the vector index.
    row: int


def detached_copy(result: TAGResult, request: str) -> TAGResult:
    """A detached copy safe to hand out (or keep) without aliasing.

    The trace root is dropped: it belongs to the run that recorded it,
    and two identically-answered requests compare equal without it.
    """
    trace_root = result.trace
    result.trace = None
    try:
        duplicate = copy.deepcopy(result)
    finally:
        result.trace = trace_root
    duplicate.request = request
    return duplicate


class SemanticResultCache:
    """Cross-request cache of full TAGResults keyed on canonical form.

    Keys are ``(canonical text, catalog_version, config_fingerprint)``:
    a data/catalog change or a pipeline-configuration change makes old
    entries unreachable, and :meth:`invalidate` evicts them explicitly
    (metered).  ``capacity == 0`` disables the cache; every lookup then
    meters exactly one miss — the single audited seam for the disabled
    path (see :class:`repro.serve.cache.LRUCache`'s metering note).

    Near matching embeds the canonical form with
    :class:`~repro.embed.HashingEmbedder` into a
    :class:`~repro.vector.FlatIndex` and accepts the best live entry at
    or above ``threshold`` cosine similarity whose catalog version and
    fingerprint both match.  Degenerate canonical forms are uncacheable
    in both directions: never stored, never matched.
    """

    def __init__(
        self,
        capacity: int = 256,
        threshold: float = 0.9,
        dimensions: int = 256,
        config_fingerprint: str = "",
        catalog_version_source: Callable[[], Hashable] | None = None,
        usage: Usage | None = None,
        metrics: MetricsRegistry | None = None,
        probe: int = 8,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = threshold
        self.config_fingerprint = config_fingerprint
        self._version_source = catalog_version_source
        self.usage = usage
        self.metrics = metrics
        self.probe = probe
        # Word-only hashing: the cache embeds *canonical* text, whose
        # surface is already normalized, so character-trigram features
        # would only add a shared-template background signal that
        # inflates similarity between unrelated questions.
        self._embedder = HashingEmbedder(
            dimensions=dimensions, use_trigrams=False
        )
        self._lock = threading.Lock()
        self._entries = LRUCache(capacity)
        self._index = FlatIndex(dimensions)
        #: Index row -> entry key; ``None`` marks a tombstoned row
        #: (evicted or invalidated — FlatIndex has no delete).
        self._rows: list[tuple | None] = []

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def __len__(self) -> int:
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            racecheck.read("SemanticResultCache._entries")
            return len(self._entries)

    def current_version(self) -> Hashable:
        """The catalog/data version lookups and stores default to."""
        if self._version_source is None:
            return 0
        return self._version_source()

    # -- metering (the one seam; lock held) ---------------------------

    def _meter(self, name: str, amount: int = 1) -> None:
        if self.usage is not None:
            racecheck.write("Usage.semcache_meters")
            field = f"semcache_{name}"
            setattr(self.usage, field, getattr(self.usage, field) + amount)
        if self.metrics is not None:
            self.metrics.counter(f"repro_semcache_{name}_total").inc(
                amount
            )

    # -- lookup / store -----------------------------------------------

    def _key(
        self, canonical: CanonicalForm, catalog_version: Hashable
    ) -> tuple:
        return (canonical.text, catalog_version, self.config_fingerprint)

    def key_for(
        self, request: str, catalog_version: Hashable | None = None
    ) -> tuple | None:
        """The key ``request`` would store/match under, or None.

        None means *uncacheable* — the cache is disabled or the
        canonical form is degenerate.  The serve loop keys its in-run
        duplicate coalescing (leader/follower) on this, so two requests
        coalesce exactly when a store by one would be an exact hit for
        the other.
        """
        if self.capacity == 0:
            return None
        if catalog_version is None:
            catalog_version = self.current_version()
        canonical = canonicalize(request)
        if canonical.degenerate:
            return None
        return self._key(canonical, catalog_version)

    def meter_coalesced(self) -> None:
        """Meter an in-run duplicate served from an in-flight leader.

        The serve loop resolves such a follower from its leader's
        result after the run; the duplicate dispatches no pipeline and
        costs zero LM tokens, so it counts as a ``semcache_hits`` event
        (metered here, at lookup position in the stream, never again at
        resolution time).
        """
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            self._meter("hits")

    def lookup(
        self, request: str, catalog_version: Hashable | None = None
    ) -> SemanticHit | None:
        """Serve ``request`` from the cache, or meter a miss.

        Emits a ``semcache.lookup`` trace leaf when a request trace is
        active on the calling thread (zero virtual seconds: cache
        service costs no simulated compute).
        """
        if catalog_version is None:
            catalog_version = self.current_version()
        canonical = canonicalize(request)
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            racecheck.write("SemanticResultCache._entries")
            hit = self._lookup_locked(canonical, catalog_version)
        if hit is None:
            trace.leaf("semcache.lookup", 0.0, outcome="miss")
            return None
        trace.leaf(
            "semcache.lookup",
            0.0,
            outcome="hit",
            via=hit.via,
            similarity=round(hit.similarity, 9),
        )
        return hit

    def _lookup_locked(
        self, canonical: CanonicalForm, catalog_version: Hashable
    ) -> SemanticHit | None:
        if self.capacity == 0 or canonical.degenerate:
            # The single disabled/uncacheable metering point: one miss
            # per lookup, nothing metered again at store time.
            self._meter("misses")
            return None
        key = self._key(canonical, catalog_version)
        entry = self._entries.get(key)
        if entry is not None:
            self._meter("hits")
            return SemanticHit(
                result=detached_copy(entry.result, canonical.raw),
                via="exact",
                similarity=1.0,
                source_request=entry.request,
            )
        query = self._embedder.embed(canonical.text)
        # Over-fetch by the tombstone count so dead rows cannot crowd
        # live candidates out of the probe window.
        dead = sum(1 for key in self._rows if key is None)
        rows, scores = self._index.search(query, self.probe + dead)
        for row, score in zip(rows, scores):
            if float(score) < self.threshold:
                break
            live = self._rows[int(row)]
            if live is None or live[1:] != key[1:]:
                continue
            entry = self._entries.get(live)
            if entry is None:
                continue
            self._meter("near_hits")
            return SemanticHit(
                result=detached_copy(entry.result, canonical.raw),
                via="near",
                similarity=float(score),
                source_request=entry.request,
            )
        self._meter("misses")
        return None

    def store(
        self,
        request: str,
        result: TAGResult,
        catalog_version: Hashable | None = None,
    ) -> bool:
        """Insert an accepted result; returns True when stored.

        Only successful, non-degraded results are stored (a degraded
        answer replayed from cache would skip the primary tier
        forever), and only under a non-degenerate canonical form.  A
        key already present keeps its first result — two executions of
        one canonical form are byte-identical by the serving layer's
        determinism contract, so refreshing would change nothing but
        eviction order.
        """
        if catalog_version is None:
            catalog_version = self.current_version()
        canonical = canonicalize(request)
        if (
            self.capacity == 0
            or canonical.degenerate
            or not result.ok
            or result.degraded
        ):
            return False
        key = self._key(canonical, catalog_version)
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            racecheck.write("SemanticResultCache._entries")
            if key in self._entries:
                return False
            row = len(self._rows)
            self._index.add(self._embedder.embed(canonical.text))
            self._rows.append(key)
            evicted = self._entries.put(
                key,
                _Entry(
                    key=key,
                    request=request,
                    result=detached_copy(result, request),
                    row=row,
                ),
            )
            for _, old in evicted:
                self._rows[old.row] = None
        return True

    # -- invalidation --------------------------------------------------

    def invalidate(
        self, catalog_version: Hashable | None = None
    ) -> int:
        """Evict entries after a data/catalog change; returns the count.

        With ``catalog_version`` given, evicts *exactly* the entries
        stored under that version (the ones a change to it affected) —
        entries for other versions, and entries under other pipeline
        fingerprints but the same version string composition, survive
        untouched.  With no argument, evicts everything.  Each evicted
        entry meters one invalidation.
        """
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            racecheck.write("SemanticResultCache._entries")
            doomed = [
                key
                for key in self._entries.keys()
                if catalog_version is None or key[1] == catalog_version
            ]
            for key in doomed:
                entry = self._entries.pop(key)
                self._rows[entry.row] = None
            if doomed:
                self._meter("invalidations", len(doomed))
            return len(doomed)

    def stats(self) -> dict[str, int]:
        """Deterministic size snapshot (for reports and the CLI)."""
        with racecheck.guard("SemanticResultCache._lock", self._lock):
            racecheck.read("SemanticResultCache._entries")
            return {
                "entries": len(self._entries),
                "index_rows": len(self._rows),
                "tombstones": sum(
                    1 for key in self._rows if key is None
                ),
            }


# ---------------------------------------------------------------------------
# query registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegistryEntry:
    """One accepted (question, SQL, outcome) record."""

    question: str
    sql: str
    outcome: str
    canonical: str


class QueryRegistry:
    """Accepted query log doubling as a few-shot example store.

    :meth:`record` admits ``(question, SQL, outcome)`` triples (one per
    canonical form — the first wins, keeping replays deterministic);
    :meth:`examples` retrieval-ranks them against a new question by
    cosine similarity of canonical-form embeddings, for injection into
    the Text2SQL prompt (see
    :class:`repro.core.synthesis.LMQuerySynthesizer`).

    Worker threads call :meth:`examples` concurrently during synthesis
    while the serve thread records between runs, so all state lives
    behind one lock (a ``SHARED_ROOTS`` class of the static concurrency
    analyzer).
    """

    def __init__(
        self, capacity: int = 512, dimensions: int = 256
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Word-only, as in SemanticResultCache: ranking is over
        # canonical forms, where trigram surface features are noise.
        self._embedder = HashingEmbedder(
            dimensions=dimensions, use_trigrams=False
        )
        self._lock = threading.Lock()
        #: canonical text -> RegistryEntry, insertion-ordered.
        self._entries: dict[str, RegistryEntry] = {}
        self._index = FlatIndex(dimensions)
        #: Index row -> canonical text (None = tombstoned).
        self._rows: list[str | None] = []

    def __len__(self) -> int:
        with racecheck.guard("QueryRegistry._lock", self._lock):
            racecheck.read("QueryRegistry._entries")
            return len(self._entries)

    def record(
        self, question: str, sql: str, outcome: str = "ok"
    ) -> bool:
        """Admit one accepted entry; returns True when recorded."""
        canonical = canonicalize(question)
        if canonical.degenerate or not sql:
            return False
        with racecheck.guard("QueryRegistry._lock", self._lock):
            racecheck.write("QueryRegistry._entries")
            if canonical.text in self._entries:
                return False
            self._index.add(self._embedder.embed(canonical.text))
            self._rows.append(canonical.text)
            self._entries[canonical.text] = RegistryEntry(
                question=question,
                sql=sql,
                outcome=outcome,
                canonical=canonical.text,
            )
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                for row, text in enumerate(self._rows):
                    if text == oldest:
                        self._rows[row] = None
                        break
        return True

    def examples(
        self, question: str, k: int = 3
    ) -> list[RegistryEntry]:
        """The ``k`` most similar accepted entries, best first.

        Deterministic: similarity ties break on insertion order (the
        vector index's stable sort), and a degenerate question returns
        no examples rather than matching the sentinel point.
        """
        if k < 1:
            return []
        canonical = canonicalize(question)
        if canonical.degenerate:
            return []
        with racecheck.guard("QueryRegistry._lock", self._lock):
            racecheck.read("QueryRegistry._entries")
            if not self._entries:
                return []
            query = self._embedder.embed(canonical.text)
            # Over-fetch to ride past tombstoned rows.
            rows, _ = self._index.search(query, k + len(self._rows))
            ranked: list[RegistryEntry] = []
            for row in rows:
                text = self._rows[int(row)]
                if text is None:
                    continue
                entry = self._entries.get(text)
                if entry is None:
                    continue
                ranked.append(entry)
                if len(ranked) == k:
                    break
            return ranked

    def entries(self) -> list[RegistryEntry]:
        """All live entries, insertion-ordered (a snapshot copy)."""
        with racecheck.guard("QueryRegistry._lock", self._lock):
            racecheck.read("QueryRegistry._entries")
            return list(self._entries.values())
