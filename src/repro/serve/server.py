"""TagServer: run many TAG requests concurrently over one simulated LM.

The server owns the serving substrate the ROADMAP's scaling work plugs
into: a worker pool of threads, each running a :class:`TAGPipeline`
bound to a shared :class:`~repro.serve.batching.BatchingLM`, so LM
calls from different in-flight requests coalesce into micro-batches.

Scheduling is static round-robin (worker ``i`` serves requests
``i, i + W, i + 2W, ...``) rather than a shared work queue: which
requests are in flight together is then a pure function of the request
list, which keeps micro-batch composition — and therefore every
simulated-seconds number — deterministic (see
:mod:`repro.serve.batching`).  The report's ``simulated_seconds`` is
the virtual-clock makespan: micro-batches are serialized through one
simulated accelerator, so ``requests / simulated_seconds`` is the
deployment's reproducible throughput.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.tag import TAGPipeline, TAGResult
from repro.lm.model import SimulatedLM
from repro.lm.usage import Usage
from repro.serve.batching import BatchingLM, Session
from repro.serve.clock import VirtualClock

#: Builds one pipeline per worker, bound to the server's batching LM.
PipelineFactory = Callable[[BatchingLM], TAGPipeline]


@dataclass
class ServeResult:
    """One served request: the TAG outcome plus serving diagnostics."""

    index: int
    request: str
    result: TAGResult
    #: Simulated LM seconds attributed to this request's responses.
    et_seconds: float
    worker: int
    lm_calls: int
    cache_hits: int

    @property
    def ok(self) -> bool:
        return self.result.ok


@dataclass
class ServeReport:
    """All results of one :meth:`TagServer.serve` run."""

    results: list[ServeResult]
    #: Virtual-clock makespan of the run (simulated accelerator time).
    simulated_seconds: float
    #: LM usage accumulated by the run (snapshot delta).
    usage: Usage
    workers: int
    window: int
    errors: list[ServeResult] = field(init=False)

    def __post_init__(self) -> None:
        self.errors = [r for r in self.results if not r.ok]

    @property
    def throughput_rps(self) -> float:
        """Simulated requests per second for the whole run."""
        if self.simulated_seconds == 0.0:
            return float("inf") if self.results else 0.0
        return len(self.results) / self.simulated_seconds

    def answers(self) -> list[object]:
        return [r.result.answer for r in self.results]


class TagServer:
    """Serve TAG requests on a worker pool with micro-batched inference."""

    def __init__(
        self,
        pipeline_factory: PipelineFactory,
        lm: SimulatedLM | None = None,
        workers: int = 4,
        window: int = 8,
        cache_size: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._factory = pipeline_factory
        self._inner = lm or SimulatedLM()
        self.workers = workers
        self.window = window
        self.cache_size = cache_size

    def serve(self, requests: list[str]) -> ServeReport:
        """Run every request; never raises for a single request's failure.

        :class:`TAGPipeline` already converts step exceptions into
        ``TAGResult.error``; anything escaping anyway (a crashing
        pipeline *factory*, a bug in a custom step's attribute access
        outside ``run``) is caught per worker so one bad pipeline
        cannot take down the run.
        """
        clock = VirtualClock()
        batching = BatchingLM(
            self._inner,
            window=self.window,
            cache_size=self.cache_size,
            clock=clock,
        )
        before = self._inner.usage.snapshot()
        assignments = [
            (worker, list(range(worker, len(requests), self.workers)))
            for worker in range(min(self.workers, len(requests)))
        ]
        # Register every worker before any thread runs: the flush
        # barrier must know the full session population up front.
        sessions = {
            worker: batching.open_session(order=worker)
            for worker, _ in assignments
        }
        results: list[ServeResult | None] = [None] * len(requests)
        threads = [
            threading.Thread(
                target=self._run_worker,
                args=(
                    batching,
                    sessions[worker],
                    worker,
                    indices,
                    requests,
                    results,
                ),
                name=f"tag-worker-{worker}",
            )
            for worker, indices in assignments
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return ServeReport(
            results=[result for result in results if result is not None],
            simulated_seconds=clock.now(),
            usage=self._inner.usage.since(before),
            workers=self.workers,
            window=self.window,
        )

    def _run_worker(
        self,
        batching: BatchingLM,
        session: Session,
        worker: int,
        indices: list[int],
        requests: list[str],
        results: list[ServeResult | None],
    ) -> None:
        with session:
            try:
                pipeline = self._factory(batching)
            except Exception as exc:  # noqa: BLE001 - fail requests, not the run
                for index in indices:
                    results[index] = ServeResult(
                        index=index,
                        request=requests[index],
                        result=TAGResult(
                            request=requests[index], error=exc
                        ),
                        et_seconds=0.0,
                        worker=worker,
                        lm_calls=0,
                        cache_hits=0,
                    )
                return
            for index in indices:
                seconds = session.consumed_seconds
                calls = session.lm_calls
                hits = session.cache_hits
                try:
                    outcome = pipeline.run(requests[index])
                except Exception as exc:  # noqa: BLE001 - worker must survive
                    outcome = TAGResult(
                        request=requests[index], error=exc
                    )
                results[index] = ServeResult(
                    index=index,
                    request=requests[index],
                    result=outcome,
                    et_seconds=session.consumed_seconds - seconds,
                    worker=worker,
                    lm_calls=session.lm_calls - calls,
                    cache_hits=session.cache_hits - hits,
                )
