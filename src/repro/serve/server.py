"""TagServer: run many TAG requests concurrently over one simulated LM.

The server owns the serving substrate the ROADMAP's scaling work plugs
into: a worker pool of threads, each running a :class:`TAGPipeline`
bound to a shared :class:`~repro.serve.batching.BatchingLM`, so LM
calls from different in-flight requests coalesce into micro-batches.

Scheduling is static round-robin (worker ``i`` serves requests
``i, i + W, i + 2W, ...``) rather than a shared work queue: which
requests are in flight together is then a pure function of the request
list, which keeps micro-batch composition — and therefore every
simulated-seconds number — deterministic (see
:mod:`repro.serve.batching`).  The report's ``simulated_seconds`` is
the virtual-clock makespan: micro-batches are serialized through one
simulated accelerator, so ``requests / simulated_seconds`` is the
deployment's reproducible throughput.

Serving under failure.  A :class:`~repro.lm.faults.FaultPlan` slots a
:class:`~repro.lm.faults.FaultyLM` between the model and the batching
facade, and a :class:`~repro.serve.resilience.ResiliencePolicy` wraps
each worker's view of the LM in a
:class:`~repro.serve.resilience.ResilientLM` (retries, deadlines, a
per-worker circuit breaker).  Both are deterministic, so a faulty run
is as reproducible as a healthy one; with no plan and no policy the
stack is exactly the PR-1 server, bit for bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.tag import TAGError, TAGPipeline, TAGResult
from repro.lm.faults import FaultPlan, FaultyLM
from repro.lm.model import SimulatedLM
from repro.lm.usage import Usage
from repro.obs import racecheck, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionPolicy
from repro.serve.batching import BatchingLM, Session
from repro.serve.clock import VirtualClock
from repro.serve.resilience import ResiliencePolicy, ResilientLM
from repro.serve.semantic import (
    QueryRegistry,
    SemanticHit,
    SemanticResultCache,
    detached_copy,
)

#: Builds one pipeline per worker, bound to the server's batching LM
#: (or its resilience wrapper).  Anything with ``run(request) ->
#: TAGResult`` qualifies — a TAGPipeline or a FallbackPipeline chain.
PipelineFactory = Callable[[BatchingLM], TAGPipeline]


@dataclass
class ServeResult:
    """One served request: the TAG outcome plus serving diagnostics."""

    index: int
    request: str
    result: TAGResult
    #: Simulated LM seconds attributed to this request's responses,
    #: fault burn and backoff sleeps included.
    et_seconds: float
    worker: int
    lm_calls: int
    cache_hits: int
    #: How the semantic serving cache answered this request, when it
    #: did: ``"exact"``/``"near"`` (cross-run cache hit, ``worker ==
    #: -2``) or ``"coalesced"`` (in-run duplicate resolved from its
    #: leader's result).  None for every freshly executed request.
    semantic: str | None = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def degraded(self) -> bool:
        return self.result.degraded


@dataclass
class ServeReport:
    """All results of one :meth:`TagServer.serve` run."""

    results: list[ServeResult]
    #: Virtual-clock makespan of the run (simulated accelerator time,
    #: plus any simulated backoff waits the resilience layer added).
    simulated_seconds: float
    #: LM usage accumulated by the run (snapshot delta).
    usage: Usage
    workers: int
    window: int
    #: Requests admission control turned away before dispatch (they
    #: still appear in ``results``, with ``worker == -1``).
    admission_rejected: int = 0
    #: Entries the semantic cache held when the run began (0 without a
    #: cache) — the state hits of this run were served from.
    semantic_entries: int = 0
    #: Scraped :class:`~repro.obs.metrics.MetricsRegistry` snapshot for
    #: the run (empty when the server was built without a registry).
    metrics: dict = field(default_factory=dict)
    errors: list[ServeResult] = field(init=False)

    def __post_init__(self) -> None:
        self.errors = [r for r in self.results if not r.ok]

    @property
    def throughput_rps(self) -> float:
        """Simulated requests per second for the whole run."""
        if self.simulated_seconds == 0.0:
            return float("inf") if self.results else 0.0
        return len(self.results) / self.simulated_seconds

    # ------------------------------------------------------------------
    # availability accounting (serving under failure)
    # ------------------------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of requests that got an answer (degraded counts)."""
        if not self.results:
            return 1.0
        return sum(r.ok for r in self.results) / len(self.results)

    @property
    def degraded_count(self) -> int:
        """Answered requests that fell back past the primary tier."""
        return sum(r.ok and r.degraded for r in self.results)

    @property
    def goodput_rps(self) -> float:
        """Simulated *answered* requests per second."""
        if self.simulated_seconds == 0.0:
            return float("inf") if self.errors != self.results else 0.0
        return (
            sum(r.ok for r in self.results) / self.simulated_seconds
        )

    def latency_percentile(self, quantile: float) -> float:
        """Per-request simulated-latency percentile (nearest-rank).

        Deterministic — no interpolation, so artifact bytes never
        depend on float formatting of midpoints.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if not self.results:
            return 0.0
        ordered = sorted(r.et_seconds for r in self.results)
        # Integer ceil on a per-myriad scale dodges float artefacts
        # like 0.95 * 20 == 19.000000000000004.
        permyriad = round(quantile * 10_000)
        rank = -(-permyriad * len(ordered) // 10_000) - 1
        return ordered[max(0, min(rank, len(ordered) - 1))]

    @property
    def semantic_hits(self) -> int:
        """Requests served without dispatch by the semantic cache
        (exact + near + in-run coalesced)."""
        return sum(r.semantic is not None for r in self.results)

    def answers(self) -> list[object]:
        return [r.result.answer for r in self.results]


class TagServer:
    """Serve TAG requests on a worker pool with micro-batched inference."""

    def __init__(
        self,
        pipeline_factory: PipelineFactory,
        lm: SimulatedLM | None = None,
        workers: int = 4,
        window: int = 8,
        cache_size: int = 0,
        fault_plan: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
        admission: AdmissionPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        semantic_cache: SemanticResultCache | None = None,
        registry: QueryRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._factory = pipeline_factory
        self._inner = lm or SimulatedLM()
        self.workers = workers
        self.window = window
        self.cache_size = cache_size
        self.fault_plan = fault_plan
        self.resilience = resilience
        self.admission = admission
        self.tracer = tracer
        self.metrics = metrics
        self.semantic_cache = semantic_cache
        self.registry = registry
        if semantic_cache is not None:
            # Bind the cache's meters to this server's sinks unless the
            # caller wired its own: semcache_* counters then land in
            # the same Usage delta and metrics scrape as everything
            # else the run metered (one meter, three sinks).
            if semantic_cache.usage is None:
                semantic_cache.usage = self._inner.usage
            if semantic_cache.metrics is None:
                semantic_cache.metrics = metrics

    def serve(self, requests: list[str]) -> ServeReport:
        """Run every request; never raises for a single request's failure.

        :class:`TAGPipeline` already converts step exceptions into
        ``TAGResult.error``; anything escaping anyway (a crashing
        pipeline *factory*, a bug in a custom step's attribute access
        outside ``run``) is caught per worker so one bad pipeline
        cannot take down the run.  A worker dying on anything harsher —
        a ``BaseException`` that is not an ``Exception``, or a bug in
        the serving bookkeeping itself — is *not* swallowed: the
        failure is captured, every worker is joined, and the exception
        re-raises here rather than silently short-counting results.
        """
        clock = VirtualClock()
        model = self._inner
        if self.fault_plan is not None:
            model = FaultyLM(model, self.fault_plan)
        batching = BatchingLM(
            model,
            window=self.window,
            cache_size=self.cache_size,
            clock=clock,
            metrics=self.metrics,
        )
        meter_lock = threading.Lock()
        before = self._inner.usage.snapshot()
        results: list[ServeResult | None] = [None] * len(requests)
        # Semantic lookups and admission both run sequentially on this
        # thread, before workers exist: the hit/miss/coalesce/reject
        # partition of the stream is a pure function of the request
        # list, the cache state, and the budget — never of the worker
        # count.  Lookups come first: a hit dispatches no pipeline, so
        # admission prices it at zero (``decide(..., cached=True)``)
        # instead of the estimator's one-shot cost.
        semantic = self.semantic_cache
        catalog_version = (
            semantic.current_version() if semantic is not None else None
        )
        semantic_entries = len(semantic) if semantic is not None else 0
        #: canonical key -> index of the in-flight leader for that key.
        pending: dict[tuple, int] = {}
        #: follower index -> leader index, resolved after the join.
        followers: dict[int, int] = {}
        admitted: list[int] = []
        rejected = 0
        for index, request in enumerate(requests):
            if semantic is not None:
                key = semantic.key_for(request, catalog_version)
                if key is not None and key in pending:
                    # In-run duplicate: its twin is already dispatched;
                    # resolve from the leader's result after the join.
                    semantic.meter_coalesced()
                    followers[index] = pending[key]
                    continue
                hit = semantic.lookup(request, catalog_version)
                if hit is not None:
                    if self.admission is not None:
                        self.admission.decide(request, cached=True)
                    results[index] = self._hit_result(index, request, hit)
                    continue
                if key is not None:
                    pending[key] = index
            if self.admission is not None:
                decision = self.admission.decide(request)
                if not decision.admit:
                    rejected += 1
                    results[index] = ServeResult(
                        index=index,
                        request=request,
                        result=TAGResult(
                            request=request, error=decision.to_error()
                        ),
                        et_seconds=0.0,
                        worker=-1,
                        lm_calls=0,
                        cache_hits=0,
                    )
                    continue
            admitted.append(index)
        # Round-robin over the *admitted* stream: worker i serves the
        # i-th, (i+W)-th, ... admitted requests.
        assignments = [
            (worker, admitted[worker :: self.workers])
            for worker in range(min(self.workers, len(admitted)))
        ]
        # Register every worker before any thread runs: the flush
        # barrier must know the full session population up front.
        sessions = {
            worker: batching.open_session(order=worker)
            for worker, _ in assignments
        }
        fatal: list[BaseException] = []
        threads = [
            threading.Thread(
                target=self._run_worker,
                args=(
                    batching,
                    sessions[worker],
                    worker,
                    indices,
                    requests,
                    results,
                    clock,
                    meter_lock,
                    fatal,
                ),
                name=f"tag-worker-{worker}",
            )
            for worker, indices in assignments
        ]
        for thread in threads:
            # fork/join edges tell the dynamic race checker that worker
            # state is ordered after this thread's setup and before its
            # teardown reads below.  Thread *names* are the checker's
            # identities — deterministic, unlike ids (DET106).
            racecheck.fork(thread.name)
            thread.start()
        for thread in threads:
            thread.join()
            racecheck.join(thread.name)
        if racecheck.installed():
            racecheck.read("serve.fatal")
            for index in range(len(results)):
                racecheck.read(f"serve.results.{index}")
        if fatal:
            raise fatal[0]
        # Followers resolve from their leader's result now that the
        # join ordered every worker write before this thread (the same
        # single-owner handoff the racecheck reads above verify).
        for index in sorted(followers):
            leader = results[followers[index]]
            racecheck.write(f"serve.results.{index}")
            results[index] = ServeResult(
                index=index,
                request=requests[index],
                result=detached_copy(leader.result, requests[index]),
                et_seconds=0.0,
                worker=-2,
                lm_calls=0,
                cache_hits=0,
                semantic="coalesced",
            )
        # Stores and registry records run sequentially in index order:
        # cache and registry contents after a run are a pure function
        # of the request stream, whatever the worker count.
        for index in admitted:
            served = results[index]
            if served is None:
                continue
            if semantic is not None:
                semantic.store(
                    requests[index], served.result, catalog_version
                )
            if self.registry is not None and served.ok:
                outcome = served.result
                if isinstance(outcome.query, str) and not outcome.degraded:
                    self.registry.record(
                        requests[index], outcome.query, outcome="ok"
                    )
        final = [result for result in results if result is not None]
        if self.metrics is not None:
            registry = self.metrics
            # Touch every instrument up front so a clean run scrapes
            # explicit zeros rather than omitting the names.
            served = registry.counter("serve.requests")
            errored = registry.counter("serve.errors")
            latencies = registry.histogram("serve.request.vseconds")
            for result in final:
                served.inc()
                if not result.ok:
                    errored.inc()
                latencies.observe(result.et_seconds)
            registry.gauge("serve.makespan.vseconds").set(clock.now())
        return ServeReport(
            results=final,
            simulated_seconds=clock.now(),
            usage=self._inner.usage.since(before),
            workers=self.workers,
            window=self.window,
            admission_rejected=rejected,
            semantic_entries=semantic_entries,
            metrics=(
                self.metrics.snapshot() if self.metrics is not None else {}
            ),
        )

    def _hit_result(
        self, index: int, request: str, hit: SemanticHit
    ) -> ServeResult:
        """The served result for one semantic-cache hit.

        Built on the serve thread before workers exist.  The hit costs
        zero simulated seconds and zero LM calls; its trace (when
        tracing) is a root span holding one ``semcache.lookup`` leaf on
        the request's own virtual timeline — worker-count invariant
        like every other trace.
        """
        outcome = hit.result
        if self.tracer is not None:
            with self.tracer.request(request, index) as root:
                trace.leaf(
                    "semcache.lookup",
                    0.0,
                    outcome="hit",
                    via=hit.via,
                    similarity=round(hit.similarity, 9),
                    source=hit.source_request,
                )
            outcome.trace = root
        return ServeResult(
            index=index,
            request=request,
            result=outcome,
            et_seconds=0.0,
            worker=-2,
            lm_calls=0,
            cache_hits=0,
            semantic=hit.via,
        )

    def _worker_lm(
        self,
        batching: BatchingLM,
        session: Session,
        clock: VirtualClock,
        meter_lock: threading.Lock,
    ):
        """The LM a worker's pipeline talks to.

        The resilience wrapper is per worker: its circuit breaker runs
        on a private timeline fed by this worker's own consumption, so
        breaker transitions are a pure function of the worker's call
        sequence — never of how the OS interleaved the other workers.
        """
        if self.resilience is None:
            return batching
        return ResilientLM(
            batching,
            self.resilience,
            clock=clock,
            session=session,
            meter_lock=meter_lock,
        )

    def _run_worker(
        self,
        batching: BatchingLM,
        session: Session,
        worker: int,
        indices: list[int],
        requests: list[str],
        results: list[ServeResult | None],
        clock: VirtualClock,
        meter_lock: threading.Lock,
        fatal: list[BaseException],
    ) -> None:
        try:
            with session:
                try:
                    pipeline = self._factory(
                        self._worker_lm(batching, session, clock, meter_lock)
                    )
                except Exception as exc:  # noqa: BLE001 - fail requests, not the run
                    for index in indices:
                        racecheck.write(f"serve.results.{index}")
                        results[index] = ServeResult(
                            index=index,
                            request=requests[index],
                            result=TAGResult(
                                request=requests[index],
                                error=TAGError.from_exception(exc),
                            ),
                            et_seconds=0.0,
                            worker=worker,
                            lm_calls=0,
                            cache_hits=0,
                        )
                    return
                tracer = self.tracer
                for index in indices:
                    # Unlocked read of this session's meters: safe
                    # because writes from the flushing thread happen
                    # under the cv this worker re-acquired on wake-up
                    # (a release->acquire edge the checker verifies).
                    racecheck.read(f"Session.{session.order}.meters")
                    seconds = session.consumed_seconds
                    calls = session.lm_calls
                    hits = session.cache_hits
                    request_scope = (
                        tracer.request(requests[index], index)
                        if tracer is not None
                        else None
                    )
                    try:
                        if request_scope is not None:
                            with request_scope as root:
                                if self.semantic_cache is not None:
                                    # Mirror of the hit leaf the serve
                                    # thread emits: every traced
                                    # request shows its lookup.
                                    trace.leaf(
                                        "semcache.lookup",
                                        0.0,
                                        outcome="miss",
                                    )
                                outcome = pipeline.run(requests[index])
                                outcome.trace = root
                        else:
                            outcome = pipeline.run(requests[index])
                    except Exception as exc:  # noqa: BLE001 - worker must survive
                        outcome = TAGResult(
                            request=requests[index],
                            error=TAGError.from_exception(exc),
                        )
                    racecheck.read(f"Session.{session.order}.meters")
                    racecheck.write(f"serve.results.{index}")
                    results[index] = ServeResult(
                        index=index,
                        request=requests[index],
                        result=outcome,
                        et_seconds=session.consumed_seconds - seconds,
                        worker=worker,
                        lm_calls=session.lm_calls - calls,
                        cache_hits=session.cache_hits - hits,
                    )
        except BaseException as exc:  # noqa: BLE001 - surfaced by serve()
            # The session context manager has already closed the
            # session (so no other worker deadlocks on the flush
            # barrier); record the failure for serve() to re-raise.
            racecheck.write("serve.fatal")
            fatal.append(exc)
