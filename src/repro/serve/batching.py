"""BatchingLM: a micro-batching, caching facade over :class:`SimulatedLM`.

The paper credits hand-written TAG's low execution time to vLLM-style
*batched inference* (§4.3).  Inside one pipeline the semantic operators
already batch their own prompts; a *server* must additionally coalesce
requests arriving from many concurrent pipelines.  ``BatchingLM``
implements the same ``complete`` / ``complete_batch`` interface as
:class:`~repro.lm.model.SimulatedLM`, so any pipeline can be pointed at
it unchanged, and turns concurrent ``complete`` calls into micro-batches
flushed through the inner model's ``complete_batch``.

Determinism.  Real micro-batching schedulers flush on a wall-clock
window; that would make batch composition (and therefore simulated
latency) depend on thread timing.  Here the "window" is a *size* cap
and the flush trigger is a barrier on the deterministic virtual clock's
world: a flush happens exactly when every open session is either
blocked on the LM or finished.  Pending requests are then ordered by
``(session order, submission sequence)`` — both assigned
deterministically — and chunked into micro-batches of at most
``window`` requests.  Batch composition depends only on which LM calls
the running pipelines make, never on thread scheduling, so answers,
token counts, *and* simulated seconds are exactly reproducible.

Sessions.  A :class:`Session` represents one synchronous requester (a
server worker).  The barrier waits for every open session, so a session
MUST be closed when its requester stops issuing calls (use it as a
context manager) or every other requester deadlocks.  Calls made
without an explicit session get a transient one per call, which makes a
bare ``BatchingLM(inner)`` a drop-in single-threaded replacement for
the inner model (every call becomes a batch of one).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.lm.model import LMConfig, LMResponse, SimulatedLM
from repro.lm.tokenizer import count_tokens
from repro.lm.usage import Usage
from repro.obs import racecheck, trace
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import LRUCache
from repro.serve.clock import VirtualClock

_MISS = object()


@dataclass
class _Pending:
    """One submitted prompt waiting for a flush.

    When the cache is enabled, identical in-flight prompts coalesce:
    ``followers`` are requests that share this item's inner-model call
    and are resolved with it (metered as cache hits — one call, one
    token bill).  ``via`` records how the item was satisfied for trace
    attribution: ``"call"`` (cache off), ``"miss"``, ``"hit"``, or
    ``"coalesced"``.
    """

    session: "Session"
    seq: int
    prompt: str
    max_tokens: int | None
    done: bool = False
    response: LMResponse | None = None
    error: Exception | None = None
    followers: list["_Pending"] = field(default_factory=list)
    via: str = "call"


class Session:
    """One registered requester; tracks per-requester consumption.

    ``order`` is the deterministic sort key used when chunking pending
    requests into micro-batches; servers pass the worker index.
    """

    def __init__(self, lm: "BatchingLM", order: int) -> None:
        self._lm = lm
        self.order = order
        self.open = True
        #: True while blocked inside a ``complete``/``complete_batch``.
        self.waiting = False
        #: True while the requester is blocked on *other* sessions'
        #: work (a shard join, a cross-shard dedup wait) rather than on
        #: its own LM call.  A parked session does not hold up the
        #: flush barrier — it will issue no calls until unparked.
        self.parked = False
        #: Simulated seconds attributed to this session's responses.
        self.consumed_seconds = 0.0
        self.lm_calls = 0
        self.cache_hits = 0
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def __enter__(self) -> "Session":
        self._lm.bind(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._lm.close_session(self)


class _Parked:
    """Context manager marking a session parked for its duration."""

    __slots__ = ("_lm", "_session")

    def __init__(self, lm: "BatchingLM", session: Session | None) -> None:
        self._lm = lm
        self._session = session

    def __enter__(self) -> None:
        if self._session is not None:
            self._lm._set_parked(self._session, True)
        return None

    def __exit__(self, *exc_info: object) -> bool:
        if self._session is not None:
            self._lm._set_parked(self._session, False)
        return False


class BatchingLM:
    """Micro-batching + LRU-caching facade with the SimulatedLM interface."""

    def __init__(
        self,
        inner: SimulatedLM,
        window: int = 8,
        cache_size: int = 0,
        clock: VirtualClock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._inner = inner
        self.window = window
        self.clock = clock or VirtualClock()
        self._cache = LRUCache(cache_size)
        self._metrics = metrics
        self._cv = threading.Condition()
        self._sessions: list[Session] = []
        self._pending: list[_Pending] = []
        #: key -> leader item, for in-flight coalescing (cache on only).
        self._inflight: dict[tuple[str, int | None], _Pending] = {}
        #: key -> outstanding errored deliveries; a re-submission of an
        #: errored key is a *retry* of already-metered work, so its
        #: cache hit/miss is not counted again (see _submit_in_session).
        self._errored: dict[tuple[str, int | None], int] = {}
        self._local = threading.local()
        self._next_order = 0

    # ------------------------------------------------------------------
    # SimulatedLM-compatible surface
    # ------------------------------------------------------------------

    @property
    def usage(self) -> Usage:
        """Shared with the inner model: one meter for the deployment."""
        return self._inner.usage

    @property
    def config(self) -> LMConfig:
        return self._inner.config

    def reset_usage(self) -> None:
        self._inner.reset_usage()

    def complete(
        self, prompt: str, max_tokens: int | None = None
    ) -> LMResponse:
        """One request; may be coalesced with other sessions' requests."""
        [item] = self._submit([(prompt, max_tokens)])
        if item.error is not None:
            raise item.error
        assert item.response is not None
        return item.response

    def complete_batch(
        self, prompts: list[str], max_tokens: int | None = None
    ) -> list[LMResponse]:
        """A caller-side batch; the scheduler may split or merge it."""
        if not prompts:
            return []
        items = self._submit([(prompt, max_tokens) for prompt in prompts])
        for item in items:
            if item.error is not None:
                raise item.error
        return [item.response for item in items]  # type: ignore[misc]

    def try_complete_batch(
        self, prompts: list[str], max_tokens: int | None = None
    ) -> list[LMResponse | Exception]:
        """Like :meth:`complete_batch`, but per-prompt outcomes.

        Returns one entry per prompt: the :class:`LMResponse` on
        success, the exception on failure — nothing is raised.  Lets a
        resilience layer retry *only* the failed prompts instead of
        re-running (and re-billing) the whole batch.
        """
        if not prompts:
            return []
        items = self._submit([(prompt, max_tokens) for prompt in prompts])
        return [
            item.error if item.error is not None else item.response
            for item in items
        ]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def open_session(self, order: int | None = None) -> Session:
        """Register a requester; it counts toward the flush barrier.

        Safe to call before the requester's thread starts: registering
        all workers up front prevents early workers from flushing
        batches that late-starting workers should have joined.
        """
        with racecheck.guard("BatchingLM._cv", self._cv):
            racecheck.write("BatchingLM._sessions")
            if order is None:
                order = self._next_order
            self._next_order = max(self._next_order, order + 1)
            session = Session(self, order)
            self._sessions.append(session)
            return session

    def bind(self, session: Session) -> None:
        """Adopt ``session`` for calls made from the current thread."""
        self._local.session = session

    def current_session(self) -> Session | None:
        """The session bound to the current thread, if any."""
        return getattr(self._local, "session", None)

    def parked(self):
        """Park the current thread's session while it waits on others.

        The sharded executor wraps its shard joins (and cross-shard
        dedup waits) in this: the waiting session will issue no LM
        calls until the wait returns, so counting it toward the flush
        barrier would deadlock the shards it is waiting *for*.  A
        no-op context manager when the thread has no bound session.
        """
        return _Parked(self, self.current_session())

    def _set_parked(self, session: Session, parked: bool) -> None:
        with racecheck.guard("BatchingLM._cv", self._cv):
            racecheck.write("BatchingLM._sessions")
            session.parked = parked
            if parked:
                # Parking may complete the barrier: every other open
                # session could already be waiting on the LM.
                self._flush_if_barrier()

    def close_session(self, session: Session) -> None:
        """Deregister; may complete the barrier and trigger a flush."""
        if getattr(self._local, "session", None) is session:
            self._local.session = None
        with racecheck.guard("BatchingLM._cv", self._cv):
            if not session.open:
                return
            racecheck.write("BatchingLM._sessions")
            session.open = False
            self._sessions.remove(session)
            self._flush_if_barrier()

    # ------------------------------------------------------------------
    # scheduler
    # ------------------------------------------------------------------

    def _submit(
        self, requests: list[tuple[str, int | None]]
    ) -> list[_Pending]:
        session = getattr(self._local, "session", None)
        if session is not None:
            return self._submit_in_session(session, requests)
        transient = self.open_session()
        try:
            self.bind(transient)
            return self._submit_in_session(transient, requests)
        finally:
            self.close_session(transient)

    def _submit_in_session(
        self, session: Session, requests: list[tuple[str, int | None]]
    ) -> list[_Pending]:
        with racecheck.guard("BatchingLM._cv", self._cv):
            # Everything the scheduler mutates below — the pending
            # queue, in-flight coalescing map, errored-retry ledger,
            # prompt cache, usage meters, and this session's counters —
            # is guarded by the one condition variable.
            racecheck.write("BatchingLM._pending")
            racecheck.write("BatchingLM._inflight")
            racecheck.write("BatchingLM._errored")
            racecheck.write("BatchingLM._cache")
            racecheck.write("Usage.cache_meters")
            racecheck.write(f"Session.{session.order}.meters")
            items: list[_Pending] = []
            for prompt, max_tokens in requests:
                key = (prompt, max_tokens)
                # A key whose previous delivery errored is being
                # retried (ResilientLM re-submission, a fallback tier
                # replaying the same prompt): the original submission
                # already metered its hit/miss, so metering again would
                # double-count cache_misses in the ServeReport.
                retry = False
                outstanding = self._errored.get(key, 0)
                if outstanding:
                    retry = True
                    if outstanding > 1:
                        self._errored[key] = outstanding - 1
                    else:
                        del self._errored[key]
                if self._cache.capacity:
                    # One promoting get() is the lookup AND the
                    # recency touch; peeking first (``key in cache``)
                    # would leave eviction order unchanged — see
                    # LRUCache's peek/promote contract.
                    cached = self._cache.get(key, _MISS)
                    if cached is not _MISS:
                        if not retry:
                            self.usage.cache_hits += 1
                            session.cache_hits += 1
                        items.append(
                            _Pending(
                                session,
                                session.next_seq(),
                                prompt,
                                max_tokens,
                                done=True,
                                # Served from memory: no simulated compute.
                                response=replace(cached, latency_s=0.0),
                                via="hit",
                            )
                        )
                        continue
                    leader = self._inflight.get(key)
                    if leader is not None:
                        # Same prompt already awaiting a flush: ride
                        # the leader's call instead of paying twice.
                        if not retry:
                            self.usage.cache_hits += 1
                            session.cache_hits += 1
                        follower = _Pending(
                            session,
                            session.next_seq(),
                            prompt,
                            max_tokens,
                            via="coalesced",
                        )
                        leader.followers.append(follower)
                        items.append(follower)
                        continue
                    if not retry:
                        self.usage.cache_misses += 1
                item = _Pending(
                    session,
                    session.next_seq(),
                    prompt,
                    max_tokens,
                    via="miss" if self._cache.capacity else "call",
                )
                if self._cache.capacity:
                    self._inflight[key] = item
                self._pending.append(item)
                items.append(item)
            if any(not item.done for item in items):
                session.waiting = True
                self._flush_if_barrier()
                while any(not item.done for item in items):
                    # Condition.wait releases and re-acquires the cv
                    # inside the library, invisible to the guard; these
                    # hooks restore the release->acquire ordering edge
                    # for the dynamic race checker.
                    racecheck.releasing("BatchingLM._cv")
                    self._cv.wait()
                    racecheck.reacquired("BatchingLM._cv")
            for item in items:
                if item.response is not None:
                    session.consumed_seconds += item.response.latency_s
                elif item.error is not None:
                    # Failed calls still consumed simulated seconds
                    # (fault errors carry them); attribute the burn to
                    # the requester so per-request latency under faults
                    # reflects what the request actually cost.
                    session.consumed_seconds += getattr(
                        item.error, "latency_s", 0.0
                    )
            if trace.active():
                for item in items:
                    self._trace_item(item)
            return items

    def _trace_item(self, item: _Pending) -> None:
        """Emit this delivery's ``lm.call`` span on the requester's trace.

        Span durations are *scheduling-invariant* virtual costs — the
        unbatched cost of the tokens for a model call, zero for cache
        service, the fault plan's burn for an error — never the
        batch-shared ``latency_s``, which depends on what else was in
        flight (and therefore on the worker count).  The shared costs
        stay in Usage/metrics; the trace stays byte-identical across
        worker counts.
        """
        if item.error is not None:
            trace.leaf(
                "lm.call",
                getattr(item.error, "latency_s", 0.0),
                via=item.via,
                outcome="error",
                kind=type(item.error).__name__,
            )
            return
        response = item.response
        assert response is not None
        if item.via in ("hit", "coalesced"):
            cost = 0.0
        else:
            cost = self.config.latency.call_seconds(
                response.prompt_tokens, response.output_tokens
            )
        trace.leaf(
            "lm.call",
            cost,
            via=item.via,
            prompt_tokens=response.prompt_tokens,
            output_tokens=response.output_tokens,
        )

    def _flush_if_barrier(self) -> None:
        """Flush iff no open session is still running (lock held).

        Parked sessions (see :meth:`parked`) are blocked on other
        sessions' progress, not on their own LM call, so they do not
        count as "still running".
        """
        if not self._pending:
            return
        if any(
            s.open and not s.waiting and not s.parked
            for s in self._sessions
        ):
            return
        self._flush()

    def _flush(self) -> None:
        """Run every pending request through the inner model (lock held).

        Requests are ordered by the deterministic ``(order, seq)`` key,
        grouped by ``max_tokens`` (the inner batch API applies one
        budget per batch), and chunked into ``window``-sized
        micro-batches.  Prompts that overflow the context window are
        replayed individually so the requester sees exactly the error
        and accounting the unbatched path produces.
        """
        racecheck.write("BatchingLM._pending")
        batch = sorted(
            self._pending, key=lambda it: (it.session.order, it.seq)
        )
        self._pending = []
        context_window = self._inner.config.context_window
        groups: dict[int | None, list[_Pending]] = {}
        # The flush runs on whichever requester's thread completed the
        # barrier; without suspension the inner model's spans would all
        # land on that one request's trace.  Per-request attribution
        # happens at delivery instead (see _trace_item).
        with trace.suspended():
            for item in batch:
                if count_tokens(item.prompt) > context_window:
                    self._run_single(item)
                else:
                    groups.setdefault(item.max_tokens, []).append(item)
            for max_tokens in sorted(
                groups, key=lambda v: (v is None, v or 0)
            ):
                items = groups[max_tokens]
                for start in range(0, len(items), self.window):
                    self._run_chunk(items[start : start + self.window])
        for session in self._sessions:
            session.waiting = False
        self._cv.notify_all()

    def _run_chunk(self, chunk: list[_Pending]) -> None:
        try:
            responses = self._inner.complete_batch(
                [item.prompt for item in chunk], chunk[0].max_tokens
            )
        except Exception:  # noqa: BLE001 - replay to isolate the bad prompt
            # One poisoned prompt (e.g. unroutable) must not fail its
            # batch-mates: fall back to per-request execution, which
            # delivers each requester its own outcome.
            for item in chunk:
                self._run_single(item)
            return
        self.clock.advance(sum(r.latency_s for r in responses))
        if self._metrics is not None:
            self._metrics.counter("serve.lm.batches").inc()
            self._metrics.histogram("serve.lm.batch_size").observe(
                len(chunk)
            )
        for item, response in zip(chunk, responses):
            self._finish(item, response)

    def _run_single(self, item: _Pending) -> None:
        try:
            response = self._inner.complete(item.prompt, item.max_tokens)
        except Exception as exc:  # noqa: BLE001 - delivered to the requester
            # Injected faults carry the simulated seconds the failed
            # call burned (a timeout costs the full timeout); the
            # accelerator timeline pays for failures like successes.
            self.clock.advance(getattr(exc, "latency_s", 0.0))
            item.error = exc
            item.done = True
            key = (item.prompt, item.max_tokens)
            racecheck.write("BatchingLM._inflight")
            racecheck.write("BatchingLM._errored")
            self._inflight.pop(key, None)
            # Each errored delivery (leader + followers) may come back
            # as a retry of work whose hit/miss was already metered.
            self._errored[key] = (
                self._errored.get(key, 0) + 1 + len(item.followers)
            )
            for follower in item.followers:
                follower.error = exc
                follower.done = True
            return
        self.clock.advance(response.latency_s)
        self._finish(item, response)

    def _finish(self, item: _Pending, response: LMResponse) -> None:
        item.response = response
        item.done = True
        racecheck.write(f"Session.{item.session.order}.meters")
        item.session.lm_calls += 1
        if self._cache.capacity:
            racecheck.write("BatchingLM._cache")
            racecheck.write("BatchingLM._inflight")
            self._cache.put((item.prompt, item.max_tokens), response)
            self._inflight.pop((item.prompt, item.max_tokens), None)
        for follower in item.followers:
            # The compute already ran (and was billed) once: followers
            # see the same text at zero additional simulated latency.
            follower.response = replace(response, latency_s=0.0)
            follower.done = True
