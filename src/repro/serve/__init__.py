"""The concurrent TAG serving layer.

Turns the library's single-pipeline core into a deployment: a
:class:`TagServer` runs many :class:`~repro.core.TAGPipeline`\\ s on a
worker pool, their LM calls coalesced into micro-batches by a
:class:`BatchingLM` facade (with an optional LRU prompt cache), and all
latency accounted on a deterministic :class:`VirtualClock` so measured
throughput is machine-independent and exactly reproducible.  An
optional :class:`AdmissionPolicy` turns the static analyzer's LM-cost
bound into pre-dispatch admission control.
"""

from repro.serve.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    SQLAdmissionEstimator,
)
from repro.serve.batching import BatchingLM, Session
from repro.serve.cache import LRUCache
from repro.serve.clock import VirtualClock
from repro.serve.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    ResiliencePolicy,
    ResilientLM,
    RetryPolicy,
)
from repro.serve.semantic import (
    CanonicalForm,
    QueryRegistry,
    RegistryEntry,
    SemanticHit,
    SemanticResultCache,
    canonicalize,
)
from repro.serve.server import (
    PipelineFactory,
    ServeReport,
    ServeResult,
    TagServer,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "BatchingLM",
    "BreakerPolicy",
    "CanonicalForm",
    "CircuitBreaker",
    "LRUCache",
    "PipelineFactory",
    "QueryRegistry",
    "RegistryEntry",
    "ResiliencePolicy",
    "ResilientLM",
    "RetryPolicy",
    "SQLAdmissionEstimator",
    "SemanticHit",
    "SemanticResultCache",
    "ServeReport",
    "ServeResult",
    "Session",
    "TagServer",
    "VirtualClock",
    "canonicalize",
]
