"""Resilience middleware: retries, deadlines, and a circuit breaker.

``ResilientLM`` wraps any ``complete``/``complete_batch`` LM (typically
a :class:`~repro.serve.batching.BatchingLM`) and gives its caller the
client-side survival kit of production LM serving:

- **retry with exponential backoff** on
  :class:`~repro.errors.TransientLMError` (rate limits, timeouts,
  transient failures, malformed outputs) — backoff sleeps advance the
  :class:`~repro.serve.clock.VirtualClock`, so retries cost *simulated*
  seconds, never wall time, and every measured number stays
  machine-independent;
- **deterministic jitter** — the jitter multiplier is a pure hash of
  ``(seed, attempt, prompt)``, not a shared RNG, so backoff schedules
  are identical across runs and worker counts;
- **per-request deadlines** — a budget of simulated seconds (attempt
  latencies plus backoffs); when the next backoff would overrun it, the
  request dies with :class:`~repro.errors.DeadlineExceededError`;
- **a circuit breaker** — trips open after N consecutive transient
  failures, rejects calls instantly (zero simulated LM latency) while
  open, and half-opens after a cooldown measured on a virtual clock.

Policy time vs. makespan time.  The breaker's cooldown runs on the
``timeline`` clock — by default a private clock advanced only by the
costs *this* wrapper observes (its attempts' latencies and backoffs).
The shared makespan clock would be wrong here: concurrent workers
advance it at OS-schedule-dependent instants, so reading it for policy
decisions would make breaker transitions racy run-to-run.  A private
timeline is a pure function of this caller's own call sequence, which
keeps every report byte-identical across runs.  In single-threaded use
you may pass the shared clock as the timeline; the two coincide.

All policy events are metered in :class:`~repro.lm.usage.Usage`
(``retries``, ``breaker_trips``, ``deadline_exceeded``).  With no
faults occurring, the wrapper makes zero extra calls, zero clock
advances, and zero meter increments — a strict no-op.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    TransientLMError,
)
from repro.lm.model import LMConfig, LMResponse
from repro.lm.usage import Usage
from repro.obs import racecheck, trace
from repro.serve.batching import Session
from repro.serve.clock import VirtualClock


def _unit_hash(*parts: object) -> float:
    """A deterministic draw in [0, 1) from the given parts."""
    digest = hashlib.sha256(
        "|".join(str(part) for part in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter."""

    #: Total attempts, the first one included; 1 disables retries.
    max_attempts: int = 4
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 8.0
    #: Jitter fraction j: the sleep is uniform in [base*(1-j), base*(1+j)].
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_seconds(self, prompt: str, attempt: int) -> float:
        """Sleep before retrying ``prompt`` after failed ``attempt``.

        Pure in its arguments: jitter comes from a hash, not an RNG
        stream, so the schedule never depends on call interleaving.
        """
        base = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter == 0.0:
            return base
        unit = _unit_hash(self.seed, "backoff", attempt, prompt)
        return base * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds (virtual seconds)."""

    #: Consecutive transient failures that trip the breaker open.
    failure_threshold: int = 5
    #: Simulated seconds an open breaker waits before half-opening.
    reset_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {self.reset_timeout_s}"
            )


class CircuitBreaker:
    """closed → open → half-open → closed, timed on a virtual clock.

    Closed counts consecutive transient failures; at the threshold the
    breaker opens and rejects calls instantly.  Once the clock passes
    ``opened_at + reset_timeout_s`` it half-opens: the next call is a
    probe — success closes the breaker, failure re-opens it (a fresh
    trip, cooldown restarted).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: BreakerPolicy, clock: VirtualClock) -> None:
        self.policy = policy
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    def _sync_locked(self) -> None:
        if (
            self._state == self.OPEN
            and self.clock.now()
            >= self._opened_at + self.policy.reset_timeout_s
        ):
            self._state = self.HALF_OPEN

    @property
    def state(self) -> str:
        with racecheck.guard("CircuitBreaker._lock", self._lock):
            racecheck.write("CircuitBreaker.state")
            self._sync_locked()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open allows the probe.)"""
        with racecheck.guard("CircuitBreaker._lock", self._lock):
            racecheck.write("CircuitBreaker.state")
            self._sync_locked()
            return self._state != self.OPEN

    def cooldown_remaining(self) -> float:
        with racecheck.guard("CircuitBreaker._lock", self._lock):
            racecheck.write("CircuitBreaker.state")
            self._sync_locked()
            if self._state != self.OPEN:
                return 0.0
            return (
                self._opened_at
                + self.policy.reset_timeout_s
                - self.clock.now()
            )

    def record_success(self) -> None:
        with racecheck.guard("CircuitBreaker._lock", self._lock):
            racecheck.write("CircuitBreaker.state")
            self._sync_locked()
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count a transient failure; True iff this one tripped it open."""
        with racecheck.guard("CircuitBreaker._lock", self._lock):
            racecheck.write("CircuitBreaker.state")
            self._sync_locked()
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self.clock.now()
                self._consecutive_failures = 0
                return True
            self._consecutive_failures += 1
            if (
                self._state == self.CLOSED
                and self._consecutive_failures
                >= self.policy.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self.clock.now()
                self._consecutive_failures = 0
                return True
            return False


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything a :class:`ResilientLM` enforces."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-request budget of simulated seconds; None disables deadlines.
    deadline_s: float | None = None
    #: None disables the circuit breaker.
    breaker: BreakerPolicy | None = None

    @classmethod
    def no_retry(cls, **overrides) -> "ResiliencePolicy":
        """The baseline policy: one attempt, nothing else."""
        return cls(retry=RetryPolicy(max_attempts=1), **overrides)


class ResilientLM:
    """Retry/deadline/breaker middleware with the SimulatedLM surface."""

    def __init__(
        self,
        inner,
        policy: ResiliencePolicy | None = None,
        clock: VirtualClock | None = None,
        timeline: VirtualClock | None = None,
        session: Session | None = None,
        meter_lock: threading.Lock | None = None,
    ) -> None:
        self._inner = inner
        self.policy = policy or ResiliencePolicy()
        #: Shared makespan clock billed for backoff sleeps (optional).
        self._clock = clock
        #: Policy timeline: this caller's own consumed simulated time.
        self._timeline = timeline or VirtualClock()
        #: Serving session to attribute backoff seconds to (optional).
        self._session = session
        self._meter_lock = meter_lock or threading.Lock()
        self.breaker = (
            CircuitBreaker(self.policy.breaker, self._timeline)
            if self.policy.breaker is not None
            else None
        )

    # ------------------------------------------------------------------
    # SimulatedLM-compatible surface
    # ------------------------------------------------------------------

    @property
    def usage(self) -> Usage:
        return self._inner.usage

    @property
    def config(self) -> LMConfig:
        return self._inner.config

    def reset_usage(self) -> None:
        self._inner.reset_usage()

    def complete(
        self, prompt: str, max_tokens: int | None = None
    ) -> LMResponse:
        return self._drive(prompt, max_tokens, None)

    def complete_batch(
        self, prompts: list[str], max_tokens: int | None = None
    ) -> list[LMResponse]:
        """Healthy batches pass through untouched (identical batch
        composition and cost to no middleware at all).

        When the inner model exposes ``try_complete_batch`` (a
        :class:`~repro.serve.batching.BatchingLM` does), a partially
        failed batch keeps its successful responses and re-drives
        *only* the failed prompts — already-billed work is never
        re-executed, so ``calls`` and token counters stay honest under
        retry.  Otherwise a transiently failed batch is re-driven one
        prompt at a time, each with its own retry budget.
        """
        if not prompts:
            return []
        self._check_breaker()
        attempted = getattr(self._inner, "try_complete_batch", None)
        if attempted is None:
            try:
                responses = self._inner.complete_batch(prompts, max_tokens)
            except TransientLMError:
                return [
                    self.complete(prompt, max_tokens) for prompt in prompts
                ]
            self._timeline.advance(sum(r.latency_s for r in responses))
            if self.breaker is not None:
                self.breaker.record_success()
            return responses
        results: list[LMResponse] = []
        for prompt, outcome in zip(prompts, attempted(prompts, max_tokens)):
            if isinstance(outcome, LMResponse):
                self._timeline.advance(outcome.latency_s)
                if self.breaker is not None:
                    self.breaker.record_success()
                results.append(outcome)
            elif isinstance(outcome, TransientLMError):
                results.append(self._drive(prompt, max_tokens, outcome))
            else:
                raise outcome
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _drive(
        self,
        prompt: str,
        max_tokens: int | None,
        failure: TransientLMError | None,
    ) -> LMResponse:
        """The retry loop for one prompt.

        ``failure`` optionally seeds the loop with a transient error
        that already happened (a failed slot of a batch): attempt 1 is
        charged for it and the loop proceeds straight to
        backoff-and-retry, exactly as if this wrapper had made the
        failing call itself.
        """
        retry = self.policy.retry
        deadline = self.policy.deadline_s
        spent = 0.0
        attempt = 1
        while True:
            if failure is None:
                self._check_breaker()
                try:
                    response = self._inner.complete(prompt, max_tokens)
                except TransientLMError as exc:
                    failure = exc
                else:
                    self._timeline.advance(response.latency_s)
                    if self.breaker is not None:
                        self.breaker.record_success()
                    return response
            error, failure = failure, None
            cost = error.latency_s
            spent += cost
            self._timeline.advance(cost)
            if self.breaker is not None and self.breaker.record_failure():
                with racecheck.guard("serve.meter_lock", self._meter_lock):
                    racecheck.write("Usage.resilience_meters")
                    self.usage.breaker_trips += 1
                trace.event("breaker.trip")
            if attempt >= retry.max_attempts:
                raise error
            backoff = retry.backoff_seconds(prompt, attempt)
            if deadline is not None and spent + backoff > deadline:
                with racecheck.guard("serve.meter_lock", self._meter_lock):
                    racecheck.write("Usage.resilience_meters")
                    self.usage.deadline_exceeded += 1
                trace.event(
                    "deadline.exceeded", deadline=deadline, spent=spent
                )
                raise DeadlineExceededError(deadline, spent) from error
            trace.leaf("retry.backoff", backoff, attempt=attempt)
            self._sleep(backoff)
            spent += backoff
            attempt += 1

    def _check_breaker(self) -> None:
        if self.breaker is not None and not self.breaker.allow():
            # Fail fast: no simulated LM latency, no clock advance.
            cooldown = self.breaker.cooldown_remaining()
            trace.event("breaker.open", cooldown=cooldown)
            raise CircuitOpenError(cooldown)

    def _sleep(self, seconds: float) -> None:
        """A backoff sleep in simulated time.

        Advances the policy timeline, bills the shared makespan clock
        (retries cost simulated seconds, not wall time), and attributes
        the wait to the serving session's per-request consumption.
        """
        self._timeline.advance(seconds)
        if self._clock is not None and self._clock is not self._timeline:
            self._clock.advance(seconds)
        if self._session is not None:
            # Unlocked by design: only this session's own worker thread
            # sleeps here, and the flushing thread's meter writes are
            # ordered before this one by the cv wake-up the worker just
            # went through — an edge the dynamic checker verifies.
            racecheck.write(f"Session.{self._session.order}.meters")
            self._session.consumed_seconds += seconds
        with racecheck.guard("serve.meter_lock", self._meter_lock):
            racecheck.write("Usage.resilience_meters")
            self.usage.retries += 1
