"""A deterministic virtual clock for the serving layer.

Serving simulations must never read wall-clock time: ET numbers in the
paper tables are machine-independent here because *all* latency comes
from :class:`repro.lm.latency.LatencyModel`.  The serving layer keeps
that property by advancing a virtual clock with the simulated latency
of every flushed micro-batch — the clock models the single simulated
accelerator that batches are serialized through, so

    throughput = requests / clock.now()

is exactly reproducible across machines and thread schedules.
"""

from __future__ import annotations

import threading

from repro.obs import racecheck


class VirtualClock:
    """Thread-safe monotone virtual time, in simulated seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with racecheck.guard("VirtualClock._lock", self._lock):
            racecheck.read("VirtualClock._now")
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} seconds")
        with racecheck.guard("VirtualClock._lock", self._lock):
            racecheck.write("VirtualClock._now")
            self._now += seconds
            return self._now
