"""A small LRU map used as the serving layer's prompt->response cache.

Deliberately not thread-safe on its own: :class:`repro.serve.BatchingLM`
already serialises every scheduler decision under one condition
variable, and hit/miss metering (wired into
:class:`repro.lm.usage.Usage`) lives with the caller.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

_MISSING = object()


class LRUCache:
    """Least-recently-used cache with a fixed capacity.

    ``capacity == 0`` disables the cache entirely: every ``get`` misses
    and ``put`` is a no-op, so callers need no special-casing.  The
    cache itself never meters: a caller that counts hits/misses must do
    so at exactly one seam (its own lookup path) — metering a miss at
    ``get`` *and* a drop at ``put`` double-counts every disabled-cache
    round trip (see :class:`repro.serve.semantic.SemanticResultCache`
    for the audited pattern and its counter test).

    Peek vs. promote.  Only :meth:`get` counts as a *use*: it promotes
    the entry to most-recently-used.  :meth:`peek` and ``key in cache``
    are pure lookups — they never touch recency, so eviction order is a
    function of the ``get``/``put`` history alone.  Callers that intend
    to consume an entry must therefore use ``get`` directly rather than
    testing membership first and assuming the test refreshed it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up and *promote*: a hit becomes most-recently-used."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up without promoting: eviction order is unchanged."""
        value = self._entries.get(key, _MISSING)
        return default if value is _MISSING else value

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; a peek — never promotes (see class docs)."""
        return key in self._entries

    def put(
        self, key: Hashable, value: Any
    ) -> list[tuple[Hashable, Any]]:
        """Insert/overwrite; returns the ``(key, value)`` pairs evicted.

        Overwriting an existing key counts as a use (the entry becomes
        most-recently-used) — assigning into an ``OrderedDict`` already
        leaves an existing key's position unchanged, so the promotion
        is the single ``move_to_end`` below, not a redundant pre-pass.
        Callers that mirror entries in a secondary structure (e.g. a
        vector index mapping rows to keys) use the returned evictions
        to tombstone their side; everyone else ignores the return.
        """
        if self.capacity == 0:
            return []
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted: list[tuple[Hashable, Any]] = []
        while len(self._entries) > self.capacity:
            evicted.append(self._entries.popitem(last=False))
        return evicted

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return an entry (``default`` when absent)."""
        value = self._entries.pop(key, _MISSING)
        return default if value is _MISSING else value

    def keys(self) -> list[Hashable]:
        """Current keys, least-recently-used first (a snapshot copy)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
