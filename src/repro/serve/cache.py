"""A small LRU map used as the serving layer's prompt->response cache.

Deliberately not thread-safe on its own: :class:`repro.serve.BatchingLM`
already serialises every scheduler decision under one condition
variable, and hit/miss metering (wired into
:class:`repro.lm.usage.Usage`) lives with the caller.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

_MISSING = object()


class LRUCache:
    """Least-recently-used cache with a fixed capacity.

    ``capacity == 0`` disables the cache entirely: every ``get`` misses
    and ``put`` is a no-op, so callers need no special-casing.

    Peek vs. promote.  Only :meth:`get` counts as a *use*: it promotes
    the entry to most-recently-used.  :meth:`peek` and ``key in cache``
    are pure lookups — they never touch recency, so eviction order is a
    function of the ``get``/``put`` history alone.  Callers that intend
    to consume an entry must therefore use ``get`` directly rather than
    testing membership first and assuming the test refreshed it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up and *promote*: a hit becomes most-recently-used."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up without promoting: eviction order is unchanged."""
        value = self._entries.get(key, _MISSING)
        return default if value is _MISSING else value

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; a peek — never promotes (see class docs)."""
        return key in self._entries

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
