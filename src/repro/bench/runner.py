"""Benchmark runner: methods x queries -> records -> aggregate report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bench.evaluate import exact_match
from repro.bench.queries import QuerySpec
from repro.bench.suite import build_suite
from repro.data import load_all
from repro.data.base import Dataset
from repro.lm import LMConfig, SimulatedLM


@dataclass
class QueryRecord:
    """One (method, query) outcome."""

    qid: str
    domain: str
    query_type: str
    capability: str
    method: str
    answer: Any
    gold: list[Any] | None
    correct: bool | None  # None for aggregation (no exact match)
    et_seconds: float
    error: str | None
    diagnostics: dict[str, Any] = field(default_factory=dict)


@dataclass
class BenchmarkReport:
    """All records plus aggregation helpers for Tables 1 and 2."""

    records: list[QueryRecord]
    methods: list[str]
    seed: int

    def _select(
        self,
        method: str,
        query_type: str | None = None,
        capability: str | None = None,
    ) -> list[QueryRecord]:
        return [
            record
            for record in self.records
            if record.method == method
            and (query_type is None or record.query_type == query_type)
            and (capability is None or record.capability == capability)
        ]

    def accuracy(
        self,
        method: str,
        query_type: str | None = None,
        capability: str | None = None,
    ) -> float | None:
        """Exact-match rate over scoreable (non-aggregation) queries."""
        scoreable = [
            record
            for record in self._select(method, query_type, capability)
            if record.correct is not None
        ]
        if not scoreable:
            return None
        return sum(record.correct for record in scoreable) / len(scoreable)

    def mean_et(
        self,
        method: str,
        query_type: str | None = None,
        capability: str | None = None,
    ) -> float | None:
        chosen = self._select(method, query_type, capability)
        if not chosen:
            return None
        return sum(record.et_seconds for record in chosen) / len(chosen)

    def record(self, method: str, qid: str) -> QueryRecord:
        for candidate in self.records:
            if candidate.method == method and candidate.qid == qid:
                return candidate
        raise KeyError(f"no record for ({method}, {qid})")


def run_benchmark(
    seed: int = 0,
    methods: list | None = None,
    queries: list[QuerySpec] | None = None,
    datasets: dict[str, Dataset] | None = None,
    lm_config: LMConfig | None = None,
    max_queries: int | None = None,
) -> BenchmarkReport:
    """Run the benchmark and return the full report.

    Deterministic for a given ``seed``: datasets, LM beliefs, and LM
    judgment noise are all derived from it.
    """
    from repro.methods import default_methods

    if queries is None:
        queries = build_suite()
    if max_queries is not None:
        queries = queries[:max_queries]
    if datasets is None:
        domains = {spec.domain for spec in queries}
        datasets = {
            name: dataset
            for name, dataset in load_all(seed=seed).items()
            if name in domains
        }
    if methods is None:
        config = lm_config or LMConfig(seed=seed)

        def lm_factory() -> SimulatedLM:
            return SimulatedLM(config)

        methods = default_methods(lm_factory)

    gold_cache: dict[str, list[Any] | None] = {}
    records: list[QueryRecord] = []
    for method in methods:
        for dataset in datasets.values():
            method.prepare(dataset)
        for spec in queries:
            dataset = datasets[spec.domain]
            if spec.qid not in gold_cache:
                gold_cache[spec.qid] = (
                    spec.gold(dataset) if spec.gold is not None else None
                )
            gold = gold_cache[spec.qid]
            outcome = method.answer(spec, dataset)
            correct: bool | None = None
            if gold is not None:
                correct = outcome.ok and exact_match(
                    outcome.answer,
                    gold,
                    ordered=spec.query_type == "ranking",
                )
            records.append(
                QueryRecord(
                    qid=spec.qid,
                    domain=spec.domain,
                    query_type=spec.query_type,
                    capability=spec.capability,
                    method=method.name,
                    answer=outcome.answer,
                    gold=gold,
                    correct=correct,
                    et_seconds=outcome.et_seconds,
                    error=outcome.error,
                    diagnostics=outcome.diagnostics,
                )
            )
    return BenchmarkReport(
        records=records,
        methods=[method.name for method in methods],
        seed=seed,
    )
