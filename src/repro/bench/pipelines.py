"""Shared building blocks for the hand-written TAG pipelines.

These helpers encode the *schema expertise* of the paper's Appendix C
pipelines — which tables join how, and which columns feed which
semantic operator — in reusable form.  Everything semantic goes through
the operators (i.e. the LM); nothing here consults the oracle.
"""

from __future__ import annotations

from repro.bench.queries import PipelineContext
from repro.frame import DataFrame, merge


def filter_by_region(
    ctx: PipelineContext,
    frame: DataFrame,
    region: str,
    city_column: str = "City",
) -> DataFrame:
    """Keep rows whose city the LM judges to be in ``region``.

    Judges each *unique* city once — the dedup optimisation the paper's
    match-based example pipeline applies before sem_filter.
    """
    cities = DataFrame({city_column: frame[city_column].unique()})
    kept = ctx.ops.sem_filter(
        cities,
        "{" + city_column + "} is a city in the " + region + " region",
    )
    return frame[frame[city_column].isin(kept[city_column].tolist())]


def filter_players_by_height(
    ctx: PipelineContext,
    frame: DataFrame,
    person: str,
    direction: str = "taller",
    height_column: str = "height",
) -> DataFrame:
    """Keep players the LM judges taller/shorter than a public figure."""
    heights = DataFrame({height_column: frame[height_column].unique()})
    kept = ctx.ops.sem_filter(
        heights,
        "a player with height {" + height_column + "} is "
        f"{direction} than {person}",
    )
    return frame[
        frame[height_column].isin(kept[height_column].tolist())
    ]


def filter_countries(
    ctx: PipelineContext,
    frame: DataFrame,
    predicate: str,
    country_column: str = "Country",
) -> DataFrame:
    """Keep rows whose country satisfies a knowledge predicate, e.g.
    ``"uses the euro"`` or ``"is a member of the European Union"``."""
    countries = DataFrame(
        {country_column: frame[country_column].unique()}
    )
    kept = ctx.ops.sem_filter(
        countries, "{" + country_column + "} " + predicate
    )
    return frame[
        frame[country_column].isin(kept[country_column].tolist())
    ]


def filter_street_circuits(
    ctx: PipelineContext, circuits: DataFrame
) -> DataFrame:
    """Keep circuits the LM judges to be street circuits."""
    return ctx.ops.sem_filter(circuits, "{name} is a street circuit")


def filter_circuits_in_region(
    ctx: PipelineContext, circuits: DataFrame, region: str
) -> DataFrame:
    """Keep circuits the LM judges to be in ``region``."""
    return ctx.ops.sem_filter(
        circuits, "{name} is located in " + region
    )


def filter_uk_leagues(
    ctx: PipelineContext, leagues: DataFrame
) -> DataFrame:
    """Keep leagues based in the UK (country prefix of the league name)."""
    with_country = leagues.assign(
        league_country=[
            name.split()[0] for name in leagues["name"].tolist()
        ]
    )
    kept = ctx.ops.sem_filter(
        with_country, "{league_country} is part of the United Kingdom"
    )
    return kept[leagues.columns]


def races_with_circuits(ctx: PipelineContext) -> DataFrame:
    """races joined to circuits with disambiguated name columns."""
    races = ctx.frame("races").rename(columns={"name": "race_name"})
    circuits = ctx.frame("circuits").rename(
        columns={"name": "circuit_name"}
    )
    return merge(
        races, circuits, left_on="circuitId", right_on="circuitId"
    )


def players_with_attributes(ctx: PipelineContext) -> DataFrame:
    """Player joined to Player_Attributes on player_api_id."""
    return merge(
        ctx.frame("Player"),
        ctx.frame("Player_Attributes"),
        left_on="player_api_id",
        right_on="player_api_id",
    )


def comments_for_post_title(
    ctx: PipelineContext, title: str
) -> DataFrame:
    posts = ctx.frame("posts")
    post = posts[posts["Title"] == title]
    # Project the post side to its key so comment columns keep their
    # names (Score, CreationDate, ... would otherwise be suffixed).
    return merge(
        post[["Id"]],
        ctx.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )


def filter_positive(
    ctx: PipelineContext, frame: DataFrame, text_column: str = "Text"
) -> DataFrame:
    """Keep rows whose text the LM judges positive."""
    return ctx.ops.sem_filter(
        frame, "The comment '{" + text_column + "}' is positive"
    )


def filter_negative(
    ctx: PipelineContext, frame: DataFrame, text_column: str = "Text"
) -> DataFrame:
    """Keep rows whose text the LM judges negative."""
    return ctx.ops.sem_filter(
        frame, "The comment '{" + text_column + "}' is negative"
    )


def filter_sarcastic(
    ctx: PipelineContext, frame: DataFrame, text_column: str = "Text"
) -> DataFrame:
    """Keep rows whose text the LM judges sarcastic."""
    return ctx.ops.sem_filter(
        frame, "The comment '{" + text_column + "}' is sarcastic"
    )


def filter_technical_titles(
    ctx: PipelineContext, frame: DataFrame, title_column: str = "Title"
) -> DataFrame:
    """Keep rows whose title the LM judges technical."""
    return ctx.ops.sem_filter(
        frame, "The title '{" + title_column + "}' is technical"
    )


def topk_technical(
    ctx: PipelineContext, frame: DataFrame, k: int,
    title_column: str = "Title",
) -> DataFrame:
    """Top-k rows by LM-judged technicality, best first."""
    return ctx.ops.sem_topk(
        frame, "Which {" + title_column + "} is most technical?", k
    )


def topk_sarcastic(
    ctx: PipelineContext, frame: DataFrame, k: int,
    text_column: str = "Text",
) -> DataFrame:
    """Top-k rows by LM-judged sarcasm, best first."""
    return ctx.ops.sem_topk(
        frame, "Which comment {" + text_column + "} is most sarcastic?", k
    )


def topk_positive(
    ctx: PipelineContext, frame: DataFrame, k: int,
    text_column: str = "Text",
) -> DataFrame:
    """Top-k rows by LM-judged positivity, best first."""
    return ctx.ops.sem_topk(
        frame, "Which comment {" + text_column + "} is most positive?", k
    )


def topk_negative(
    ctx: PipelineContext, frame: DataFrame, k: int,
    text_column: str = "Text",
) -> DataFrame:
    """Top-k rows by LM-judged negativity, best first."""
    return ctx.ops.sem_topk(
        frame, "Which comment {" + text_column + "} is most negative?", k
    )
