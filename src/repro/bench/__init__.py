"""TAG-Bench: the paper's 80-query benchmark, rebuilt end to end.

80 natural-language queries over five BIRD-style domains — 40 requiring
world *knowledge*, 40 requiring semantic *reasoning*; 20 each of the
four BIRD query types (match-based, comparison, ranking, aggregation) —
with programmatic gold answers, per-query hand-written TAG pipelines,
and a runner that scores all five methods on exact match and execution
time, regenerating the paper's Table 1, Table 2, and Figure 2.
"""

from repro.bench.evaluate import exact_match, normalize_answer
from repro.bench.queries import PipelineContext, QuerySpec
from repro.bench.report import (
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)
from repro.bench.runner import BenchmarkReport, QueryRecord, run_benchmark
from repro.bench.suite import build_suite

__all__ = [
    "BenchmarkReport",
    "PipelineContext",
    "QueryRecord",
    "QuerySpec",
    "build_suite",
    "exact_match",
    "format_table1",
    "format_table2",
    "normalize_answer",
    "run_benchmark",
    "table1_rows",
    "table2_rows",
]
