"""Aggregation queries: free-text answers over many rows.

10 knowledge + 10 reasoning.  The paper measures no exact match here
("we provide qualitative analysis on results", §4.1); the benchmark
records each method's answer and ET, and the Figure 2 benchmark scores
answer *completeness* on the Sepang query.
"""

from __future__ import annotations

from repro.bench import oracle, pipelines
from repro.bench.queries import PipelineContext, QuerySpec
from repro.bench.suites.match import _top_posts
from repro.data.base import Dataset
from repro.frame import DataFrame, merge

SEPANG_QUESTION = (
    "Provide information about the races held on Sepang International "
    "Circuit."
)

_GENTLE_POST = "How does gentle boosting differ from AdaBoost?"
_KERNEL_POST = "Kernel trick intuition for support vector machines"
_BACKPROP_POST = "Backpropagation through a softmax-cross-entropy layer"


def build() -> list[QuerySpec]:
    """The 20 aggregation queries (10 knowledge + 10 reasoning)."""
    return _knowledge() + _reasoning()


def _spec(
    qid: str,
    domain: str,
    capability: str,
    question: str,
    pipeline,
    entities,
    source,
) -> QuerySpec:
    return QuerySpec(
        qid=qid,
        domain=domain,
        query_type="aggregation",
        capability=capability,
        question=question,
        gold=None,
        pipeline=pipeline,
        agg_entities=entities,
        agg_source=source,
    )


# ---------------------------------------------------------------------------
# quality-oracle helpers (gold side; never used by pipelines)
# ---------------------------------------------------------------------------


def _circuit_race_rows(dataset: Dataset, names: set[str]) -> list[dict]:
    circuits = dataset.frame("circuits")
    chosen = circuits[circuits["name"].isin(names)]
    ids = set(chosen["circuitId"].tolist())
    races = dataset.frame("races")
    return races[races["circuitId"].isin(ids)].to_records()


def _race_years(dataset: Dataset, names: set[str]) -> list[str]:
    return sorted(
        {
            str(record["year"])
            for record in _circuit_race_rows(dataset, names)
        }
    )


def _region_school_rows(dataset: Dataset, region: str) -> list[dict]:
    return oracle.filter_by_region(
        dataset.frame("schools"), region
    ).to_records()


def _region_cities_present(dataset: Dataset, region: str) -> list[str]:
    schools = oracle.filter_by_region(dataset.frame("schools"), region)
    return schools["City"].unique()


def _country_station_rows(
    dataset: Dataset, countries: set[str]
) -> list[dict]:
    stations = dataset.frame("gasstations")
    return stations[stations["Country"].isin(countries)].to_records()


def _countries_present(dataset: Dataset, countries: set[str]) -> list[str]:
    stations = dataset.frame("gasstations")
    return stations[stations["Country"].isin(countries)][
        "Country"
    ].unique()


def _comment_rows(dataset: Dataset, title: str) -> list[dict]:
    posts = dataset.frame("posts")
    post = posts[posts["Title"] == title]
    return merge(
        post[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    ).to_records()


def _comment_prefixes(records: list[dict], words: int = 6) -> list[str]:
    """Distinctive prefixes of comment texts — an answer "mentions" a
    comment when it reproduces its opening words."""
    prefixes = []
    for record in records:
        text = str(record["Text"])
        prefix = " ".join(text.split()[:words])
        if prefix not in prefixes:
            prefixes.append(prefix)
    return prefixes


def _top_technical_titles(dataset: Dataset, count: int) -> list[str]:
    from repro.text.technicality import technicality_score

    titles = [
        str(record["Title"])
        for record in dataset.frame("posts").to_records()
    ]
    ranked = sorted(titles, key=technicality_score, reverse=True)
    return ranked[:count]


def _top_post_comment_rows(dataset: Dataset, count: int = 1) -> list[dict]:
    top = _top_posts(dataset.frame("posts"), count)
    return merge(
        top[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    ).to_records()


# ---------------------------------------------------------------------------
# knowledge
# ---------------------------------------------------------------------------


def _knowledge() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def pipe_ak1(ctx: PipelineContext):
        joined = pipelines.races_with_circuits(ctx)
        sepang = joined[
            joined["circuit_name"] == "Sepang International Circuit"
        ]
        return ctx.ops.sem_agg(
            sepang,
            SEPANG_QUESTION,
            columns=["year", "round", "date", "race_name", "location"],
        )

    _SEPANG = {"Sepang International Circuit"}
    specs.append(
        _spec(
            "aggregation-k01",
            "formula_1",
            "knowledge",
            SEPANG_QUESTION,
            pipe_ak1,
            entities=lambda d: _race_years(d, _SEPANG),
            source=lambda d: _circuit_race_rows(d, _SEPANG),
        )
    )

    def pipe_ak2(ctx: PipelineContext):
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        europe = pipelines.filter_circuits_in_region(
            ctx, street, "europe"
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            europe, races, left_on="circuitId", right_on="circuitId"
        )
        return ctx.ops.sem_agg(
            joined,
            "Provide information about the races held on street "
            "circuits in Europe.",
            columns=["name", "year", "race_name", "date"],
        )

    def _street_europe(d: Dataset) -> set[str]:
        return oracle.street_circuits() & oracle.circuits_in_region(
            "europe"
        )

    specs.append(
        _spec(
            "aggregation-k02",
            "formula_1",
            "knowledge",
            "Provide information about the races held on street "
            "circuits in Europe.",
            pipe_ak2,
            entities=lambda d: _race_years(d, _street_europe(d)),
            source=lambda d: _circuit_race_rows(d, _street_europe(d)),
        )
    )

    def pipe_ak3(ctx: PipelineContext):
        schools = pipelines.filter_by_region(
            ctx, ctx.frame("schools"), "Silicon Valley"
        )
        return ctx.ops.sem_agg(
            schools,
            "Summarize the characteristics of schools in the Silicon "
            "Valley region.",
            columns=["School", "City", "County", "GSoffered", "Charter"],
        )

    specs.append(
        _spec(
            "aggregation-k03",
            "california_schools",
            "knowledge",
            "Summarize the characteristics of schools in the Silicon "
            "Valley region.",
            pipe_ak3,
            entities=lambda d: _region_cities_present(
                d, "silicon valley"
            ),
            source=lambda d: _region_school_rows(d, "silicon valley"),
        )
    )

    def pipe_ak4(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        bay = pipelines.filter_by_region(ctx, joined, "Bay Area")
        return ctx.ops.sem_agg(
            bay,
            "Provide an overview of the SAT performance of schools in "
            "the Bay Area.",
            columns=[
                "School", "City", "AvgScrMath", "AvgScrRead",
                "AvgScrWrite", "NumTstTakr",
            ],
        )

    def _bay_sat_rows(d: Dataset) -> list[dict]:
        joined = merge(
            d.frame("schools"),
            d.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        return oracle.filter_by_region(joined, "bay area").to_records()

    specs.append(
        _spec(
            "aggregation-k04",
            "california_schools",
            "knowledge",
            "Provide an overview of the SAT performance of schools in "
            "the Bay Area.",
            pipe_ak4,
            entities=lambda d: sorted(
                {str(r["City"]) for r in _bay_sat_rows(d)}
            ),
            source=_bay_sat_rows,
        )
    )

    def pipe_ak5(ctx: PipelineContext):
        euro = pipelines.filter_countries(
            ctx, ctx.frame("gasstations"), "uses the euro"
        )
        return ctx.ops.sem_agg(
            euro,
            "Summarize the gas stations in countries that use the "
            "Euro.",
            columns=["GasStationID", "Country", "Segment"],
        )

    specs.append(
        _spec(
            "aggregation-k05",
            "debit_card_specializing",
            "knowledge",
            "Summarize the gas stations in countries that use the Euro.",
            pipe_ak5,
            entities=lambda d: _countries_present(
                d, oracle.euro_countries()
            ),
            source=lambda d: _country_station_rows(
                d, oracle.euro_countries()
            ),
        )
    )

    def pipe_ak6(ctx: PipelineContext):
        in_eu = pipelines.filter_countries(
            ctx,
            ctx.frame("gasstations"),
            "is a member of the European Union",
        )
        return ctx.ops.sem_agg(
            in_eu,
            "Provide an overview of gas stations in countries in the "
            "European Union.",
            columns=["GasStationID", "Country", "Segment"],
        )

    specs.append(
        _spec(
            "aggregation-k06",
            "debit_card_specializing",
            "knowledge",
            "Provide an overview of gas stations in countries in the "
            "European Union.",
            pipe_ak6,
            entities=lambda d: _countries_present(
                d, oracle.eu_countries()
            ),
            source=lambda d: _country_station_rows(
                d, oracle.eu_countries()
            ),
        )
    )

    def pipe_ak7(ctx: PipelineContext):
        taller = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Stephen Curry", "taller"
        )
        joined = merge(
            taller,
            ctx.frame("Player_Attributes"),
            left_on="player_api_id",
            right_on="player_api_id",
        )
        return ctx.ops.sem_agg(
            joined,
            "Summarize the attributes of players taller than Stephen "
            "Curry.",
            columns=[
                "player_name", "height", "overall_rating", "volleys",
                "sprint_speed",
            ],
        )

    def _tall_player_rows(d: Dataset) -> list[dict]:
        players = d.frame("Player")
        threshold = oracle.person_height("Stephen Curry")
        tall = players[players["height"] > threshold]
        return merge(
            tall,
            d.frame("Player_Attributes"),
            left_on="player_api_id",
            right_on="player_api_id",
        ).to_records()

    def _tall_player_entities(d: Dataset) -> list[str]:
        heights = [r["height"] for r in _tall_player_rows(d)]
        # A complete summary reports the extremes of the height range.
        return [str(min(heights)), str(max(heights))]

    specs.append(
        _spec(
            "aggregation-k07",
            "european_football_2",
            "knowledge",
            "Summarize the attributes of players taller than Stephen "
            "Curry.",
            pipe_ak7,
            entities=_tall_player_entities,
            source=_tall_player_rows,
        )
    )

    def pipe_ak8(ctx: PipelineContext):
        uk = pipelines.filter_uk_leagues(ctx, ctx.frame("League"))
        joined = merge(
            uk, ctx.frame("Team"), left_on="id", right_on="league_id"
        )
        return ctx.ops.sem_agg(
            joined,
            "Provide an overview of the football leagues in the "
            "United Kingdom.",
            columns=["name", "team_long_name"],
        )

    def _uk_league_rows(d: Dataset) -> list[dict]:
        leagues = d.frame("League")
        uk = leagues[leagues["name"].isin(oracle.uk_leagues())]
        return merge(
            uk, d.frame("Team"), left_on="id", right_on="league_id"
        ).to_records()

    specs.append(
        _spec(
            "aggregation-k08",
            "european_football_2",
            "knowledge",
            "Provide an overview of the football leagues in the United "
            "Kingdom.",
            pipe_ak8,
            entities=lambda d: sorted(
                {str(r["name"]) for r in _uk_league_rows(d)}
            ),
            source=_uk_league_rows,
        )
    )

    def pipe_ak9(ctx: PipelineContext):
        chosen = pipelines.filter_circuits_in_region(
            ctx, ctx.frame("circuits"), "southeast asia"
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            chosen, races, left_on="circuitId", right_on="circuitId"
        )
        return ctx.ops.sem_agg(
            joined,
            "Summarize the race history of circuits located in "
            "Southeast Asia.",
            columns=["name", "year", "race_name"],
        )

    specs.append(
        _spec(
            "aggregation-k09",
            "formula_1",
            "knowledge",
            "Summarize the race history of circuits located in "
            "Southeast Asia.",
            pipe_ak9,
            entities=lambda d: sorted(
                oracle.circuits_in_region("southeast asia")
            ),
            source=lambda d: _circuit_race_rows(
                d, oracle.circuits_in_region("southeast asia")
            ),
        )
    )

    def pipe_ak10(ctx: PipelineContext):
        schools = ctx.frame("schools")
        charters = schools[schools["Charter"] == 1]
        bay = pipelines.filter_by_region(ctx, charters, "Bay Area")
        return ctx.ops.sem_agg(
            bay,
            "Provide information about charter schools in the Bay "
            "Area.",
            columns=["School", "City", "County", "GSoffered"],
        )

    def _bay_charter_rows(d: Dataset) -> list[dict]:
        schools = d.frame("schools")
        charters = schools[schools["Charter"] == 1]
        return oracle.filter_by_region(charters, "bay area").to_records()

    specs.append(
        _spec(
            "aggregation-k10",
            "california_schools",
            "knowledge",
            "Provide information about charter schools in the Bay Area.",
            pipe_ak10,
            entities=lambda d: sorted(
                {str(r["City"]) for r in _bay_charter_rows(d)}
            ),
            source=_bay_charter_rows,
        )
    )
    return specs


# ---------------------------------------------------------------------------
# reasoning
# ---------------------------------------------------------------------------


def _reasoning() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def add(qid: str, question: str, pipeline, entities, source) -> None:
        specs.append(
            _spec(
                qid,
                "codebase_community",
                "reasoning",
                question,
                pipeline,
                entities,
                source,
            )
        )

    def pipe_ar1(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _GENTLE_POST)
        return ctx.ops.sem_agg(
            comments,
            "Summarize the comments made on the post titled "
            f"'{_GENTLE_POST}' to answer the original question.",
            columns=["Text"],
        )

    add(
        "aggregation-r01",
        "Summarize the comments made on the post titled "
        f"'{_GENTLE_POST}' to answer the original question.",
        pipe_ar1,
        entities=lambda d: _comment_prefixes(_comment_rows(d, _GENTLE_POST)),
        source=lambda d: _comment_rows(d, _GENTLE_POST),
    )

    def pipe_ar2(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _KERNEL_POST)
        positive = pipelines.filter_positive(ctx, comments)
        return ctx.ops.sem_agg(
            positive,
            "Summarize the positive comments on the post titled "
            f"'{_KERNEL_POST}'.",
            columns=["Text"],
        )

    add(
        "aggregation-r02",
        "Summarize the positive comments on the post titled "
        f"'{_KERNEL_POST}'.",
        pipe_ar2,
        entities=lambda d: _comment_prefixes([r for r in _comment_rows(d, _KERNEL_POST) if oracle.is_positive(str(r['Text']))]),
        source=lambda d: [r for r in _comment_rows(d, _KERNEL_POST) if oracle.is_positive(str(r['Text']))],
    )

    def pipe_ar3(ctx: PipelineContext):
        sarcastic = pipelines.filter_sarcastic(
            ctx, ctx.frame("comments")
        )
        return ctx.ops.sem_agg(
            sarcastic,
            "Summarize the sarcastic comments across all posts.",
            columns=["Text"],
        )

    add(
        "aggregation-r03",
        "Summarize the sarcastic comments across all posts.",
        pipe_ar3,
        entities=lambda d: _comment_prefixes([r for r in d.frame('comments').to_records() if oracle.is_sarcastic(str(r['Text']))]),
        source=lambda d: [r for r in d.frame('comments').to_records() if oracle.is_sarcastic(str(r['Text']))],
    )

    def pipe_ar4(ctx: PipelineContext):
        top = pipelines.topk_technical(ctx, ctx.frame("posts"), 5)
        return ctx.ops.sem_agg(
            top,
            "Summarize the titles of the 5 most technical posts.",
            columns=["Title"],
        )

    add(
        "aggregation-r04",
        "Summarize the titles of the 5 most technical posts.",
        pipe_ar4,
        entities=lambda d: _top_technical_titles(d, 5),
        source=lambda d: [r for r in d.frame('posts').to_records() if str(r['Title']) in set(_top_technical_titles(d, 5))],
    )

    def pipe_ar5(ctx: PipelineContext):
        top = _top_posts(ctx.frame("posts"), 1)
        comments = merge(
            top[["Id"]],
            ctx.frame("comments"),
            left_on="Id",
            right_on="PostId",
        )
        return ctx.ops.sem_agg(
            comments,
            "Summarize the comments made on the post with the highest "
            "view count.",
            columns=["Text"],
        )

    add(
        "aggregation-r05",
        "Summarize the comments made on the post with the highest "
        "view count.",
        pipe_ar5,
        entities=lambda d: _comment_prefixes(_top_post_comment_rows(d)),
        source=lambda d: _top_post_comment_rows(d),
    )

    def pipe_ar6(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(
            ctx, _BACKPROP_POST
        )
        negative = pipelines.filter_negative(ctx, comments)
        return ctx.ops.sem_agg(
            negative,
            "Summarize the negative comments on the post titled "
            f"'{_BACKPROP_POST}'.",
            columns=["Text"],
        )

    add(
        "aggregation-r06",
        "Summarize the negative comments on the post titled "
        f"'{_BACKPROP_POST}'.",
        pipe_ar6,
        entities=lambda d: _comment_prefixes([r for r in _comment_rows(d, _BACKPROP_POST) if oracle.is_negative(str(r['Text']))]),
        source=lambda d: [r for r in _comment_rows(d, _BACKPROP_POST) if oracle.is_negative(str(r['Text']))],
    )

    def pipe_ar7(ctx: PipelineContext):
        top3 = _top_posts(ctx.frame("posts"), 3)
        comments = merge(
            top3[["Id"]],
            ctx.frame("comments"),
            left_on="Id",
            right_on="PostId",
        )
        return ctx.ops.sem_agg(
            comments,
            "Summarize the comments on the 3 posts with the highest "
            "view count.",
            columns=["PostId", "Text"],
        )

    add(
        "aggregation-r07",
        "Summarize the comments on the 3 posts with the highest view "
        "count.",
        pipe_ar7,
        entities=lambda d: _comment_prefixes(_top_post_comment_rows(d, 3)),
        source=lambda d: _top_post_comment_rows(d, 3),
    )

    def pipe_ar8(ctx: PipelineContext):
        posts = ctx.frame("posts")
        technical = pipelines.filter_technical_titles(ctx, posts)
        technical_titles = set(technical["Title"].tolist())
        non_technical = posts.filter_mask(
            [
                title not in technical_titles
                for title in posts["Title"].tolist()
            ]
        )
        return ctx.ops.sem_agg(
            non_technical,
            "Summarize the titles of the posts that are not technical.",
            columns=["Title"],
        )

    add(
        "aggregation-r08",
        "Summarize the titles of the posts that are not technical.",
        pipe_ar8,
        entities=lambda d: [str(r['Title']) for r in d.frame('posts').to_records() if not oracle.is_technical(str(r['Title']))],
        source=lambda d: [r for r in d.frame('posts').to_records() if not oracle.is_technical(str(r['Title']))],
    )

    def pipe_ar9(ctx: PipelineContext):
        comments = ctx.frame("comments")
        high = comments[comments["Score"] > 20]
        return ctx.ops.sem_agg(
            high,
            "Summarize the comments with a score over 20.",
            columns=["Text", "Score"],
        )

    add(
        "aggregation-r09",
        "Summarize the comments with a score over 20.",
        pipe_ar9,
        entities=lambda d: _comment_prefixes([r for r in d.frame('comments').to_records() if r['Score'] > 20]),
        source=lambda d: [r for r in d.frame('comments').to_records() if r['Score'] > 20],
    )

    def pipe_ar10(ctx: PipelineContext):
        top = _top_posts(ctx.frame("posts"), 1)
        comments = merge(
            top[["Id"]],
            ctx.frame("comments"),
            left_on="Id",
            right_on="PostId",
        )
        positive = pipelines.filter_positive(ctx, comments)
        return ctx.ops.sem_agg(
            positive,
            "Summarize the positive comments on the post with the "
            "highest view count.",
            columns=["Text"],
        )

    add(
        "aggregation-r10",
        "Summarize the positive comments on the post with the highest "
        "view count.",
        pipe_ar10,
        entities=lambda d: _comment_prefixes([r for r in _top_post_comment_rows(d) if oracle.is_positive(str(r['Text']))]),
        source=lambda d: [r for r in _top_post_comment_rows(d) if oracle.is_positive(str(r['Text']))],
    )
    return specs
