"""Match-based queries: point lookups requiring knowledge or reasoning.

10 knowledge + 10 reasoning queries.  Each spec carries a gold oracle
(canonical knowledge + noise-free scorers) and a hand-written TAG
pipeline (frames + semantic operators).
"""

from __future__ import annotations

from repro.bench import oracle, pipelines
from repro.bench.queries import PipelineContext, QuerySpec
from repro.data.base import Dataset
from repro.frame import DataFrame, merge
from repro.text.sarcasm import sarcasm_score
from repro.text.sentiment import sentiment_score
from repro.text.technicality import technicality_score


def build() -> list[QuerySpec]:
    """The 20 match-based queries (10 knowledge + 10 reasoning)."""
    return _knowledge() + _reasoning()


# ---------------------------------------------------------------------------
# shared gold/pipeline building blocks
# ---------------------------------------------------------------------------


def _schools_sat(dataset: Dataset) -> DataFrame:
    return merge(
        dataset.frame("schools"),
        dataset.frame("satscores"),
        left_on="CDSCode",
        right_on="cds",
    )


def _ctx_schools_sat(ctx: PipelineContext) -> DataFrame:
    return merge(
        ctx.frame("schools"),
        ctx.frame("satscores"),
        left_on="CDSCode",
        right_on="cds",
    )


def _top_posts(posts: DataFrame, count: int) -> DataFrame:
    return posts.sort_values("ViewCount", ascending=False).head(count)


def _argmax_text(frame: DataFrame, text_column: str, scorer) -> int:
    """Row index of the text with the maximal oracle score."""
    best_index = 0
    best_score = float("-inf")
    for index, record in frame.iterrows():
        score = scorer(str(record[text_column]))
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


def _argmin_text(frame: DataFrame, text_column: str, scorer) -> int:
    best_index = 0
    best_score = float("inf")
    for index, record in frame.iterrows():
        score = scorer(str(record[text_column]))
        if score < best_score:
            best_score = score
            best_index = index
    return best_index


# ---------------------------------------------------------------------------
# knowledge
# ---------------------------------------------------------------------------


def _knowledge() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def gold_mk1(dataset: Dataset) -> list:
        schools = oracle.filter_by_region(
            dataset.frame("schools"), "silicon valley"
        )
        top = schools.sort_values(
            "Longitude", ascending=False, key=abs
        ).head(1)
        return [top["GSoffered"][0]]

    def pipe_mk1(ctx: PipelineContext):
        schools = pipelines.filter_by_region(
            ctx, ctx.frame("schools"), "Silicon Valley"
        )
        top = schools.sort_values(
            "Longitude", ascending=False, key=abs
        ).head(1)
        return top["GSoffered"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k01",
            domain="california_schools",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the grade span offered in the school with the "
                "highest longitude in cities that are part of the "
                "'Silicon Valley' region?"
            ),
            gold=gold_mk1,
            pipeline=pipe_mk1,
        )
    )

    def gold_mk2(dataset: Dataset) -> list:
        joined = oracle.filter_by_region(
            _schools_sat(dataset), "bay area"
        )
        top = joined.sort_values("AvgScrMath", ascending=False).head(1)
        return [top["School"][0]]

    def pipe_mk2(ctx: PipelineContext):
        joined = pipelines.filter_by_region(
            ctx, _ctx_schools_sat(ctx), "Bay Area"
        )
        top = joined.sort_values("AvgScrMath", ascending=False).head(1)
        return top["School"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k02",
            domain="california_schools",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the name of the school with the highest average "
                "score in Math among schools in the Bay Area?"
            ),
            gold=gold_mk2,
            pipeline=pipe_mk2,
        )
    )

    def gold_mk3(dataset: Dataset) -> list:
        schools = oracle.filter_by_region(
            dataset.frame("schools"), "bay area"
        )
        bottom = schools.sort_values("Latitude", ascending=True).head(1)
        return [bottom["County"][0]]

    def pipe_mk3(ctx: PipelineContext):
        schools = pipelines.filter_by_region(
            ctx, ctx.frame("schools"), "Bay Area"
        )
        bottom = schools.sort_values("Latitude", ascending=True).head(1)
        return bottom["County"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k03",
            domain="california_schools",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the county of the school with the lowest "
                "latitude among schools in the Bay Area?"
            ),
            gold=gold_mk3,
            pipeline=pipe_mk3,
        )
    )

    def gold_mk4(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        street = circuits[
            circuits["name"].isin(oracle.street_circuits())
        ]
        races = dataset.frame("races")
        counts = {
            record["circuitId"]: 0 for _, record in street.iterrows()
        }
        for _, race in races.iterrows():
            if race["circuitId"] in counts:
                counts[race["circuitId"]] += 1
        fewest = min(
            counts, key=lambda circuit_id: (counts[circuit_id], circuit_id)
        )
        row = circuits[circuits["circuitId"] == fewest]
        return [row["location"][0]]

    def pipe_mk4(ctx: PipelineContext):
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            street, races, left_on="circuitId", right_on="circuitId"
        )
        counts = joined.groupby("circuitId").agg(
            n=("raceId", "count"), location=("location", "first")
        )
        counts = counts.sort_values(
            ["n", "circuitId"], ascending=[True, True]
        ).head(1)
        return counts["location"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k04",
            domain="formula_1",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the location of the street circuit that hosted "
                "the fewest races?"
            ),
            gold=gold_mk4,
            pipeline=pipe_mk4,
        )
    )

    def gold_mk5(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        southeast = circuits[
            circuits["name"].isin(
                oracle.circuits_in_region("southeast asia")
            )
        ]
        races = dataset.frame("races")
        best_id, best_count = None, -1
        for _, circuit in southeast.iterrows():
            count = len(
                races[races["circuitId"] == circuit["circuitId"]]
            )
            if count > best_count:
                best_id, best_count = circuit["circuitId"], count
        years = races[races["circuitId"] == best_id]["year"].tolist()
        return [min(years)]

    def pipe_mk5(ctx: PipelineContext):
        southeast = pipelines.filter_circuits_in_region(
            ctx, ctx.frame("circuits"), "southeast asia"
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            southeast, races, left_on="circuitId", right_on="circuitId"
        )
        counts = joined.groupby("circuitId").agg(n=("raceId", "count"))
        top_circuit = counts.sort_values("n", ascending=False).head(1)
        circuit_id = top_circuit["circuitId"][0]
        years = joined[joined["circuitId"] == circuit_id]["year"]
        return [years.min()]

    specs.append(
        QuerySpec(
            qid="match-k05",
            domain="formula_1",
            query_type="match",
            capability="knowledge",
            question=(
                "In which year was the first race held at the circuit "
                "located in Southeast Asia that hosted the most races?"
            ),
            gold=gold_mk5,
            pipeline=pipe_mk5,
        )
    )

    def gold_mk6(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        chosen = circuits[
            circuits["name"].isin(
                oracle.street_circuits()
                & oracle.circuits_in_region("europe")
            )
        ]
        races = dataset.frame("races")
        ids = set(chosen["circuitId"].tolist())
        dates = [
            race["date"]
            for _, race in races.iterrows()
            if race["circuitId"] in ids
        ]
        return [min(dates)]

    def pipe_mk6(ctx: PipelineContext):
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        europe = pipelines.filter_circuits_in_region(
            ctx, street, "europe"
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            europe, races, left_on="circuitId", right_on="circuitId"
        )
        if joined.empty:
            return []
        return [joined["date"].min()]

    specs.append(
        QuerySpec(
            qid="match-k06",
            domain="formula_1",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the date of the earliest race held on a street "
                "circuit in Europe?"
            ),
            gold=gold_mk6,
            pipeline=pipe_mk6,
        )
    )

    def gold_mk7(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Stephen Curry")
        taller = players[players["height"] > threshold]
        shortest = taller.sort_values("height", ascending=True).head(1)
        return [shortest["birthday"][0]]

    def pipe_mk7(ctx: PipelineContext):
        taller = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Stephen Curry", "taller"
        )
        shortest = taller.sort_values("height", ascending=True).head(1)
        return shortest["birthday"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k07",
            domain="european_football_2",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the birthday of the shortest player who is "
                "taller than Stephen Curry?"
            ),
            gold=gold_mk7,
            pipeline=pipe_mk7,
        )
    )

    def gold_mk8(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Lionel Messi")
        shorter = players[players["height"] < threshold]
        tallest = shorter.sort_values("height", ascending=False).head(1)
        return [tallest["player_name"][0]]

    def pipe_mk8(ctx: PipelineContext):
        shorter = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Lionel Messi", "shorter"
        )
        tallest = shorter.sort_values("height", ascending=False).head(1)
        return tallest["player_name"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k08",
            domain="european_football_2",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the name of the tallest player who is shorter "
                "than Lionel Messi?"
            ),
            gold=gold_mk8,
            pipeline=pipe_mk8,
        )
    )

    def gold_mk9(dataset: Dataset) -> list:
        stations = dataset.frame("gasstations")
        euro = stations[
            stations["Country"].isin(oracle.euro_countries())
        ]
        transactions = dataset.frame("transactions_1k")
        counts: dict[int, int] = {
            record["GasStationID"]: 0 for _, record in euro.iterrows()
        }
        for _, transaction in transactions.iterrows():
            station = transaction["GasStationID"]
            if station in counts:
                counts[station] += 1
        best = max(
            counts, key=lambda station: (counts[station], -station)
        )
        row = euro[euro["GasStationID"] == best]
        return [row["Segment"][0]]

    def pipe_mk9(ctx: PipelineContext):
        euro = pipelines.filter_countries(
            ctx, ctx.frame("gasstations"), "uses the euro"
        )
        joined = merge(
            euro,
            ctx.frame("transactions_1k"),
            left_on="GasStationID",
            right_on="GasStationID",
        )
        counts = joined.groupby("GasStationID").agg(
            n=("TransactionID", "count"),
            segment=("Segment", "first"),
        )
        # Most transactions; break count ties on the smaller station id.
        counts = counts.sort_values(
            ["n", "GasStationID"], ascending=[False, True]
        ).head(1)
        return counts["segment"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k09",
            domain="debit_card_specializing",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the segment of the gas station with the most "
                "transactions among gas stations in countries that use "
                "the Euro?"
            ),
            gold=gold_mk9,
            pipeline=pipe_mk9,
        )
    )

    def gold_mk10(dataset: Dataset) -> list:
        leagues = dataset.frame("League")
        uk = leagues[leagues["name"].isin(oracle.uk_leagues())]
        teams = dataset.frame("Team")
        best_name, best_count = None, -1
        for _, league in uk.iterrows():
            count = len(teams[teams["league_id"] == league["id"]])
            if count > best_count:
                best_name, best_count = league["name"], count
        return [best_name]

    def pipe_mk10(ctx: PipelineContext):
        uk = pipelines.filter_uk_leagues(ctx, ctx.frame("League"))
        teams = ctx.frame("Team")
        joined = merge(
            uk, teams, left_on="id", right_on="league_id"
        )
        counts = joined.groupby("id").agg(
            n=("team_api_id", "count"), league=("name", "first")
        )
        top = counts.sort_values(
            ["n", "id"], ascending=[False, True]
        ).head(1)
        return top["league"].tolist()

    specs.append(
        QuerySpec(
            qid="match-k10",
            domain="european_football_2",
            query_type="match",
            capability="knowledge",
            question=(
                "What is the name of the league in the United Kingdom "
                "with the most teams?"
            ),
            gold=gold_mk10,
            pipeline=pipe_mk10,
        )
    )
    return specs


# ---------------------------------------------------------------------------
# reasoning
# ---------------------------------------------------------------------------


def _reasoning() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def add(
        qid: str,
        question: str,
        gold,
        pipeline,
        domain: str = "codebase_community",
    ) -> None:
        specs.append(
            QuerySpec(
                qid=qid,
                domain=domain,
                query_type="match",
                capability="reasoning",
                question=question,
                gold=gold,
                pipeline=pipeline,
            )
        )

    def gold_mr1(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        index = _argmax_text(posts, "Title", technicality_score)
        return [posts["Title"][index]]

    def pipe_mr1(ctx: PipelineContext):
        top = pipelines.topk_technical(ctx, ctx.frame("posts"), 1)
        return top["Title"].tolist()

    add(
        "match-r01",
        "What is the title of the most technical post?",
        gold_mr1,
        pipe_mr1,
    )

    _BIAS_POST = (
        "Deriving the bias-variance decomposition for ridge regression"
    )

    def gold_mr2(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _BIAS_POST)
        index = _argmax_text(comments, "Text", sarcasm_score)
        return [comments["Text"][index]]

    def pipe_mr2(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _BIAS_POST)
        top = pipelines.topk_sarcastic(ctx, comments, 1)
        return top["Text"].tolist()

    add(
        "match-r02",
        "What is the text of the most sarcastic comment on the post "
        f"titled '{_BIAS_POST}'?",
        gold_mr2,
        pipe_mr2,
    )

    _KERNEL_POST = "Kernel trick intuition for support vector machines"

    def gold_mr3(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _KERNEL_POST)
        index = _argmax_text(comments, "Text", sentiment_score)
        return [comments["Score"][index]]

    def pipe_mr3(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _KERNEL_POST)
        top = pipelines.topk_positive(ctx, comments, 1)
        return top["Score"].tolist()

    add(
        "match-r03",
        "What is the score of the most positive comment on the post "
        f"titled '{_KERNEL_POST}'?",
        gold_mr3,
        pipe_mr3,
    )

    def gold_mr4(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        index = _argmin_text(posts, "Title", technicality_score)
        return [posts["Title"][index]]

    def pipe_mr4(ctx: PipelineContext):
        posts = ctx.frame("posts")
        ordered = pipelines.topk_technical(ctx, posts, len(posts))
        # Least technical = the tail of a full technicality ordering.
        return [ordered["Title"].tolist()[-1]]

    add(
        "match-r04",
        "What is the title of the least technical post?",
        gold_mr4,
        pipe_mr4,
    )

    def gold_mr5(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        index = _argmax_text(posts, "Title", technicality_score)
        return [posts["ViewCount"][index]]

    def pipe_mr5(ctx: PipelineContext):
        top = pipelines.topk_technical(ctx, ctx.frame("posts"), 1)
        return top["ViewCount"].tolist()

    add(
        "match-r05",
        "What is the view count of the most technical post?",
        gold_mr5,
        pipe_mr5,
    )

    def gold_mr6(dataset: Dataset) -> list:
        top5 = _top_posts(dataset.frame("posts"), 5)
        index = _argmax_text(top5, "Title", technicality_score)
        return [top5["Title"][index]]

    def pipe_mr6(ctx: PipelineContext):
        top5 = _top_posts(ctx.frame("posts"), 5)
        best = pipelines.topk_technical(ctx, top5, 1)
        return best["Title"].tolist()

    add(
        "match-r06",
        "What is the title of the most technical post among the 5 "
        "posts with the highest view count?",
        gold_mr6,
        pipe_mr6,
    )

    def gold_mr7(dataset: Dataset) -> list:
        comments = _top_post_comments(dataset)
        index = _argmax_text(comments, "Text", sentiment_score)
        return [comments["Text"][index]]

    def pipe_mr7(ctx: PipelineContext):
        comments = _ctx_top_post_comments(ctx)
        top = pipelines.topk_positive(ctx, comments, 1)
        return top["Text"].tolist()

    add(
        "match-r07",
        "What is the text of the most positive comment on the post "
        "with the highest view count?",
        gold_mr7,
        pipe_mr7,
    )

    _BOOTSTRAP_POST = "Bootstrap confidence intervals for the median"

    def gold_mr8(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _BOOTSTRAP_POST)
        index = _argmin_text(comments, "Text", sentiment_score)
        return [comments["Text"][index]]

    def pipe_mr8(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(
            ctx, _BOOTSTRAP_POST
        )
        top = pipelines.topk_negative(ctx, comments, 1)
        return top["Text"].tolist()

    add(
        "match-r08",
        "What is the text of the most negative comment on the post "
        f"titled '{_BOOTSTRAP_POST}'?",
        gold_mr8,
        pipe_mr8,
    )

    def gold_mr9(dataset: Dataset) -> list:
        comments = _top_post_comments(dataset)
        index = _argmax_text(comments, "Text", sarcasm_score)
        user_id = comments["UserId"][index]
        users = dataset.frame("users")
        row = users[users["Id"] == user_id]
        return [row["DisplayName"][0]]

    def pipe_mr9(ctx: PipelineContext):
        comments = _ctx_top_post_comments(ctx)
        top = pipelines.topk_sarcastic(ctx, comments, 1)
        joined = merge(
            top, ctx.frame("users"), left_on="UserId", right_on="Id"
        )
        return joined["DisplayName"].tolist()

    add(
        "match-r09",
        "What is the display name of the user who wrote the most "
        "sarcastic comment on the post with the highest view count?",
        gold_mr9,
        pipe_mr9,
    )

    def gold_mr10(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        index = _argmax_text(posts, "Title", technicality_score)
        return [posts["CreationDate"][index]]

    def pipe_mr10(ctx: PipelineContext):
        top = pipelines.topk_technical(ctx, ctx.frame("posts"), 1)
        return top["CreationDate"].tolist()

    add(
        "match-r10",
        "What is the creation date of the most technical post?",
        gold_mr10,
        pipe_mr10,
    )
    return specs


# ---------------------------------------------------------------------------
# small shared lookups
# ---------------------------------------------------------------------------


def _post_comments(dataset: Dataset, title: str) -> DataFrame:
    posts = dataset.frame("posts")
    post = posts[posts["Title"] == title]
    return merge(
        post[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )


def _top_post_comments(dataset: Dataset) -> DataFrame:
    top = _top_posts(dataset.frame("posts"), 1)
    return merge(
        top[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )


def _ctx_top_post_comments(ctx: PipelineContext) -> DataFrame:
    top = _top_posts(ctx.frame("posts"), 1)
    return merge(
        top[["Id"]],
        ctx.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )
