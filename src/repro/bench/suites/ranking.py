"""Ranking queries: ordered lists under knowledge/reasoning criteria.

10 knowledge + 10 reasoning.  Exact match is order-sensitive, which is
why the paper finds ranking the hardest type even for hand-written TAG
("due to the higher difficulty in ordering items exactly", §4.3) — the
LM's graded judgments carry jitter on near-ties.
"""

from __future__ import annotations

from repro.bench import oracle, pipelines
from repro.bench.queries import PipelineContext, QuerySpec
from repro.bench.suites.match import _top_posts
from repro.data.base import Dataset
from repro.frame import DataFrame, merge
from repro.text.sarcasm import sarcasm_score
from repro.text.sentiment import sentiment_score
from repro.text.technicality import technicality_score


def build() -> list[QuerySpec]:
    """The 20 ranking queries (10 knowledge + 10 reasoning)."""
    return _knowledge() + _reasoning()


def _spec(
    qid: str,
    domain: str,
    capability: str,
    question: str,
    gold,
    pipeline,
) -> QuerySpec:
    return QuerySpec(
        qid=qid,
        domain=domain,
        query_type="ranking",
        capability=capability,
        question=question,
        gold=gold,
        pipeline=pipeline,
    )


def _ordered_texts(
    frame: DataFrame, column: str, scorer, descending: bool = True
) -> list[str]:
    scored = [
        (scorer(str(record[column])), index)
        for index, record in frame.iterrows()
    ]
    scored.sort(key=lambda pair: pair[0], reverse=descending)
    return [frame[column][index] for _, index in scored]


# ---------------------------------------------------------------------------
# knowledge
# ---------------------------------------------------------------------------


def _knowledge() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def gold_rk1(dataset: Dataset) -> list:
        joined = merge(
            dataset.frame("schools"),
            dataset.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = oracle.filter_by_region(joined, "bay area")
        top = joined.sort_values("AvgScrMath", ascending=False).head(3)
        return top["School"].tolist()

    def pipe_rk1(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = pipelines.filter_by_region(ctx, joined, "Bay Area")
        top = joined.sort_values("AvgScrMath", ascending=False).head(3)
        return top["School"].tolist()

    specs.append(
        _spec(
            "ranking-k01",
            "california_schools",
            "knowledge",
            "List the names of the 3 schools with the highest average "
            "score in Math among schools in the Bay Area.",
            gold_rk1,
            pipe_rk1,
        )
    )

    def gold_rk2(dataset: Dataset) -> list:
        joined = merge(
            dataset.frame("schools"),
            dataset.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = oracle.filter_by_region(joined, "bay area")
        top = joined.sort_values("NumTstTakr", ascending=False).head(3)
        return top["School"].tolist()

    def pipe_rk2(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = pipelines.filter_by_region(ctx, joined, "Bay Area")
        top = joined.sort_values("NumTstTakr", ascending=False).head(3)
        return top["School"].tolist()

    specs.append(
        _spec(
            "ranking-k02",
            "california_schools",
            "knowledge",
            "List the names of the 3 schools with the most test takers "
            "among schools in the Bay Area.",
            gold_rk2,
            pipe_rk2,
        )
    )

    def gold_rk3(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Stephen Curry")
        taller = players[players["height"] > threshold]
        top = taller.sort_values("height", ascending=False).head(3)
        return top["player_name"].tolist()

    def pipe_rk3(ctx: PipelineContext):
        taller = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Stephen Curry", "taller"
        )
        top = taller.sort_values("height", ascending=False).head(3)
        return top["player_name"].tolist()

    specs.append(
        _spec(
            "ranking-k03",
            "european_football_2",
            "knowledge",
            "List the names of the 3 tallest players who are taller "
            "than Stephen Curry.",
            gold_rk3,
            pipe_rk3,
        )
    )

    def gold_rk4(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Stephen Curry")
        taller = players[players["height"] > threshold]
        bottom = taller.sort_values("height", ascending=True).head(3)
        return bottom["player_name"].tolist()

    def pipe_rk4(ctx: PipelineContext):
        taller = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Stephen Curry", "taller"
        )
        bottom = taller.sort_values("height", ascending=True).head(3)
        return bottom["player_name"].tolist()

    specs.append(
        _spec(
            "ranking-k04",
            "european_football_2",
            "knowledge",
            "List the names of the 3 shortest players who are taller "
            "than Stephen Curry.",
            gold_rk4,
            pipe_rk4,
        )
    )

    def gold_rk5(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        street = circuits[
            circuits["name"].isin(oracle.street_circuits())
        ]
        races = dataset.frame("races")
        counts = []
        for _, circuit in street.iterrows():
            count = len(
                races[races["circuitId"] == circuit["circuitId"]]
            )
            counts.append((count, circuit["name"]))
        counts.sort(key=lambda pair: (pair[0], pair[1]))
        return [name for _, name in counts[:3]]

    def pipe_rk5(ctx: PipelineContext):
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        races = ctx.frame("races").rename(columns={"name": "race_name"})
        joined = merge(
            street, races, left_on="circuitId", right_on="circuitId"
        )
        counts = joined.groupby("name").agg(n=("raceId", "count"))
        ordered = counts.sort_values(
            ["n", "name"], ascending=[True, True]
        ).head(3)
        return ordered["name"].tolist()

    specs.append(
        _spec(
            "ranking-k05",
            "formula_1",
            "knowledge",
            "List the names of the 3 street circuits that hosted the "
            "fewest races.",
            gold_rk5,
            pipe_rk5,
        )
    )

    def gold_rk6(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        chosen = circuits[
            circuits["name"].isin(
                oracle.circuits_in_region("southeast asia")
            )
        ]
        ids = set(chosen["circuitId"].tolist())
        races = dataset.frame("races")
        years = sorted(
            {
                record["year"]
                for _, record in races.iterrows()
                if record["circuitId"] in ids
            },
            reverse=True,
        )
        return years[:3]

    def pipe_rk6(ctx: PipelineContext):
        chosen = pipelines.filter_circuits_in_region(
            ctx, ctx.frame("circuits"), "southeast asia"
        )
        ids = set(chosen["circuitId"].tolist())
        races = ctx.frame("races")
        in_region = races[races["circuitId"].isin(ids)]
        years = sorted(set(in_region["year"].tolist()), reverse=True)
        return years[:3]

    specs.append(
        _spec(
            "ranking-k06",
            "formula_1",
            "knowledge",
            "List the 3 most recent years in which races were held at "
            "circuits located in Southeast Asia.",
            gold_rk6,
            pipe_rk6,
        )
    )

    def gold_rk7(dataset: Dataset) -> list:
        stations = dataset.frame("gasstations")
        euro = stations[
            stations["Country"].isin(oracle.euro_countries())
        ]
        counts: dict[str, int] = {}
        for _, record in euro.iterrows():
            counts[record["Country"]] = (
                counts.get(record["Country"], 0) + 1
            )
        ordered = sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [country for country, _ in ordered]

    def pipe_rk7(ctx: PipelineContext):
        euro = pipelines.filter_countries(
            ctx, ctx.frame("gasstations"), "uses the euro"
        )
        counts = euro.groupby("Country").agg(
            n=("GasStationID", "count")
        )
        ordered = counts.sort_values(
            ["n", "Country"], ascending=[False, True]
        )
        return ordered["Country"].tolist()

    specs.append(
        _spec(
            "ranking-k07",
            "debit_card_specializing",
            "knowledge",
            "List the countries that use the Euro in order of number "
            "of gas stations from most to fewest.",
            gold_rk7,
            pipe_rk7,
        )
    )

    def gold_rk8(dataset: Dataset) -> list:
        currency = oracle.oracle_kb().value("currency", "Germany")
        customers = dataset.frame("customers")
        chosen = customers[customers["Currency"] == currency]
        yearmonth = dataset.frame("yearmonth")
        totals: dict[int, float] = {}
        ids = set(chosen["CustomerID"].tolist())
        for _, record in yearmonth.iterrows():
            if record["CustomerID"] in ids:
                totals[record["CustomerID"]] = (
                    totals.get(record["CustomerID"], 0.0)
                    + record["Consumption"]
                )
        ordered = sorted(
            totals.items(), key=lambda item: (-item[1], item[0])
        )
        return [customer_id for customer_id, _ in ordered[:3]]

    def pipe_rk8(ctx: PipelineContext):
        customers = ctx.frame("customers")
        currencies = DataFrame(
            {"Currency": customers["Currency"].unique()}
        )
        kept = ctx.ops.sem_filter(
            currencies, "{Currency} is the currency of Germany"
        )
        chosen = customers[
            customers["Currency"].isin(kept["Currency"].tolist())
        ]
        joined = merge(
            chosen,
            ctx.frame("yearmonth"),
            left_on="CustomerID",
            right_on="CustomerID",
        )
        totals = joined.groupby("CustomerID").agg(
            total=("Consumption", "sum")
        )
        top = totals.sort_values(
            ["total", "CustomerID"], ascending=[False, True]
        ).head(3)
        return top["CustomerID"].tolist()

    specs.append(
        _spec(
            "ranking-k08",
            "debit_card_specializing",
            "knowledge",
            "List the IDs of the 3 customers with the highest total "
            "consumption among customers paying in the currency of "
            "Germany.",
            gold_rk8,
            pipe_rk8,
        )
    )

    def gold_rk9(dataset: Dataset) -> list:
        leagues = dataset.frame("League")
        uk = leagues[leagues["name"].isin(oracle.uk_leagues())]
        teams = dataset.frame("Team")
        counts = []
        for _, league in uk.iterrows():
            count = len(teams[teams["league_id"] == league["id"]])
            counts.append((count, league["name"]))
        counts.sort(key=lambda pair: (-pair[0], pair[1]))
        return [name for _, name in counts]

    def pipe_rk9(ctx: PipelineContext):
        uk = pipelines.filter_uk_leagues(ctx, ctx.frame("League"))
        joined = merge(
            uk, ctx.frame("Team"), left_on="id", right_on="league_id"
        )
        counts = joined.groupby("name").agg(n=("team_api_id", "count"))
        ordered = counts.sort_values(
            ["n", "name"], ascending=[False, True]
        )
        return ordered["name"].tolist()

    specs.append(
        _spec(
            "ranking-k09",
            "european_football_2",
            "knowledge",
            "List the names of the leagues in the United Kingdom in "
            "order of number of teams from most to fewest.",
            gold_rk9,
            pipe_rk9,
        )
    )

    def gold_rk10(dataset: Dataset) -> list:
        joined = merge(
            dataset.frame("schools"),
            dataset.frame("frpm"),
            left_on="CDSCode",
            right_on="CDSCode",
        )
        joined = oracle.filter_by_region(joined, "silicon valley")
        bottom = joined.sort_values("Enrollment", ascending=True).head(3)
        return bottom["County"].tolist()

    def pipe_rk10(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("frpm"),
            left_on="CDSCode",
            right_on="CDSCode",
        )
        joined = pipelines.filter_by_region(
            ctx, joined, "Silicon Valley"
        )
        bottom = joined.sort_values("Enrollment", ascending=True).head(3)
        return bottom["County"].tolist()

    specs.append(
        _spec(
            "ranking-k10",
            "california_schools",
            "knowledge",
            "List the counties of the 3 schools with the lowest "
            "enrollment among schools in the Silicon Valley region.",
            gold_rk10,
            pipe_rk10,
        )
    )
    return specs


# ---------------------------------------------------------------------------
# reasoning
# ---------------------------------------------------------------------------

_GENTLE_POST = "How does gentle boosting differ from AdaBoost?"
_L1_POST = "Regularization paths for L1-penalized logistic regression"
_SGD_POST = "Why does SGD with momentum escape saddle points faster?"


def _reasoning() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def add(qid: str, question: str, gold, pipeline) -> None:
        specs.append(
            _spec(
                qid, "codebase_community", "reasoning", question, gold,
                pipeline,
            )
        )

    def gold_rr1(dataset: Dataset) -> list:
        top5 = _top_posts(dataset.frame("posts"), 5)
        return _ordered_texts(top5, "Title", technicality_score)

    def pipe_rr1(ctx: PipelineContext):
        top5 = _top_posts(ctx.frame("posts"), 5)
        ordered = pipelines.topk_technical(ctx, top5, 5)
        return ordered["Title"].tolist()

    add(
        "ranking-r01",
        "Of the 5 posts with the highest popularity, list their titles "
        "in order of most technical to least technical.",
        gold_rr1,
        pipe_rr1,
    )

    def gold_rr2(dataset: Dataset) -> list:
        comments = _dataset_top_post_comments(dataset)
        return _ordered_texts(comments, "Text", sarcasm_score)[:3]

    def pipe_rr2(ctx: PipelineContext):
        comments = _context_top_post_comments(ctx)
        top = pipelines.topk_sarcastic(ctx, comments, 3)
        return top["Text"].tolist()

    add(
        "ranking-r02",
        "List the texts of the 3 most sarcastic comments on the post "
        "with the highest view count.",
        gold_rr2,
        pipe_rr2,
    )

    def gold_rr3(dataset: Dataset) -> list:
        top3 = _top_posts(dataset.frame("posts"), 3)
        return _ordered_texts(
            top3, "Title", technicality_score, descending=False
        )

    def pipe_rr3(ctx: PipelineContext):
        top3 = _top_posts(ctx.frame("posts"), 3)
        ordered = pipelines.topk_technical(ctx, top3, 3)
        return list(reversed(ordered["Title"].tolist()))

    add(
        "ranking-r03",
        "List the titles of the 3 posts with the highest view count "
        "in order of least technical to most technical.",
        gold_rr3,
        pipe_rr3,
    )

    def gold_rr4(dataset: Dataset) -> list:
        comments = _dataset_post_comments(dataset, _GENTLE_POST)
        return _ordered_texts(comments, "Text", sentiment_score)[:3]

    def pipe_rr4(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _GENTLE_POST)
        top = pipelines.topk_positive(ctx, comments, 3)
        return top["Text"].tolist()

    add(
        "ranking-r04",
        "List the texts of the 3 most positive comments on the post "
        f"titled '{_GENTLE_POST}'.",
        gold_rr4,
        pipe_rr4,
    )

    def gold_rr5(dataset: Dataset) -> list:
        top10 = _top_posts(dataset.frame("posts"), 10)
        return _ordered_texts(top10, "Title", technicality_score)[:3]

    def pipe_rr5(ctx: PipelineContext):
        top10 = _top_posts(ctx.frame("posts"), 10)
        best = pipelines.topk_technical(ctx, top10, 3)
        return best["Title"].tolist()

    add(
        "ranking-r05",
        "Of the 10 posts with the highest view count, list the titles "
        "of the 3 most technical.",
        gold_rr5,
        pipe_rr5,
    )

    def gold_rr6(dataset: Dataset) -> list:
        comments = _dataset_post_comments(dataset, _L1_POST)
        return _ordered_texts(
            comments, "Text", lambda text: -sentiment_score(text)
        )[:3]

    def pipe_rr6(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _L1_POST)
        top = pipelines.topk_negative(ctx, comments, 3)
        return top["Text"].tolist()

    add(
        "ranking-r06",
        "List the texts of the 3 most negative comments on the post "
        f"titled '{_L1_POST}'.",
        gold_rr6,
        pipe_rr6,
    )

    def gold_rr7(dataset: Dataset) -> list:
        bottom5 = (
            dataset.frame("posts")
            .sort_values("ViewCount", ascending=True)
            .head(5)
        )
        return _ordered_texts(bottom5, "Title", technicality_score)

    def pipe_rr7(ctx: PipelineContext):
        bottom5 = (
            ctx.frame("posts")
            .sort_values("ViewCount", ascending=True)
            .head(5)
        )
        ordered = pipelines.topk_technical(ctx, bottom5, 5)
        return ordered["Title"].tolist()

    add(
        "ranking-r07",
        "Order the titles of the 5 posts with the lowest view count "
        "from most technical to least technical.",
        gold_rr7,
        pipe_rr7,
    )

    def gold_rr8(dataset: Dataset) -> list:
        comments = _dataset_post_comments(dataset, _SGD_POST)
        users = dataset.frame("users")
        ordered_indices = sorted(
            range(len(comments)),
            key=lambda index: sarcasm_score(
                str(comments["Text"][index])
            ),
            reverse=True,
        )[:2]
        names = []
        for index in ordered_indices:
            user_id = comments["UserId"][index]
            row = users[users["Id"] == user_id]
            names.append(row["DisplayName"][0])
        return names

    def pipe_rr8(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _SGD_POST)
        top = pipelines.topk_sarcastic(ctx, comments, 2)
        joined = merge(
            top, ctx.frame("users"), left_on="UserId", right_on="Id"
        )
        return joined["DisplayName"].tolist()

    add(
        "ranking-r08",
        "List the display names of the users who wrote the 2 most "
        f"sarcastic comments on the post titled '{_SGD_POST}'.",
        gold_rr8,
        pipe_rr8,
    )

    def gold_rr9(dataset: Dataset) -> list:
        comments = _dataset_top_post_comments(dataset)
        return _ordered_texts(comments, "Text", sentiment_score)[:2]

    def pipe_rr9(ctx: PipelineContext):
        comments = _context_top_post_comments(ctx)
        top = pipelines.topk_positive(ctx, comments, 2)
        return top["Text"].tolist()

    add(
        "ranking-r09",
        "List the texts of the 2 most positive comments on the post "
        "with the highest view count.",
        gold_rr9,
        pipe_rr9,
    )

    def gold_rr10(dataset: Dataset) -> list:
        top5 = _top_posts(dataset.frame("posts"), 5)
        return _ordered_texts(
            top5, "Title", technicality_score, descending=False
        )

    def pipe_rr10(ctx: PipelineContext):
        top5 = _top_posts(ctx.frame("posts"), 5)
        ordered = pipelines.topk_technical(ctx, top5, 5)
        return list(reversed(ordered["Title"].tolist()))

    add(
        "ranking-r10",
        "Of the 5 posts with the highest popularity, list their titles "
        "in order of least technical to most technical.",
        gold_rr10,
        pipe_rr10,
    )
    return specs


def _dataset_post_comments(dataset: Dataset, title: str) -> DataFrame:
    posts = dataset.frame("posts")
    post = posts[posts["Title"] == title]
    return merge(
        post[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )


def _dataset_top_post_comments(dataset: Dataset) -> DataFrame:
    top = _top_posts(dataset.frame("posts"), 1)
    return merge(
        top[["Id"]],
        dataset.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )


def _context_top_post_comments(ctx: PipelineContext) -> DataFrame:
    top = _top_posts(ctx.frame("posts"), 1)
    return merge(
        top[["Id"]],
        ctx.frame("comments"),
        left_on="Id",
        right_on="PostId",
    )
