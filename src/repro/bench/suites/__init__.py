"""The four query-type suites that make up TAG-Bench."""

from repro.bench.suites import aggregation, comparison, match, ranking

__all__ = ["aggregation", "comparison", "match", "ranking"]
