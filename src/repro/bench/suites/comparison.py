"""Comparison queries: counting under knowledge/reasoning predicates.

10 knowledge + 10 reasoning queries; every gold answer is a single
count, so exact match requires the method to get the *entire* predicate
right — the regime where RAG's 10-row retrieval and the LM's long-
context arithmetic both collapse, per the paper.
"""

from __future__ import annotations

from repro.bench import oracle, pipelines
from repro.bench.queries import PipelineContext, QuerySpec
from repro.bench.suites.match import (
    _ctx_top_post_comments,
    _post_comments,
    _top_post_comments,
    _top_posts,
)
from repro.data.base import Dataset
from repro.frame import merge


def build() -> list[QuerySpec]:
    """The 20 comparison queries (10 knowledge + 10 reasoning)."""
    return _knowledge() + _reasoning()


def _spec(
    qid: str,
    domain: str,
    capability: str,
    question: str,
    gold,
    pipeline,
) -> QuerySpec:
    return QuerySpec(
        qid=qid,
        domain=domain,
        query_type="comparison",
        capability=capability,
        question=question,
        gold=gold,
        pipeline=pipeline,
    )


# ---------------------------------------------------------------------------
# knowledge
# ---------------------------------------------------------------------------


def _knowledge() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def gold_ck1(dataset: Dataset) -> list:
        players = merge(
            dataset.frame("Player"),
            dataset.frame("Player_Attributes"),
            left_on="player_api_id",
            right_on="player_api_id",
        )
        filtered = players[players["height"] > 180]
        filtered = filtered[filtered["volleys"] > 70]
        threshold = oracle.person_height("Stephen Curry")
        filtered = filtered[filtered["height"] > threshold]
        return [len(filtered)]

    def pipe_ck1(ctx: PipelineContext):
        players = pipelines.players_with_attributes(ctx)
        filtered = players[players["height"] > 180]
        filtered = filtered[filtered["volleys"] > 70]
        filtered = pipelines.filter_players_by_height(
            ctx, filtered, "Stephen Curry", "taller"
        )
        return [len(filtered)]

    specs.append(
        _spec(
            "comparison-k01",
            "european_football_2",
            "knowledge",
            "Among the players whose height is over 180, how many of "
            "them have a volley score of over 70 and are taller than "
            "Stephen Curry?",
            gold_ck1,
            pipe_ck1,
        )
    )

    def gold_ck2(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Lionel Messi")
        return [len(players[players["height"] < threshold])]

    def pipe_ck2(ctx: PipelineContext):
        shorter = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Lionel Messi", "shorter"
        )
        return [len(shorter)]

    specs.append(
        _spec(
            "comparison-k02",
            "european_football_2",
            "knowledge",
            "How many players are shorter than Lionel Messi?",
            gold_ck2,
            pipe_ck2,
        )
    )

    def gold_ck3(dataset: Dataset) -> list:
        players = dataset.frame("Player")
        threshold = oracle.person_height("Peter Crouch")
        return [len(players[players["height"] > threshold])]

    def pipe_ck3(ctx: PipelineContext):
        taller = pipelines.filter_players_by_height(
            ctx, ctx.frame("Player"), "Peter Crouch", "taller"
        )
        return [len(taller)]

    specs.append(
        _spec(
            "comparison-k03",
            "european_football_2",
            "knowledge",
            "How many players are taller than Peter Crouch?",
            gold_ck3,
            pipe_ck3,
        )
    )

    def gold_ck4(dataset: Dataset) -> list:
        joined = merge(
            dataset.frame("schools"),
            dataset.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = joined[joined["AvgScrMath"] > 560]
        joined = oracle.filter_by_region(joined, "bay area")
        return [len(joined)]

    def pipe_ck4(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = joined[joined["AvgScrMath"] > 560]
        joined = pipelines.filter_by_region(ctx, joined, "Bay Area")
        return [len(joined)]

    specs.append(
        _spec(
            "comparison-k04",
            "california_schools",
            "knowledge",
            "How many schools with an average score in Math over 560 "
            "are in the Bay Area?",
            gold_ck4,
            pipe_ck4,
        )
    )

    def gold_ck5(dataset: Dataset) -> list:
        schools = dataset.frame("schools")
        charters = schools[schools["Charter"] == 1]
        charters = oracle.filter_by_region(charters, "silicon valley")
        return [len(charters)]

    def pipe_ck5(ctx: PipelineContext):
        schools = ctx.frame("schools")
        charters = schools[schools["Charter"] == 1]
        charters = pipelines.filter_by_region(
            ctx, charters, "Silicon Valley"
        )
        return [len(charters)]

    specs.append(
        _spec(
            "comparison-k05",
            "california_schools",
            "knowledge",
            "How many charter schools are in cities in the Silicon "
            "Valley region?",
            gold_ck5,
            pipe_ck5,
        )
    )

    def gold_ck6(dataset: Dataset) -> list:
        joined = merge(
            dataset.frame("schools"),
            dataset.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = joined[joined["NumTstTakr"] > 500]
        joined = oracle.filter_by_region(joined, "bay area")
        return [len(joined)]

    def pipe_ck6(ctx: PipelineContext):
        joined = merge(
            ctx.frame("schools"),
            ctx.frame("satscores"),
            left_on="CDSCode",
            right_on="cds",
        )
        joined = joined[joined["NumTstTakr"] > 500]
        joined = pipelines.filter_by_region(ctx, joined, "Bay Area")
        return [len(joined)]

    specs.append(
        _spec(
            "comparison-k06",
            "california_schools",
            "knowledge",
            "How many schools in the Bay Area have more than 500 test "
            "takers?",
            gold_ck6,
            pipe_ck6,
        )
    )

    def gold_ck7(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        street = circuits[
            circuits["name"].isin(oracle.street_circuits())
        ]
        ids = set(street["circuitId"].tolist())
        races = dataset.frame("races")
        return [len(races[races["circuitId"].isin(ids)])]

    def pipe_ck7(ctx: PipelineContext):
        street = pipelines.filter_street_circuits(
            ctx, ctx.frame("circuits")
        )
        races = ctx.frame("races")
        ids = set(street["circuitId"].tolist())
        return [len(races[races["circuitId"].isin(ids)])]

    specs.append(
        _spec(
            "comparison-k07",
            "formula_1",
            "knowledge",
            "How many races were held on street circuits?",
            gold_ck7,
            pipe_ck7,
        )
    )

    def gold_ck8(dataset: Dataset) -> list:
        circuits = dataset.frame("circuits")
        chosen = circuits[
            circuits["name"].isin(
                oracle.circuits_in_region("southeast asia")
            )
        ]
        ids = set(chosen["circuitId"].tolist())
        races = dataset.frame("races")
        return [len(races[races["circuitId"].isin(ids)])]

    def pipe_ck8(ctx: PipelineContext):
        chosen = pipelines.filter_circuits_in_region(
            ctx, ctx.frame("circuits"), "southeast asia"
        )
        ids = set(chosen["circuitId"].tolist())
        races = ctx.frame("races")
        return [len(races[races["circuitId"].isin(ids)])]

    specs.append(
        _spec(
            "comparison-k08",
            "formula_1",
            "knowledge",
            "How many races were held at circuits located in Southeast "
            "Asia?",
            gold_ck8,
            pipe_ck8,
        )
    )

    def gold_ck9(dataset: Dataset) -> list:
        stations = dataset.frame("gasstations")
        return [
            len(stations[stations["Country"].isin(oracle.euro_countries())])
        ]

    def pipe_ck9(ctx: PipelineContext):
        euro = pipelines.filter_countries(
            ctx, ctx.frame("gasstations"), "uses the euro"
        )
        return [len(euro)]

    specs.append(
        _spec(
            "comparison-k09",
            "debit_card_specializing",
            "knowledge",
            "How many gas stations are in countries that use the Euro?",
            gold_ck9,
            pipe_ck9,
        )
    )

    def gold_ck10(dataset: Dataset) -> list:
        stations = dataset.frame("gasstations")
        return [
            len(stations[stations["Country"].isin(oracle.eu_countries())])
        ]

    def pipe_ck10(ctx: PipelineContext):
        in_eu = pipelines.filter_countries(
            ctx,
            ctx.frame("gasstations"),
            "is a member of the European Union",
        )
        return [len(in_eu)]

    specs.append(
        _spec(
            "comparison-k10",
            "debit_card_specializing",
            "knowledge",
            "How many gas stations are in countries that are in the "
            "European Union?",
            gold_ck10,
            pipe_ck10,
        )
    )
    return specs


# ---------------------------------------------------------------------------
# reasoning
# ---------------------------------------------------------------------------

_GENTLE_POST = "How does gentle boosting differ from AdaBoost?"
_KERNEL_POST = "Kernel trick intuition for support vector machines"
_BACKPROP_POST = "Backpropagation through a softmax-cross-entropy layer"
_BOOTSTRAP_POST = "Bootstrap confidence intervals for the median"


def _reasoning() -> list[QuerySpec]:
    specs: list[QuerySpec] = []

    def add(qid: str, question: str, gold, pipeline) -> None:
        specs.append(
            _spec(
                qid, "codebase_community", "reasoning", question, gold,
                pipeline,
            )
        )

    def gold_cr1(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _GENTLE_POST)
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_positive(str(record["Text"]))
            )
        ]

    def pipe_cr1(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _GENTLE_POST)
        positive = pipelines.filter_positive(ctx, comments)
        return [len(positive)]

    add(
        "comparison-r01",
        "How many comments on the post titled "
        f"'{_GENTLE_POST}' are positive?",
        gold_cr1,
        pipe_cr1,
    )

    def gold_cr2(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _KERNEL_POST)
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_sarcastic(str(record["Text"]))
            )
        ]

    def pipe_cr2(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(ctx, _KERNEL_POST)
        sarcastic = pipelines.filter_sarcastic(ctx, comments)
        return [len(sarcastic)]

    add(
        "comparison-r02",
        "How many comments on the post titled "
        f"'{_KERNEL_POST}' are sarcastic?",
        gold_cr2,
        pipe_cr2,
    )

    def gold_cr3(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        return [
            sum(
                1
                for _, record in posts.iterrows()
                if oracle.is_technical(str(record["Title"]))
            )
        ]

    def pipe_cr3(ctx: PipelineContext):
        technical = pipelines.filter_technical_titles(
            ctx, ctx.frame("posts")
        )
        return [len(technical)]

    add(
        "comparison-r03",
        "How many posts have a technical title?",
        gold_cr3,
        pipe_cr3,
    )

    def gold_cr4(dataset: Dataset) -> list:
        comments = _top_post_comments(dataset)
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_negative(str(record["Text"]))
            )
        ]

    def pipe_cr4(ctx: PipelineContext):
        comments = _ctx_top_post_comments(ctx)
        negative = pipelines.filter_negative(ctx, comments)
        return [len(negative)]

    add(
        "comparison-r04",
        "How many comments on the post with the highest view count "
        "are negative?",
        gold_cr4,
        pipe_cr4,
    )

    def gold_cr5(dataset: Dataset) -> list:
        posts = dataset.frame("posts")
        big = posts[posts["ViewCount"] > 20000]
        comments = merge(
            big[["Id"]],
            dataset.frame("comments"),
            left_on="Id",
            right_on="PostId",
        )
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_positive(str(record["Text"]))
            )
        ]

    def pipe_cr5(ctx: PipelineContext):
        posts = ctx.frame("posts")
        big = posts[posts["ViewCount"] > 20000]
        comments = merge(
            big[["Id"]],
            ctx.frame("comments"),
            left_on="Id",
            right_on="PostId",
        )
        positive = pipelines.filter_positive(ctx, comments)
        return [len(positive)]

    add(
        "comparison-r05",
        "How many comments on posts with a view count over 20000 are "
        "positive?",
        gold_cr5,
        pipe_cr5,
    )

    def gold_cr6(dataset: Dataset) -> list:
        top5 = _top_posts(dataset.frame("posts"), 5)
        return [
            sum(
                1
                for _, record in top5.iterrows()
                if oracle.is_technical(str(record["Title"]))
            )
        ]

    def pipe_cr6(ctx: PipelineContext):
        top5 = _top_posts(ctx.frame("posts"), 5)
        technical = pipelines.filter_technical_titles(ctx, top5)
        return [len(technical)]

    add(
        "comparison-r06",
        "How many of the 5 posts with the highest view count have "
        "technical titles?",
        gold_cr6,
        pipe_cr6,
    )

    def gold_cr7(dataset: Dataset) -> list:
        comments = dataset.frame("comments")
        high = comments[comments["Score"] > 20]
        return [
            sum(
                1
                for _, record in high.iterrows()
                if oracle.is_sarcastic(str(record["Text"]))
            )
        ]

    def pipe_cr7(ctx: PipelineContext):
        comments = ctx.frame("comments")
        high = comments[comments["Score"] > 20]
        sarcastic = pipelines.filter_sarcastic(ctx, high)
        return [len(sarcastic)]

    add(
        "comparison-r07",
        "How many comments with a score over 20 are sarcastic?",
        gold_cr7,
        pipe_cr7,
    )

    def gold_cr8(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _BACKPROP_POST)
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_negative(str(record["Text"]))
            )
        ]

    def pipe_cr8(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(
            ctx, _BACKPROP_POST
        )
        negative = pipelines.filter_negative(ctx, comments)
        return [len(negative)]

    add(
        "comparison-r08",
        "How many comments on the post titled "
        f"'{_BACKPROP_POST}' are negative?",
        gold_cr8,
        pipe_cr8,
    )

    def gold_cr9(dataset: Dataset) -> list:
        comments = _post_comments(dataset, _BOOTSTRAP_POST)
        return [
            sum(
                1
                for _, record in comments.iterrows()
                if oracle.is_positive(str(record["Text"]))
            )
        ]

    def pipe_cr9(ctx: PipelineContext):
        comments = pipelines.comments_for_post_title(
            ctx, _BOOTSTRAP_POST
        )
        positive = pipelines.filter_positive(ctx, comments)
        return [len(positive)]

    add(
        "comparison-r09",
        "How many comments on the post titled "
        f"'{_BOOTSTRAP_POST}' are positive?",
        gold_cr9,
        pipe_cr9,
    )

    def gold_cr10(dataset: Dataset) -> list:
        top10 = _top_posts(dataset.frame("posts"), 10)
        return [
            sum(
                1
                for _, record in top10.iterrows()
                if oracle.is_technical(str(record["Title"]))
            )
        ]

    def pipe_cr10(ctx: PipelineContext):
        top10 = _top_posts(ctx.frame("posts"), 10)
        technical = pipelines.filter_technical_titles(ctx, top10)
        return [len(technical)]

    add(
        "comparison-r10",
        "How many of the 10 posts with the highest view count have "
        "technical titles?",
        gold_cr10,
        pipe_cr10,
    )
    return specs
