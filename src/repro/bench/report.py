"""Render benchmark reports in the paper's table formats."""

from __future__ import annotations

from repro.bench.runner import BenchmarkReport

_TYPE_COLUMNS = [
    ("Overall", None),
    ("Match-based", "match"),
    ("Comparison", "comparison"),
    ("Ranking", "ranking"),
    ("Aggregation", "aggregation"),
]
_CAPABILITY_COLUMNS = [
    ("Knowledge", "knowledge"),
    ("Reasoning", "reasoning"),
]


def _format_accuracy(value: float | None) -> str:
    return "N/A" if value is None else f"{value:.2f}"


def _format_et(value: float | None) -> str:
    return "N/A" if value is None else f"{value:.2f}"


def table1_rows(report: BenchmarkReport) -> list[dict[str, object]]:
    """Table 1 data: per method, exact match + ET for each query type.

    "Overall" excludes aggregation from exact match (the paper's
    footnote) but includes it in ET.
    """
    rows = []
    for method in report.methods:
        row: dict[str, object] = {"method": method}
        for label, query_type in _TYPE_COLUMNS:
            row[f"{label} EM"] = report.accuracy(
                method, query_type=query_type
            )
            row[f"{label} ET"] = report.mean_et(
                method, query_type=query_type
            )
        rows.append(row)
    return rows


def table2_rows(report: BenchmarkReport) -> list[dict[str, object]]:
    """Table 2 data: per method, exact match + ET by capability."""
    rows = []
    for method in report.methods:
        row: dict[str, object] = {"method": method}
        for label, capability in _CAPABILITY_COLUMNS:
            row[f"{label} EM"] = report.accuracy(
                method, capability=capability
            )
            row[f"{label} ET"] = report.mean_et(
                method, capability=capability
            )
        rows.append(row)
    return rows


def _render(
    title: str,
    rows: list[dict[str, object]],
    columns: list[str],
) -> str:
    header = ["Method"] + columns
    table: list[list[str]] = [header]
    for row in rows:
        rendered = [str(row["method"])]
        for column in columns:
            value = row[column]
            if column.endswith("EM"):
                rendered.append(_format_accuracy(value))  # type: ignore[arg-type]
            else:
                rendered.append(_format_et(value))  # type: ignore[arg-type]
        table.append(rendered)
    widths = [
        max(len(line[position]) for line in table)
        for position in range(len(header))
    ]
    lines = [title]
    for line_number, line in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(line, widths)
            )
        )
        if line_number == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_table1(report: BenchmarkReport) -> str:
    """Render Table 1 as aligned text."""
    columns = []
    for label, _ in _TYPE_COLUMNS:
        columns.append(f"{label} EM")
        columns.append(f"{label} ET")
    return _render(
        "Table 1: exact match and execution time by query type",
        table1_rows(report),
        columns,
    )


def format_table2(report: BenchmarkReport) -> str:
    """Render Table 2 as aligned text."""
    columns = []
    for label, _ in _CAPABILITY_COLUMNS:
        columns.append(f"{label} EM")
        columns.append(f"{label} ET")
    return _render(
        "Table 2: exact match and execution time by capability",
        table2_rows(report),
        columns,
    )
