"""Assemble the full 80-query TAG-Bench suite."""

from __future__ import annotations

from repro.bench.queries import QuerySpec
from repro.bench.suites import aggregation, comparison, match, ranking
from repro.errors import BenchmarkError


def build_suite() -> list[QuerySpec]:
    """All 80 queries: 20 per type, 40 knowledge + 40 reasoning."""
    suite = (
        match.build()
        + comparison.build()
        + ranking.build()
        + aggregation.build()
    )
    _validate(suite)
    return suite


def _validate(suite: list[QuerySpec]) -> None:
    if len(suite) != 80:
        raise BenchmarkError(f"expected 80 queries, built {len(suite)}")
    seen: set[str] = set()
    for spec in suite:
        if spec.qid in seen:
            raise BenchmarkError(f"duplicate query id {spec.qid}")
        seen.add(spec.qid)
    by_type: dict[str, int] = {}
    by_capability: dict[str, int] = {}
    for spec in suite:
        by_type[spec.query_type] = by_type.get(spec.query_type, 0) + 1
        by_capability[spec.capability] = (
            by_capability.get(spec.capability, 0) + 1
        )
    if any(count != 20 for count in by_type.values()) or len(by_type) != 4:
        raise BenchmarkError(f"bad type balance: {by_type}")
    if by_capability != {"knowledge": 40, "reasoning": 40}:
        raise BenchmarkError(f"bad capability balance: {by_capability}")
