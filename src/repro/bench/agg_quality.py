"""Quantitative evaluation of aggregation answers.

The paper evaluates its 20 aggregation queries qualitatively and
explicitly "leave[s] quantitative analysis to future work" (§4.3).
This module is that future work: two reference-based metrics scored
against per-query oracles.

- **entity coverage** — the fraction of gold entities (the values a
  complete answer must mention: Sepang's 19 seasons, the UK league
  names, ...) that appear in the answer.  Figure 2's qualitative
  contrast, made a number.
- **numeric faithfulness** — the fraction of numbers asserted by the
  answer that actually occur in the query's source rows (or gold
  entities), catching hallucinated figures.  Small enumeration counts
  (1-30) are exempt, since "There are 19 records" style framing is not
  a data claim.
"""

from __future__ import annotations

import re

_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


def entity_coverage(answer: str, entities: list[str]) -> float:
    """Fraction of gold entities mentioned in the answer, in [0, 1]."""
    if not entities:
        raise ValueError("entity_coverage requires a non-empty gold set")
    text = answer.lower()
    hits = sum(1 for entity in entities if str(entity).lower() in text)
    return hits / len(entities)


def numeric_faithfulness(
    answer: str,
    source_values: set[str],
    max_framing_int: int = 30,
) -> float:
    """Fraction of the answer's numbers grounded in the source values.

    Numbers are compared textually after normalisation (so ``2257.8``
    grounds ``2257.8`` and ``2257.80``); integers up to
    ``max_framing_int`` are treated as framing ("3 records", "top 5")
    rather than data claims.  An answer with no data numbers is fully
    faithful (1.0).
    """
    normalized_sources = set()
    for value in source_values:
        for number in _NUMBER_RE.findall(str(value)):
            normalized_sources.add(_normalize_number(number))
    claims = []
    for number in _NUMBER_RE.findall(answer):
        normalized = _normalize_number(number)
        try:
            if (
                float(normalized).is_integer()
                and abs(int(float(normalized))) <= max_framing_int
            ):
                continue
        except ValueError:  # pragma: no cover
            pass
        claims.append(normalized)
    if not claims:
        return 1.0
    grounded = sum(
        1 for claim in claims if _grounded(claim, normalized_sources)
    )
    return grounded / len(claims)


def _normalize_number(text: str) -> str:
    value = float(text)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _grounded(claim: str, sources: set[str]) -> bool:
    if claim in sources:
        return True
    # Dates serialize as e.g. 1999-03-27: the components ground too.
    return any(claim in source for source in sources)


def source_numbers(records: list[dict]) -> set[str]:
    """All value strings of the rows a query's pipeline touched."""
    values: set[str] = set()
    for record in records:
        for value in record.values():
            values.add(str(value))
    return values
