"""Gold-answer helpers: the oracle side of the benchmark.

Gold answers stand in for the paper's human labels, so they consult the
*canonical* knowledge base and the *noise-free* text scorers — never
the fuzzy LM view.  Any method (including hand-written TAG) can
therefore be wrong relative to gold, exactly as in the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.frame import DataFrame
from repro.knowledge import KnowledgeBase
from repro.text.sarcasm import sarcasm_score
from repro.text.sentiment import sentiment_score
from repro.text.technicality import technicality_score

#: Judgment thresholds shared by gold labels and (with boundary noise)
#: the simulated LM — see repro.lm.concepts.
SENTIMENT_POSITIVE_THRESHOLD = 0.05
SARCASM_THRESHOLD = 0.4
TECHNICAL_THRESHOLD = 0.3


@lru_cache(maxsize=1)
def oracle_kb() -> KnowledgeBase:
    """The shared canonical knowledge base (cached)."""
    return KnowledgeBase.default()


def cities_in_region(region: str) -> set[str]:
    """Canonical member cities of a region."""
    return oracle_kb().cities_in_region(region)


def filter_by_region(
    frame: DataFrame, region: str, city_column: str = "City"
) -> DataFrame:
    """Rows whose city is canonically in ``region``."""
    cities = cities_in_region(region)
    return frame[frame[city_column].isin(cities)]


def person_height(person: str) -> float:
    """Canonical height in cm; raises ValueError if unknown."""
    height = oracle_kb().person_height_cm(person)
    if height is None:
        raise ValueError(f"no canonical height for {person!r}")
    return height


def euro_countries() -> set[str]:
    """Countries that canonically use the Euro."""
    return {
        str(fact.subject)
        for fact in oracle_kb().facts_for_relation("uses_euro")
        if fact.value
    }


def eu_countries() -> set[str]:
    """Countries canonically in the European Union."""
    return {
        str(fact.subject)
        for fact in oracle_kb().facts_for_relation("in_eu")
        if fact.value
    }


def street_circuits() -> set[str]:
    """Circuits canonically classified as street circuits."""
    return {
        str(fact.subject)
        for fact in oracle_kb().facts_for_relation("street_circuit")
        if fact.value
    }


def circuits_in_region(region: str) -> set[str]:
    """Circuits canonically located in ``region``."""
    lowered = region.strip().lower()
    return {
        str(fact.subject)
        for fact in oracle_kb().facts_for_relation("circuit_region")
        if fact.value == lowered
    }


def uk_leagues() -> set[str]:
    """Leagues whose country is a UK home nation."""
    kb = oracle_kb()
    uk_nations = {
        str(fact.subject)
        for fact in kb.facts_for_relation("uk_home_nation")
        if fact.value
    }
    return {
        str(fact.subject)
        for fact in kb.facts_for_relation("league_country")
        if str(fact.value) in uk_nations
    }


# -- text judgments (noise-free versions of the LM's scorers) -------------


def is_positive(text: str) -> bool:
    """Noise-free positive-sentiment judgment (gold labels)."""
    return sentiment_score(text) > SENTIMENT_POSITIVE_THRESHOLD


def is_negative(text: str) -> bool:
    """Noise-free negative-sentiment judgment (gold labels)."""
    return sentiment_score(text) < -SENTIMENT_POSITIVE_THRESHOLD


def is_sarcastic(text: str) -> bool:
    """Noise-free sarcasm judgment (gold labels)."""
    return sarcasm_score(text) > SARCASM_THRESHOLD


def is_technical(text: str) -> bool:
    """Noise-free technicality judgment (gold labels)."""
    return technicality_score(text) > TECHNICAL_THRESHOLD


def rank_by(texts: list[str], scorer, descending: bool = True) -> list[str]:
    """Stable ordering of texts by a scorer."""
    return [
        text
        for _, text in sorted(
            ((scorer(text), text) for text in texts),
            key=lambda pair: pair[0],
            reverse=descending,
        )
    ]
