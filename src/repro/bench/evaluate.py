"""Exact-match evaluation.

The paper measures "accuracy as the percentage of exact matches as
compared to the labeled correct answer" for match-based, comparison,
and ranking queries.  Method outputs arrive either as Python values
(hand-written TAG) or as LM text in the ``[value1, ...]`` format the
answer-generation prompt mandates; both are normalised to a list of
canonical values before comparison.  Ranking answers are order-
sensitive; other types are compared as multisets.
"""

from __future__ import annotations

import ast
import math
from typing import Any


def normalize_answer(answer: Any) -> list[Any] | None:
    """Normalise any method output to a list of canonical values.

    Returns None when the answer is unparseable (counted incorrect).
    """
    if answer is None:
        return None
    if isinstance(answer, str):
        parsed = _parse_list_text(answer)
        if parsed is None:
            return None
        return [_canonical(value) for value in parsed]
    if isinstance(answer, (list, tuple)):
        return [_canonical(value) for value in answer]
    return [_canonical(answer)]


def _parse_list_text(text: str) -> list[Any] | None:
    stripped = text.strip()
    if not stripped.startswith("["):
        return None
    try:
        value = ast.literal_eval(stripped)
    except (ValueError, SyntaxError):
        return None
    if not isinstance(value, list):
        return None
    return value


def _canonical(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        text = value.strip()
        # Numeric strings compare as numbers ("560" == 560); "nan"/
        # "inf" spellings stay text (NaN would break reflexivity).
        try:
            number = float(text)
        except ValueError:
            return text
        if math.isnan(number) or math.isinf(number):
            return text
        if number.is_integer():
            return int(number)
        return number
    return value


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return math.isclose(float(left), float(right), abs_tol=1e-6)
    return left == right


def exact_match(
    predicted: Any, gold: list[Any], ordered: bool = False
) -> bool:
    """Whether a method's answer exactly matches the gold list."""
    normalized = normalize_answer(predicted)
    gold_normalized = [_canonical(value) for value in gold]
    if normalized is None:
        return False
    if len(normalized) != len(gold_normalized):
        return False
    if ordered:
        return all(
            _values_equal(left, right)
            for left, right in zip(normalized, gold_normalized)
        )
    remaining = list(gold_normalized)
    for value in normalized:
        for position, candidate in enumerate(remaining):
            if _values_equal(value, candidate):
                del remaining[position]
                break
        else:
            return False
    return not remaining
