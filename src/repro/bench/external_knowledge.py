"""Oracle External-Knowledge strings, mirroring BIRD's evidence field.

BIRD ships each question with a human-written "evidence" hint; the
paper's prompt format carries it in the ``-- External Knowledge:``
line (Appendix B.1, "None" in their runs).  This module generates the
equivalent *oracle* hints from the canonical fact store, for the
ablation that asks: how much of Text2SQL's failure on knowledge queries
is missing knowledge (fixable by evidence) versus missing reasoning
(not fixable)?
"""

from __future__ import annotations

import re

from repro.bench import oracle

_REGION_RE = re.compile(
    r"silicon valley|bay area|southern california|central valley",
    re.IGNORECASE,
)
_PERSON_RE = re.compile(
    r"(?:taller|shorter) than ([A-Z][A-Za-z.'-]*(?: [A-Z][A-Za-z.'-]*)*)"
)


def oracle_external_knowledge(question: str) -> str | None:
    """Hint sentences covering the knowledge the question needs.

    Returns None when the question needs no world knowledge (the
    synthesizer then behaves exactly as without evidence).
    """
    hints: list[str] = []
    region_match = _REGION_RE.search(question)
    if region_match is not None:
        region = region_match.group(0).lower()
        cities = sorted(oracle.cities_in_region(region))
        if cities:
            hints.append(
                f"The {region} cities are: {', '.join(cities)}."
            )
    for person in _PERSON_RE.findall(question):
        cleaned = person.strip().rstrip("?.")
        try:
            height = oracle.person_height(cleaned)
        except ValueError:
            continue
        hints.append(f"{cleaned} is {height:g} cm tall.")
    if re.search(r"use the euro|eurozone", question, re.IGNORECASE):
        hints.append(
            "Countries that use the Euro: "
            + ", ".join(sorted(oracle.euro_countries()))
            + "."
        )
    if re.search(r"european union|\bEU\b", question, re.IGNORECASE):
        hints.append(
            "Countries in the European Union: "
            + ", ".join(sorted(oracle.eu_countries()))
            + "."
        )
    if re.search(r"street circuit", question, re.IGNORECASE):
        hints.append(
            "The street circuits are: "
            + ", ".join(sorted(oracle.street_circuits()))
            + "."
        )
    if re.search(r"southeast asia", question, re.IGNORECASE):
        hints.append(
            "Circuits in Southeast Asia: "
            + ", ".join(sorted(oracle.circuits_in_region("southeast asia")))
            + "."
        )
    if re.search(r"united kingdom|\bUK\b", question, re.IGNORECASE):
        hints.append(
            "Leagues in the United Kingdom: "
            + ", ".join(sorted(oracle.uk_leagues()))
            + "."
        )
    return " ".join(hints) if hints else None
