"""Benchmark query specification types."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.data.base import Dataset
from repro.errors import BenchmarkError
from repro.lm import SimulatedLM
from repro.semantic import SemanticOperators

QUERY_TYPES = ("match", "comparison", "ranking", "aggregation")
CAPABILITIES = ("knowledge", "reasoning")


@dataclass
class PipelineContext:
    """What a hand-written TAG pipeline may use: the dataset's frames
    and the semantic operators (i.e. the LM).  Pipelines encode expert
    knowledge of the *schema* — never of the answers."""

    dataset: Dataset
    ops: SemanticOperators
    lm: SimulatedLM

    def frame(self, table: str):
        return self.dataset.frame(table)


@dataclass
class QuerySpec:
    """One benchmark query.

    ``gold`` computes the labeled answer from the dataset and the
    *oracle* knowledge/text scorers (standing in for the paper's human
    labels); it is ``None`` for aggregation queries, whose quality the
    paper analyses qualitatively.  ``pipeline`` is the hand-written TAG
    program for the query, mirroring the paper's Appendix C.

    Aggregation queries instead carry quantitative-quality oracles
    (the "future work" the paper defers, see
    :mod:`repro.bench.agg_quality`): ``agg_entities`` lists what a
    complete answer must mention; ``agg_source`` returns the rows whose
    values ground the answer's numeric claims.
    """

    qid: str
    domain: str
    query_type: str
    capability: str
    question: str
    gold: Callable[[Dataset], list[Any]] | None
    pipeline: Callable[[PipelineContext], Any]
    agg_entities: Callable[[Dataset], list[str]] | None = None
    agg_source: Callable[[Dataset], list[dict]] | None = None

    def __post_init__(self) -> None:
        if self.query_type not in QUERY_TYPES:
            raise BenchmarkError(
                f"{self.qid}: bad query type {self.query_type!r}"
            )
        if self.capability not in CAPABILITIES:
            raise BenchmarkError(
                f"{self.qid}: bad capability {self.capability!r}"
            )
        if self.query_type == "aggregation":
            if self.gold is not None:
                raise BenchmarkError(
                    f"{self.qid}: aggregation queries have no exact gold"
                )
            if self.agg_entities is None or self.agg_source is None:
                raise BenchmarkError(
                    f"{self.qid}: aggregation queries need "
                    "agg_entities and agg_source oracles"
                )
        elif self.gold is None:
            raise BenchmarkError(f"{self.qid}: gold function required")
