"""The vanilla Text2SQL baseline.

The LM generates SQL whose execution *is* the answer — no generation
step.  Invalid SQL (or SQL over hallucinated columns) counts as an
incorrect answer, matching the paper's accounting ("including instances
where the model fails to generate valid SQL code").
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import QuerySpec
from repro.core import (
    LMQuerySynthesizer,
    NoGenerator,
    RepairPolicy,
    SQLExecutor,
    SelfCorrectingPipeline,
    TAGPipeline,
)
from repro.data.base import Dataset
from repro.methods.base import Method, SQL_EXECUTION_COST_S


class Text2SQLMethod(Method):
    """Vanilla Text2SQL.

    ``external_knowledge_provider`` optionally maps a question to a
    BIRD-style evidence string injected into the synthesis prompt's
    ``-- External Knowledge:`` line (None reproduces the paper's runs;
    the oracle provider in :mod:`repro.bench.external_knowledge` powers
    the evidence ablation).

    ``max_repairs`` enables the validate→repair→retry loop
    (:class:`repro.core.repair.SelfCorrectingPipeline`): failed SQL is
    fed back to the model with diagnostics up to that many times before
    the request fails.  The default 0 reproduces the paper's one-shot
    behavior exactly.
    """

    name = "Text2SQL"

    def __init__(
        self,
        lm,
        external_knowledge_provider=None,
        max_repairs: int = 0,
    ) -> None:
        super().__init__(lm)
        self.external_knowledge_provider = external_knowledge_provider
        self.max_repairs = max_repairs

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        knowledge = None
        if self.external_knowledge_provider is not None:
            knowledge = self.external_knowledge_provider(spec.question)
        steps = (
            LMQuerySynthesizer(
                self.lm, dataset, external_knowledge=knowledge
            ),
            SQLExecutor(dataset.db, analyze=True),
            NoGenerator(),
        )
        if self.max_repairs > 0:
            pipeline = SelfCorrectingPipeline(
                *steps,
                lm=self.lm,
                schema_sql=dataset.prompt_schema(),
                policy=RepairPolicy(max_repairs=self.max_repairs),
                external_knowledge=knowledge,
            )
        else:
            pipeline = TAGPipeline(*steps)
        result = pipeline.run(spec.question)
        self.extra_cost(SQL_EXECUTION_COST_S)
        if result.error is not None:
            raise result.error.to_exception()
        return result.answer
