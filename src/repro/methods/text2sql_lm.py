"""Text2SQL + LM: LM-generated retrieval SQL, then LM answer generation.

Unlike vanilla Text2SQL, the model's SQL is only asked to *retrieve
relevant rows*; the rows are then serialized into an answer-generation
prompt.  Over-selection routinely blows the context window on
match-based and comparison queries — the paper observes exactly these
"context length errors ... trying to feed in many rows to the model
after the executed SQL" — in which case the model falls back to
parametric knowledge with no rows (the Figure 2 behaviour).
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import QuerySpec
from repro.core import (
    LMQuerySynthesizer,
    NoGenerator,
    RepairPolicy,
    SQLExecutor,
    SelfCorrectingPipeline,
    SingleCallGenerator,
)
from repro.core.synthesis import _broaden_to_retrieval
from repro.data.base import Dataset
from repro.errors import ContextLengthError
from repro.methods.base import Method, SQL_EXECUTION_COST_S


class Text2SQLLMMethod(Method):
    """``max_repairs`` adds the validate→repair→retry loop around the
    retrieval-SQL step; repaired queries are re-broadened the same way
    the original synthesis is.  0 (the default) reproduces the paper's
    one-shot behavior exactly."""

    name = "Text2SQL + LM"

    def __init__(self, lm, max_repairs: int = 0) -> None:
        super().__init__(lm)
        self.max_repairs = max_repairs

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        synthesizer = LMQuerySynthesizer(
            self.lm, dataset, retrieval_mode=True
        )
        executor = SQLExecutor(dataset.db, analyze=True)
        if self.max_repairs > 0:
            pipeline = SelfCorrectingPipeline(
                synthesizer,
                executor,
                NoGenerator(),
                lm=self.lm,
                schema_sql=dataset.prompt_schema(),
                policy=RepairPolicy(max_repairs=self.max_repairs),
                rewrite_sql=_broaden_to_retrieval,
            )
            result = pipeline.run(spec.question)
            if result.error is not None:
                raise result.error.to_exception()
            table = result.table
        else:
            sql = synthesizer.synthesize(spec.question)
            table = executor.execute(sql)
        self.extra_cost(SQL_EXECUTION_COST_S)
        generator = SingleCallGenerator(
            self.lm, aggregation=spec.query_type == "aggregation"
        )
        try:
            return generator.generate(spec.question, table)
        except ContextLengthError:
            # The serialized rows do not fit; a production system
            # truncates to nothing useful and the model answers from
            # parametric knowledge alone.
            return generator.generate(spec.question, [])
