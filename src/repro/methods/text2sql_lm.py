"""Text2SQL + LM: LM-generated retrieval SQL, then LM answer generation.

Unlike vanilla Text2SQL, the model's SQL is only asked to *retrieve
relevant rows*; the rows are then serialized into an answer-generation
prompt.  Over-selection routinely blows the context window on
match-based and comparison queries — the paper observes exactly these
"context length errors ... trying to feed in many rows to the model
after the executed SQL" — in which case the model falls back to
parametric knowledge with no rows (the Figure 2 behaviour).
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import QuerySpec
from repro.core import LMQuerySynthesizer, SQLExecutor, SingleCallGenerator
from repro.data.base import Dataset
from repro.errors import ContextLengthError
from repro.methods.base import Method, SQL_EXECUTION_COST_S


class Text2SQLLMMethod(Method):
    name = "Text2SQL + LM"

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        synthesizer = LMQuerySynthesizer(
            self.lm, dataset, retrieval_mode=True
        )
        sql = synthesizer.synthesize(spec.question)
        executor = SQLExecutor(dataset.db, analyze=True)
        table = executor.execute(sql)
        self.extra_cost(SQL_EXECUTION_COST_S)
        generator = SingleCallGenerator(
            self.lm, aggregation=spec.query_type == "aggregation"
        )
        try:
            return generator.generate(spec.question, table)
        except ContextLengthError:
            # The serialized rows do not fit; a production system
            # truncates to nothing useful and the model answers from
            # parametric knowledge alone.
            return generator.generate(spec.question, [])
