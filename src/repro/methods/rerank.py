"""Retrieval + LM Rank: RAG with an LM reranking pass.

Retrieves a wider candidate pool, asks the LM to score each candidate's
relevance in [0, 1] (as in the STaRK setup the paper cites), keeps the
top ``k``, then generates — better rows in context, same structural gap
on exact computation.
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import QuerySpec
from repro.core import SingleCallGenerator, VectorSearchExecutor
from repro.data.base import Dataset
from repro.embed import HashingEmbedder, serialize_row
from repro.lm import SimulatedLM
from repro.methods.base import Method, VECTOR_SEARCH_COST_S
from repro.semantic import SemanticEngine


class RetrievalRerankMethod(Method):
    name = "Retrieval + LM Rank"

    def __init__(
        self,
        lm: SimulatedLM,
        k: int = 10,
        candidates: int = 30,
        embedder: HashingEmbedder | None = None,
        batch_size: int = 16,
    ) -> None:
        super().__init__(lm)
        self.k = k
        self.candidates = candidates
        self.embedder = embedder or HashingEmbedder()
        self.engine = SemanticEngine(lm, batch_size=batch_size)
        self._executors: dict[str, VectorSearchExecutor] = {}

    def _executor(self, dataset: Dataset) -> VectorSearchExecutor:
        if dataset.name not in self._executors:
            self._executors[dataset.name] = VectorSearchExecutor(
                dataset, self.embedder, k=self.candidates
            )
        return self._executors[dataset.name]

    def prepare(self, dataset: Dataset) -> None:
        self._executor(dataset).corpus_size

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        executor = self._executor(dataset)
        executor.k = self.candidates
        query_vector = self.embedder.embed(spec.question)
        retrieved = executor.execute(query_vector)
        self.extra_cost(VECTOR_SEARCH_COST_S)
        documents = [serialize_row(record) for record in retrieved]
        scores = self.engine.relevance(spec.question, documents)
        reranked = [
            record
            for _, record in sorted(
                zip(scores, retrieved),
                key=lambda pair: pair[0],
                reverse=True,
            )
        ]
        top = reranked[: self.k]
        generator = SingleCallGenerator(
            self.lm, aggregation=spec.query_type == "aggregation"
        )
        return generator.generate(spec.question, top)
