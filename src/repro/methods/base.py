"""Method interface and shared measurement plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bench.queries import QuerySpec
from repro.data.base import Dataset
from repro.lm import SimulatedLM

#: Fixed non-LM costs (seconds), charged on top of simulated LM time.
SQL_EXECUTION_COST_S = 0.05
VECTOR_SEARCH_COST_S = 0.05


@dataclass
class MethodResult:
    """One method's outcome on one query."""

    answer: Any
    et_seconds: float
    error: str | None = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


class Method:
    """Base class: subclasses implement :meth:`_answer`.

    ET is measured as the simulated LM seconds consumed while answering
    plus any fixed costs the subclass charges through ``extra_cost``.
    """

    name: str = "method"

    def __init__(self, lm: SimulatedLM) -> None:
        self.lm = lm

    def prepare(self, dataset: Dataset) -> None:
        """Per-domain setup excluded from ET (e.g. index builds)."""

    def answer(self, spec: QuerySpec, dataset: Dataset) -> MethodResult:
        before = self.lm.usage.snapshot()
        self._extra_cost = 0.0
        try:
            value = self._answer(spec, dataset)
            error = None
        except Exception as exc:  # noqa: BLE001 - methods must not crash the run
            value = None
            error = f"{type(exc).__name__}: {exc}"
        consumed = self.lm.usage.since(before)
        return MethodResult(
            answer=value,
            et_seconds=consumed.simulated_seconds + self._extra_cost,
            error=error,
            diagnostics={
                "lm_calls": consumed.calls,
                "lm_batches": consumed.batches,
                "prompt_tokens": consumed.prompt_tokens,
                "output_tokens": consumed.output_tokens,
                "context_errors": consumed.context_errors,
            },
        )

    def extra_cost(self, seconds: float) -> None:
        self._extra_cost += seconds

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        raise NotImplementedError
