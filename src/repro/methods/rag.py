"""The RAG baseline: row-level embedding retrieval + one LM call.

Rows of every table in the query's domain are serialized "- col: val",
embedded, and indexed; at query time the top ``k`` rows by similarity
are fed in context for answer generation (paper §4.2, k=10).
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import QuerySpec
from repro.core import (
    EmbeddingSynthesizer,
    SingleCallGenerator,
    TAGPipeline,
    VectorSearchExecutor,
)
from repro.data.base import Dataset
from repro.embed import HashingEmbedder
from repro.lm import SimulatedLM
from repro.methods.base import Method, VECTOR_SEARCH_COST_S


class RAGMethod(Method):
    name = "RAG"

    def __init__(
        self,
        lm: SimulatedLM,
        k: int = 10,
        embedder: HashingEmbedder | None = None,
    ) -> None:
        super().__init__(lm)
        self.k = k
        self.embedder = embedder or HashingEmbedder()
        self._executors: dict[str, VectorSearchExecutor] = {}

    def executor(self, dataset: Dataset) -> VectorSearchExecutor:
        """The (cached) per-domain retrieval executor; index build time
        is excluded from ET, as an offline indexing cost."""
        if dataset.name not in self._executors:
            self._executors[dataset.name] = VectorSearchExecutor(
                dataset, self.embedder, k=self.k
            )
        executor = self._executors[dataset.name]
        executor.k = self.k
        return executor

    def prepare(self, dataset: Dataset) -> None:
        self.executor(dataset).corpus_size  # build the index

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        pipeline = TAGPipeline(
            EmbeddingSynthesizer(self.embedder),
            self.executor(dataset),
            SingleCallGenerator(
                self.lm,
                aggregation=spec.query_type == "aggregation",
            ),
        )
        result = pipeline.run(spec.question)
        self.extra_cost(VECTOR_SEARCH_COST_S)
        if result.error is not None:
            raise result.error.to_exception()
        return result.answer
