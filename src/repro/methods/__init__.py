"""The five evaluated methods from the paper's §4.2.

Every method conforms to :class:`Method`: given a benchmark query and a
dataset, produce an answer plus a (simulated) execution time.  The
methods are Text2SQL, RAG, Retrieval + LM Rank, Text2SQL + LM, and
Hand-written TAG.
"""

from repro.methods.base import Method, MethodResult
from repro.methods.handwritten import HandwrittenTAGMethod
from repro.methods.rag import RAGMethod
from repro.methods.rerank import RetrievalRerankMethod
from repro.methods.text2sql import Text2SQLMethod
from repro.methods.text2sql_lm import Text2SQLLMMethod

__all__ = [
    "HandwrittenTAGMethod",
    "Method",
    "MethodResult",
    "RAGMethod",
    "RetrievalRerankMethod",
    "Text2SQLLMMethod",
    "Text2SQLMethod",
    "default_methods",
]


def default_methods(lm_factory) -> list[Method]:
    """The paper's five methods, each with its own LM instance.

    ``lm_factory`` is called once per method so usage accounting (and
    therefore ET) is independent across methods.
    """
    return [
        Text2SQLMethod(lm_factory()),
        RAGMethod(lm_factory()),
        RetrievalRerankMethod(lm_factory()),
        Text2SQLLMMethod(lm_factory()),
        HandwrittenTAGMethod(lm_factory()),
    ]
