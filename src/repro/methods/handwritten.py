"""Hand-written TAG: expert pipelines over semantic operators.

Each benchmark query ships a pipeline written against the dataset's
frames and the LOTUS-style operators (paper §4.2 / Appendix C): exact
computation stays in dataframe/relational operations, semantic steps go
through batched LM judgments.
"""

from __future__ import annotations

from typing import Any

from repro.bench.queries import PipelineContext, QuerySpec
from repro.data.base import Dataset
from repro.lm import SimulatedLM
from repro.methods.base import Method
from repro.semantic import SemanticOperators


class HandwrittenTAGMethod(Method):
    name = "Hand-written TAG"

    def __init__(self, lm: SimulatedLM, batch_size: int = 32) -> None:
        super().__init__(lm)
        self.batch_size = batch_size

    def _answer(self, spec: QuerySpec, dataset: Dataset) -> Any:
        context = PipelineContext(
            dataset=dataset,
            ops=SemanticOperators(self.lm, batch_size=self.batch_size),
            lm=self.lm,
        )
        return spec.pipeline(context)
