"""Command-line interface.

Usage (also via ``python -m repro``):

    python -m repro bench [--seed N] [--max-queries N]
    python -m repro query <qid> [--method NAME] [--seed N]
    python -m repro sql <domain> "<SELECT ...>" [--explain]
    python -m repro suite [--type T] [--capability C]
    python -m repro export <domain> <directory>
    python -m repro serve [--requests N] [--fault-rate R] [--retries N]
                          [--trace out.json]
    python -m repro trace [--requests N] [--workers N] [--format F] [--out P]
    python -m repro analyze "<SELECT ...>" --db <domain>
    python -m repro lint [--root DIR] [--conc] [--format text|json]

``EXPLAIN ANALYZE <select>`` works through the ``sql`` subcommand: the
annotated plan (rows in/out and virtual time per operator) prints as
the result rows.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.report import format_table1, format_table2
from repro.bench.runner import run_benchmark
from repro.bench.suite import build_suite
from repro.data import DOMAINS, load_domain
from repro.errors import ReproError
from repro.frame.io import export_dataset
from repro.lm import LMConfig, SimulatedLM


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI (subcommands: bench/query/sql/suite/export)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "TAG reproduction: benchmark runner, query inspector, SQL "
            "shell, dataset export."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    bench = commands.add_parser(
        "bench", help="run TAG-Bench and print Tables 1-2"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--max-queries", type=int, default=None)

    query = commands.add_parser(
        "query", help="run one benchmark query through the methods"
    )
    query.add_argument("qid")
    query.add_argument(
        "--method",
        default=None,
        help="method name substring (default: all five)",
    )
    query.add_argument("--seed", type=int, default=0)

    sql = commands.add_parser(
        "sql", help="execute SQL against a generated domain"
    )
    sql.add_argument("domain", choices=DOMAINS)
    sql.add_argument("statement")
    sql.add_argument("--explain", action="store_true")
    sql.add_argument("--seed", type=int, default=0)

    suite = commands.add_parser("suite", help="list benchmark queries")
    suite.add_argument("--type", dest="query_type", default=None)
    suite.add_argument("--capability", default=None)

    export = commands.add_parser(
        "export", help="write a domain's tables as CSV files"
    )
    export.add_argument("domain", choices=DOMAINS)
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve",
        help="serve a demo TAG request stream under injected faults",
    )
    serve.add_argument("--requests", type=int, default=16)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--window", type=int, default=4)
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="total injected-fault probability per LM call",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="LM + fault-schedule seed"
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="retry attempts after the first (0 disables retries)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request budget in simulated seconds",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="consecutive failures that trip the circuit breaker",
    )
    serve.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the degraded raw-table fallback tier",
    )
    serve.add_argument(
        "--admit-budget",
        type=int,
        default=None,
        help=(
            "per-request LM-call admission budget; requests whose "
            "estimated LM-UDF cost exceeds it are rejected pre-dispatch"
        ),
    )
    serve.add_argument(
        "--max-repairs",
        type=int,
        default=0,
        help=(
            "validate→repair→retry budget per request: failed SQL is "
            "fed back to the LM with diagnostics up to this many "
            "times; admission prices the worst-case repair cost "
            "(0 disables the repair loop)"
        ),
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event file for the run",
    )
    serve.add_argument(
        "--no-optimize",
        action="store_true",
        help=(
            "disable the cost-based query optimizer (LM UDFs run "
            "per-row in written predicate order)"
        ),
    )
    serve.add_argument(
        "--semantic-cache",
        type=int,
        default=0,
        metavar="N",
        help=(
            "semantic result-cache capacity (0 disables): requests "
            "whose canonical form matches an accepted answer are "
            "served without dispatching a pipeline, and the demo "
            "stream becomes duplicate-heavy so hits are visible"
        ),
    )

    trace = commands.add_parser(
        "trace",
        help="serve a small demo stream and export its trace",
    )
    trace.add_argument("--requests", type=int, default=6)
    trace.add_argument("--workers", type=int, default=2)
    trace.add_argument("--window", type=int, default=4)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--format",
        dest="trace_format",
        choices=("chrome", "jsonl"),
        default="chrome",
    )
    trace.add_argument("--out", default="trace.json")

    analyze = commands.add_parser(
        "analyze",
        help="statically analyze a SELECT against a domain's catalog",
    )
    analyze.add_argument("statement")
    analyze.add_argument(
        "--db",
        dest="domain",
        required=True,
        choices=DOMAINS,
        help="domain whose catalog the query is checked against",
    )
    analyze.add_argument("--seed", type=int, default=0)

    lint = commands.add_parser(
        "lint",
        help="run the determinism linter over src/ (see repro.analysis.lint)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root containing src/ and pyproject.toml",
    )
    lint.add_argument(
        "--conc",
        action="store_true",
        help=(
            "run the concurrency-safety analyzer (CONC201-CONC208, see "
            "repro.analysis.concurrency) instead of the determinism rules"
        ),
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits a machine-readable report)",
    )

    return parser


def _command_bench(args) -> int:
    report = run_benchmark(seed=args.seed, max_queries=args.max_queries)
    print(format_table1(report))
    print()
    print(format_table2(report))
    return 0


def _command_query(args) -> int:
    from repro.methods import default_methods

    specs = [s for s in build_suite() if s.qid == args.qid]
    if not specs:
        print(f"no query with id {args.qid!r}", file=sys.stderr)
        return 1
    spec = specs[0]
    dataset = load_domain(spec.domain, seed=args.seed)
    print(f"[{spec.qid}] ({spec.query_type}/{spec.capability})")
    print(f"Q: {spec.question}")
    if spec.gold is not None:
        print(f"gold: {spec.gold(dataset)}")
    config = LMConfig(seed=args.seed)
    methods = default_methods(lambda: SimulatedLM(config))
    if args.method:
        methods = [
            m for m in methods if args.method.lower() in m.name.lower()
        ]
        if not methods:
            print(f"no method matching {args.method!r}", file=sys.stderr)
            return 1
    for method in methods:
        method.prepare(dataset)
        result = method.answer(spec, dataset)
        status = result.error or "ok"
        print(
            f"\n== {method.name} (ET {result.et_seconds:.2f}s, {status})"
        )
        print(f"   {result.answer}")
    return 0


def _command_sql(args) -> int:
    dataset = load_domain(args.domain, seed=args.seed)
    try:
        if args.explain:
            print(dataset.db.explain(args.statement))
            return 0
        result = dataset.db.execute(args.statement)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print("\t".join(result.columns))
    for row in result.rows[:200]:
        print("\t".join(str(value) for value in row))
    if len(result.rows) > 200:
        print(f"... ({len(result.rows)} rows total)")
    return 0


def _command_suite(args) -> int:
    for spec in build_suite():
        if args.query_type and spec.query_type != args.query_type:
            continue
        if args.capability and spec.capability != args.capability:
            continue
        print(
            f"{spec.qid:18s} {spec.query_type:12s} "
            f"{spec.capability:10s} {spec.domain:24s} {spec.question}"
        )
    return 0


def _command_export(args) -> int:
    dataset = load_domain(args.domain, seed=args.seed)
    for path in export_dataset(dataset, args.directory):
        print(path)
    return 0


def _command_serve(args) -> int:
    from repro.core import (
        FallbackPipeline,
        FixedQuerySynthesizer,
        NoGenerator,
        RepairPolicy,
        SQLExecutor,
        SelfCorrectingPipeline,
        SingleCallGenerator,
        TAGPipeline,
    )
    from repro.data import movies
    from repro.lm import FaultPlan
    from repro.serve import (
        BreakerPolicy,
        ResiliencePolicy,
        RetryPolicy,
        TagServer,
    )

    dataset = movies.build(seed=args.seed)
    sql = (
        "SELECT movie_title, review FROM movies "
        "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
    )
    # A per-row LM UDF powers the admission-control demo: "deep scan"
    # requests classify every review, so their estimated cost scales
    # with the table instead of the single-row lookup above.
    deep_sql = "SELECT movie_title, MOOD(review) FROM movies"

    def mood(review):
        return "positive" if "love" in str(review) else "mixed"

    dataset.db.register_udf(
        "MOOD",
        mood,
        expensive=True,
        batch=lambda tuples: [mood(review) for (review,) in tuples],
    )

    def query_for(request: str) -> str:
        return deep_sql if "deep scan" in request else sql

    class _DemoSynthesizer:
        def synthesize(self, request: str) -> str:
            return query_for(request)

    def factory(lm):
        # Deep-scan requests hit the expensive UDF on every row; the
        # cost-based optimizer picks the vectorized route (morsel size
        # from the distinct-value bound) unless --no-optimize pins the
        # per-row path.
        optimize = not args.no_optimize
        steps = (
            _DemoSynthesizer(),
            SQLExecutor(dataset.db, optimize=optimize),
            SingleCallGenerator(lm, aggregation=True),
        )
        if args.max_repairs > 0:
            primary = SelfCorrectingPipeline(
                *steps,
                lm=lm,
                schema_sql=dataset.db.schema_sql(),
                policy=RepairPolicy(max_repairs=args.max_repairs),
            )
        else:
            primary = TAGPipeline(*steps)
        if args.no_fallback:
            return primary
        raw_table = TAGPipeline(
            _DemoSynthesizer(),
            SQLExecutor(dataset.db, optimize=optimize),
            NoGenerator(),
        )
        return FallbackPipeline([("tag", primary), ("table", raw_table)])

    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=args.retries + 1),
        deadline_s=args.deadline,
        breaker=(
            BreakerPolicy(failure_threshold=args.breaker_threshold)
            if args.breaker_threshold is not None
            else None
        ),
    )
    admission = None
    if args.admit_budget is not None:
        from repro.serve import AdmissionPolicy, SQLAdmissionEstimator

        admission = AdmissionPolicy(
            estimator=SQLAdmissionEstimator(dataset.db, query_for),
            max_lm_calls=args.admit_budget,
            repair_budget=args.max_repairs,
        )
    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    semantic_cache = None
    registry = None
    if args.semantic_cache > 0:
        from repro.serve import QueryRegistry, SemanticResultCache

        semantic_cache = SemanticResultCache(capacity=args.semantic_cache)
        registry = QueryRegistry()
    server = TagServer(
        factory,
        SimulatedLM(LMConfig(seed=args.seed)),
        workers=args.workers,
        window=args.window,
        fault_plan=FaultPlan.uniform(args.fault_rate, seed=args.seed),
        resilience=resilience,
        admission=admission,
        tracer=tracer,
        semantic_cache=semantic_cache,
        registry=registry,
    )
    # With the semantic cache on, fold the stream onto a few distinct
    # questions: real traffic repeats itself, and the duplicates are
    # what the cache coalesces.
    distinct = (
        max(1, args.requests // 3)
        if semantic_cache is not None
        else args.requests
    )
    requests = [
        (
            f"Classify the mood of every review (deep scan #{index})"
            if args.admit_budget is not None and index % 4 == 3
            else "Summarize the reviews of the top romance movie "
            f"(#{index % distinct})"
        )
        for index in range(args.requests)
    ]
    report = server.serve(requests)
    print(
        f"served {len(report.results)} requests "
        f"(workers={args.workers}, window={args.window}, "
        f"fault rate={args.fault_rate:g}, seed={args.seed})"
    )
    print(f"  availability     {report.availability:8.2%}")
    print(f"  degraded         {report.degraded_count:8d}")
    print(f"  goodput          {report.goodput_rps:8.3f} req/s")
    print(f"  throughput       {report.throughput_rps:8.3f} req/s")
    print(f"  makespan         {report.simulated_seconds:8.2f} simulated-s")
    print(
        f"  latency p50/p95  "
        f"{report.latency_percentile(0.5):8.2f} / "
        f"{report.latency_percentile(0.95):.2f} simulated-s"
    )
    usage = report.usage
    print(
        f"  faults/retries   {usage.faults_injected:8d} / {usage.retries}"
    )
    print(
        f"  trips/deadlines  "
        f"{usage.breaker_trips:8d} / {usage.deadline_exceeded}"
    )
    if args.max_repairs > 0:
        print(
            f"  repairs ok/used  "
            f"{usage.repair_successes:8d} / {usage.repair_attempts}"
        )
    if admission is not None:
        print(f"  admission-rej    {report.admission_rejected:8d}")
    if semantic_cache is not None:
        print(
            f"  semcache h/n/m   {usage.semcache_hits:8d} / "
            f"{usage.semcache_near_hits} / {usage.semcache_misses}"
        )
        print(f"  semcache entries {len(semantic_cache):8d}")
        print(f"  registry entries {len(registry):8d}")
    if tracer is not None:
        from repro.obs import write_trace

        path = write_trace(tracer, args.trace, format="chrome")
        print(f"  trace            {path}")
    for result in report.errors:
        print(f"  FAILED #{result.index}: {result.result.error}")
    # Admission rejections are the budget working as intended; only
    # failures among *dispatched* requests make the exit code nonzero.
    dispatched_ok = all(
        result.ok for result in report.results if result.worker >= 0
    )
    return 0 if dispatched_ok else 1


def _command_trace(args) -> int:
    """Serve a small demo stream with tracing on and export the trace.

    Every request uses a distinct prompt and the cache is off, so the
    exported bytes are identical for any ``--workers`` value — the
    determinism contract ``make trace-smoke`` checks.
    """
    from repro.core import SQLExecutor, SingleCallGenerator, TAGPipeline
    from repro.data import movies
    from repro.obs import MetricsRegistry, Tracer, write_trace
    from repro.serve import TagServer

    dataset = movies.build(seed=args.seed)
    sql = (
        "SELECT movie_title, review FROM movies "
        "WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1"
    )

    class _Synthesizer:
        def synthesize(self, request: str) -> str:
            return sql

    def factory(lm):
        return TAGPipeline(
            _Synthesizer(),
            SQLExecutor(dataset.db),
            SingleCallGenerator(lm, aggregation=True),
        )

    tracer = Tracer()
    metrics = MetricsRegistry()
    server = TagServer(
        factory,
        SimulatedLM(LMConfig(seed=args.seed)),
        workers=args.workers,
        window=args.window,
        tracer=tracer,
        metrics=metrics,
    )
    requests = [
        f"Summarize the reviews of the top romance movie (#{index})"
        for index in range(args.requests)
    ]
    report = server.serve(requests)
    path = write_trace(tracer, args.out, format=args.trace_format)
    spans = sum(
        sum(1 for _ in root.walk()) for _, root in tracer.roots
    )
    print(
        f"served {len(report.results)} requests "
        f"(workers={args.workers}, window={args.window}, "
        f"seed={args.seed})"
    )
    print(f"  spans            {spans:8d}")
    print(f"  makespan         {report.simulated_seconds:8.2f} simulated-s")
    print(f"  trace            {path}")
    return 0 if all(result.ok for result in report.results) else 1


def _command_analyze(args) -> int:
    dataset = load_domain(args.domain, seed=args.seed)
    report = dataset.db.analyze(args.statement)
    print(report.render())
    return 0 if report.ok else 1


def _command_lint(args) -> int:
    import json
    from pathlib import Path

    root = Path(args.root)
    if not (root / "src").is_dir():
        print(f"error: no src/ under {root}", file=sys.stderr)
        return 2
    if args.conc:
        from repro.analysis.concurrency import analyze_tree

        report = analyze_tree(root)
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.render())
        return 0 if report.ok else 1

    from repro.analysis.lint import lint_tree

    reported, suppressed = lint_tree(root)
    counts: dict[str, int] = {}
    for finding in reported:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": not reported,
                    "counts": dict(sorted(counts.items())),
                    "findings": [
                        {
                            "path": f.path,
                            "line": f.line,
                            "column": f.column,
                            "code": f.code,
                            "message": f.message,
                        }
                        for f in reported
                    ],
                    "suppressed": len(suppressed),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if reported else 0
    for finding in reported:
        print(finding.render())
    summary = f"lint: {len(reported)} finding(s)"
    if suppressed:
        summary += f", {len(suppressed)} suppressed via pyproject"
    print(summary)
    if counts:
        print(
            "per-rule: "
            + ", ".join(
                f"{code} x{n}" for code, n in sorted(counts.items())
            )
        )
    return 1 if reported else 0


_COMMANDS = {
    "bench": _command_bench,
    "query": _command_query,
    "sql": _command_sql,
    "suite": _command_suite,
    "export": _command_export,
    "serve": _command_serve,
    "trace": _command_trace,
    "analyze": _command_analyze,
    "lint": _command_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
