"""Static analysis for the TAG stack.

Two pillars:

* :mod:`repro.analysis.sql` — a semantic analyzer (resolver,
  typechecker, LM-cost estimator) that validates a SELECT against a
  :class:`~repro.db.Database` catalog *before* planning, producing a
  :class:`QueryReport` of span-carrying :class:`Diagnostic` findings
  plus a :class:`CostEstimate` that bounds per-row LM-UDF invocations.
  ``Database.execute(..., analyze=True)`` and the serving layer's
  admission control are built on it.

* :mod:`repro.analysis.lint` — a Python-``ast`` determinism linter for
  this codebase itself (``python -m repro lint``), enforcing the
  invariants the deterministic serving layer depends on: no wall-clock
  reads outside the virtual clock, no unseeded randomness, no bare
  excepts, no mutable default arguments, and lock discipline for the
  server's shared state.

* :mod:`repro.analysis.concurrency` — the static half of the two-layer
  race detector (``python -m repro lint --conc``): interprocedural
  lockset inference over the class-attribute mutation map, the
  worker-shared object closure, and span-carrying CONC201–CONC208
  diagnostics.  The dynamic half is :mod:`repro.obs.racecheck`.
"""

from repro.analysis.concurrency import (
    ConcFinding,
    ConcurrencyReport,
    analyze_source,
    analyze_tree,
)
from repro.analysis.cost import CostModel
from repro.analysis.diagnostics import (
    CostEstimate,
    Diagnostic,
    QueryReport,
    Severity,
    Span,
)
from repro.analysis.sql import SQLAnalyzer

__all__ = [
    "ConcFinding",
    "ConcurrencyReport",
    "CostEstimate",
    "CostModel",
    "Diagnostic",
    "QueryReport",
    "Severity",
    "Span",
    "SQLAnalyzer",
    "analyze_source",
    "analyze_tree",
]
