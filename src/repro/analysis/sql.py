"""SQL semantic analyzer: resolve, typecheck, and cost a SELECT statically.

The analyzer walks a parsed :class:`~repro.db.sql.ast.Select` against a
:class:`~repro.db.Database` catalog *before* any plan is built, mirroring
the planner/executor's semantics exactly so that its error-severity
diagnostics are **sound for admission**: a query the analyzer accepts is
guaranteed to plan and execute without an engine error (property-tested
in ``tests/analysis``).  The converse is deliberately not promised — the
analyzer may reject a few exotic constructs the engine would tolerate
(e.g. a computed LIMIT), because admission control wants cheap certainty
over completeness.

Alongside diagnostics the walk accumulates a :class:`CostEstimate`:
catalog cardinalities bound the rows each expression site can see, and
every call site of an *expensive* registered function (an LM UDF) adds
``rows_at_site`` potential invocations.  That bound is what
:class:`repro.serve.TagServer` uses for deterministic admission control.

See :mod:`repro.analysis.diagnostics` for the diagnostic taxonomy.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace

from repro.analysis.cost import (
    ColumnStats,
    CostModel,
    predicate_selectivity,
)
from repro.analysis.diagnostics import (
    CostEstimate,
    Diagnostic,
    QueryReport,
    Severity,
    Span,
)
from repro.db import Database
from repro.db.functions import FunctionRegistry
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.db.types import DataType, infer_type
from repro.errors import SchemaError, SQLSyntaxError

#: Internal expression type: a DataType, or None for the NULL literal
#: (NULL propagates through every operator without erroring).
ExprType = DataType | None

_NUMERIC = (DataType.INTEGER, DataType.REAL, DataType.BOOLEAN, DataType.ANY)
_TEXTUAL = (DataType.TEXT, DataType.ANY)


def _numeric_ok(t: ExprType) -> bool:
    return t is None or t in _NUMERIC


def _textual_ok(t: ExprType) -> bool:
    return t is None or t in _TEXTUAL


def _unify(*types: ExprType) -> ExprType:
    """Join of expression types: equal -> itself, mixed numeric -> REAL,
    anything else -> ANY; NULLs are transparent."""
    concrete = [t for t in types if t is not None]
    if not concrete:
        return None
    first = concrete[0]
    if all(t is first for t in concrete):
        return first
    if all(t in _NUMERIC and t is not DataType.ANY for t in concrete):
        return DataType.REAL
    return DataType.ANY


# ---------------------------------------------------------------------------
# Builtin signatures
# ---------------------------------------------------------------------------

#: Argument kinds: "num" rejects TEXT operands, "text" rejects numeric
#: ones, "any" accepts everything (matching what the builtin's Python
#: body tolerates, not what ANSI SQL would say).
@dataclass(frozen=True)
class _Signature:
    min_args: int
    max_args: int | None  # None = variadic
    kinds: tuple[str, ...] = ()  # per-position; last kind repeats
    returns: ExprType = DataType.ANY

    def kind_at(self, position: int) -> str:
        if not self.kinds:
            return "any"
        if position < len(self.kinds):
            return self.kinds[position]
        return self.kinds[-1]


_SCALAR_SIGNATURES: dict[str, _Signature] = {
    "ABS": _Signature(1, 1, ("num",)),
    "ROUND": _Signature(1, 2, ("num", "num"), DataType.REAL),
    "LENGTH": _Signature(1, 1, ("any",), DataType.INTEGER),
    "UPPER": _Signature(1, 1, ("any",), DataType.TEXT),
    "LOWER": _Signature(1, 1, ("any",), DataType.TEXT),
    "TRIM": _Signature(1, 1, ("any",), DataType.TEXT),
    "LTRIM": _Signature(1, 1, ("any",), DataType.TEXT),
    "RTRIM": _Signature(1, 1, ("any",), DataType.TEXT),
    "REPLACE": _Signature(3, 3, ("any", "text", "text"), DataType.TEXT),
    "SUBSTR": _Signature(2, 3, ("text", "num", "num"), DataType.TEXT),
    "SUBSTRING": _Signature(2, 3, ("text", "num", "num"), DataType.TEXT),
    "INSTR": _Signature(2, 2, ("text", "text"), DataType.INTEGER),
    "COALESCE": _Signature(1, None),
    "IFNULL": _Signature(2, 2),
    "NULLIF": _Signature(2, 2),
    "IIF": _Signature(3, 3),
    "SQRT": _Signature(1, 1, ("num",), DataType.REAL),
    "FLOOR": _Signature(1, 1, ("num",), DataType.REAL),
    "CEIL": _Signature(1, 1, ("num",), DataType.REAL),
    "SIGN": _Signature(1, 1, ("num",), DataType.INTEGER),
    # Multi-argument scalar MIN/MAX (single-argument is the aggregate).
    "MIN": _Signature(2, None),
    "MAX": _Signature(2, None),
}

_AGGREGATE_SIGNATURES: dict[str, _Signature] = {
    "COUNT": _Signature(1, 1, ("any",), DataType.INTEGER),
    "SUM": _Signature(1, 1, ("num",)),
    "TOTAL": _Signature(1, 1, ("num",), DataType.REAL),
    "AVG": _Signature(1, 1, ("num",), DataType.REAL),
    "MIN": _Signature(1, 1),
    "MAX": _Signature(1, 1),
    "GROUP_CONCAT": _Signature(1, 1, ("any",), DataType.TEXT),
}


def _callable_arity(function) -> tuple[int, int | None] | None:
    """(min, max) positional arity of a UDF, or None if unknowable."""
    try:
        signature = inspect.signature(function)
    except (TypeError, ValueError):
        return None
    minimum = 0
    maximum: int | None = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if maximum is not None:
                maximum += 1
            if parameter.default is inspect.Parameter.empty:
                minimum += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            maximum = None
        elif (
            parameter.kind is inspect.Parameter.KEYWORD_ONLY
            and parameter.default is inspect.Parameter.empty
        ):
            return None  # not callable positionally; skip the check
    return minimum, maximum


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


@dataclass
class _Scope:
    """Column bindings visible to expressions of one SELECT."""

    #: (binding, column name, declared type) triples, in layout order.
    entries: list[tuple[str | None, str, DataType]] = field(
        default_factory=list
    )
    #: True when a FROM source failed to resolve; suppresses cascading
    #: unknown-column diagnostics inside this scope.
    open: bool = False
    #: Catalog distinct counts for batched LM-cost pricing, keyed by
    #: ``(binding_lower, column_lower)``.  Only stored-table columns
    #: appear; anything else falls back to the per-row bound.
    distinct: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Full per-column catalog statistics (rows/distinct/nulls) for the
    #: shared selectivity estimator, same keying as ``distinct``.
    stats: dict[tuple[str, str], ColumnStats] = field(
        default_factory=dict
    )

    def distinct_bound(self, name: str, table: str | None) -> int | None:
        """Distinct-value count for a column ref, if known."""
        lowered = name.lower()
        if table is not None:
            return self.distinct.get((table.lower(), lowered))
        matches = [
            count
            for (_, column), count in self.distinct.items()
            if column == lowered
        ]
        return matches[0] if len(matches) == 1 else None

    def column_stats(
        self, name: str, table: str | None
    ) -> ColumnStats | None:
        """StatsLookup for :func:`predicate_selectivity`."""
        lowered = name.lower()
        if table is not None:
            return self.stats.get((table.lower(), lowered))
        matches = [
            stats
            for (_, column), stats in self.stats.items()
            if column == lowered
        ]
        return matches[0] if len(matches) == 1 else None

    def resolve(
        self, name: str, table: str | None
    ) -> DataType | str:
        """The column's type, or the failing diagnostic code."""
        lowered = name.lower()
        if table is not None:
            key = table.lower()
            for binding, entry_name, dtype in self.entries:
                if (
                    binding is not None
                    and binding.lower() == key
                    and entry_name.lower() == lowered
                ):
                    return dtype
            return "ANA003"
        matches = [
            (binding, dtype)
            for binding, entry_name, dtype in self.entries
            if entry_name.lower() == lowered
        ]
        if not matches:
            return "ANA003"
        bindings = {binding for binding, _ in matches}
        if len(matches) > 1 and len(bindings) > 1:
            return "ANA004"
        return matches[0][1]

    def bindings(self) -> set[str]:
        return {
            binding.lower()
            for binding, _, _ in self.entries
            if binding is not None
        }


@dataclass
class _SelectInfo:
    """What one analyzed SELECT exposes to its parent."""

    names: list[str]
    types: list[ExprType]
    #: Upper bound on rows out of the FROM tree.
    rows_scanned: int
    #: Upper bound on result rows (grouping and LIMIT applied).
    result_rows: int
    #: Expected rows after WHERE (selectivity estimate); None without
    #: a WHERE clause.  An expectation, not a bound — see
    #: :attr:`repro.analysis.CostEstimate.expected_result_rows`.
    expected_rows: int | None = None


@dataclass(frozen=True)
class _Context:
    """Where an expression sits, for aggregate/star legality."""

    rows: int
    aggregates_allowed: bool = False
    inside_aggregate: bool = False
    is_aggregate_query: bool = False
    group_expressions: tuple[ast.Expression, ...] = ()
    clause: str = "expression"


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class SQLAnalyzer:
    """Static resolver/typechecker/cost-estimator for one catalog.

    Stateless across calls; :meth:`analyze` may be invoked repeatedly
    and concurrently (each run keeps its state on a private ``_Run``).
    """

    def __init__(
        self, db: Database, cost_model: CostModel | None = None
    ) -> None:
        self.db = db
        self.cost_model = cost_model or CostModel()

    # -- entry points ----------------------------------------------------

    def analyze(
        self, sql: str | ast.Select, source: str = ""
    ) -> QueryReport:
        """Analyze SQL text (or a pre-parsed SELECT) into a QueryReport.

        ``source`` supplies the original SQL text when a pre-parsed AST
        is passed, so diagnostics can render caret excerpts.
        """
        if isinstance(sql, str):
            try:
                statement = parse_statement(sql)
            except SQLSyntaxError as error:
                return QueryReport(
                    sql=sql,
                    diagnostics=[
                        Diagnostic(
                            "ANA001",
                            str(error),
                            Severity.ERROR,
                            Span.at(error.position),
                        )
                    ],
                )
            source_text = sql
        else:
            statement = sql
            source_text = source
        if not isinstance(statement, ast.Select):
            # Only SELECT is analyzed; DDL/DML validate on execution.
            return QueryReport(sql=source_text)
        run = _Run(self.db, self.db.functions, self.cost_model)
        info = run.select(statement)
        cost = CostEstimate(
            rows_scanned=info.rows_scanned,
            result_rows=info.result_rows,
            lm_calls=run.lm_calls,
            lm_prompt_tokens=(
                run.lm_calls * self.cost_model.prompt_tokens_per_call
            ),
            lm_output_tokens=(
                run.lm_calls * self.cost_model.output_tokens_per_call
            ),
            lm_calls_batched=run.lm_calls_batched,
            expected_result_rows=info.expected_rows,
        )
        return QueryReport(
            sql=source_text, diagnostics=run.diagnostics, cost=cost
        )


class _Run:
    """One analysis pass: accumulates diagnostics and LM-call bounds."""

    def __init__(
        self,
        db: Database,
        functions: FunctionRegistry,
        cost_model: CostModel,
    ) -> None:
        self.db = db
        self.functions = functions
        self.cost_model = cost_model
        self.diagnostics: list[Diagnostic] = []
        self.lm_calls = 0
        self.lm_calls_batched = 0

    # -- diagnostics -----------------------------------------------------

    def _diag(
        self,
        code: str,
        message: str,
        position: int | None = None,
        length: int = 1,
        severity: Severity = Severity.ERROR,
    ) -> None:
        diagnostic = Diagnostic(
            code, message, severity, Span.at(position, length)
        )
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    # -- SELECT ----------------------------------------------------------

    def select(self, select: ast.Select) -> _SelectInfo:
        scope, from_rows = self._scope_for(select.source)
        items = self._expand_stars(select.items, scope)

        has_aggregate = any(
            self._contains_aggregate(item.expression) for item in items
        )
        if select.having is not None:
            has_aggregate = has_aggregate or self._contains_aggregate(
                select.having
            )
        has_aggregate = has_aggregate or any(
            self._contains_aggregate(order.expression)
            for order in select.order_by
        )

        group_by = [
            self._resolve_positional(expression, items)
            for expression in select.group_by
        ]
        is_aggregate_query = bool(group_by) or has_aggregate

        context = _Context(
            rows=from_rows,
            aggregates_allowed=True,
            is_aggregate_query=is_aggregate_query,
            group_expressions=tuple(group_by),
        )

        # GROUP BY expressions: plain column expressions, no aggregates.
        for expression in group_by:
            self._check(
                expression,
                scope,
                replace(
                    context,
                    aggregates_allowed=False,
                    clause="GROUP BY",
                ),
            )

        # SELECT items.
        item_types: list[ExprType] = []
        for item in items:
            item_types.append(
                self._check(
                    item.expression,
                    scope,
                    replace(context, clause="SELECT"),
                )
            )

        # WHERE: aggregates are illegal here.
        if select.where is not None:
            self._check(
                select.where,
                scope,
                replace(
                    context,
                    aggregates_allowed=False,
                    is_aggregate_query=False,
                    clause="WHERE",
                ),
            )

        # HAVING needs a grouping context.
        if select.having is not None:
            if not is_aggregate_query:
                self._diag(
                    "ANA006",
                    "HAVING requires GROUP BY or aggregates",
                )
            else:
                self._check_output_expression(
                    select.having, scope, items, item_types, context,
                    "HAVING",
                )

        # ORDER BY: ordinals, output aliases, or source expressions.
        names = [
            (item.alias or _expression_name(item.expression)).lower()
            for item in items
        ]
        for order in select.order_by:
            expression = order.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ) and not isinstance(expression.value, bool):
                if not 1 <= expression.value <= len(items):
                    self._diag(
                        "ANA014",
                        f"ORDER BY position {expression.value} is out of "
                        f"range (1..{len(items)})",
                    )
                continue
            if (
                isinstance(expression, ast.ColumnRef)
                and expression.table is None
                and expression.name.lower() in names
            ):
                continue  # resolves to an output column
            self._check_output_expression(
                expression, scope, items, item_types, context, "ORDER BY"
            )

        # LIMIT / OFFSET must be integer literals.
        limit_value = self._check_limit(select.limit, "LIMIT")
        self._check_limit(select.offset, "OFFSET")

        # Result-shape bookkeeping for parents and the cost estimate.
        # result_rows stays a worst-case bound (WHERE may drop
        # nothing); expected_rows applies the shared selectivity
        # estimator, for the optimizer's plan ranking only.
        result_rows = from_rows
        expected_rows: int | None = None
        if select.where is not None:
            expected_rows = round(
                from_rows
                * predicate_selectivity(
                    select.where, scope.column_stats
                )
            )
        if is_aggregate_query and not group_by:
            result_rows = 1
            if expected_rows is not None:
                expected_rows = 1
        if limit_value is not None:
            result_rows = max(0, min(result_rows, limit_value))
            if expected_rows is not None:
                expected_rows = max(0, min(expected_rows, limit_value))
        return _SelectInfo(
            names=[
                item.alias or _expression_name(item.expression)
                for item in items
            ],
            types=item_types,
            rows_scanned=from_rows,
            result_rows=result_rows,
            expected_rows=expected_rows,
        )

    def _check_output_expression(
        self,
        expression: ast.Expression,
        scope: _Scope,
        items: list[ast.SelectItem],
        item_types: list[ExprType],
        context: _Context,
        clause: str,
    ) -> None:
        """Check a HAVING/ORDER BY expression with output aliases visible.

        The planner substitutes ``item.alias`` references with the
        aliased expression before compiling, so an unqualified name
        matching an alias is legal even when no source column has it;
        the aliased expression itself was already checked as an item.
        """
        aliases = {
            item.alias.lower(): item_types[position]
            for position, item in enumerate(items)
            if item.alias
        }
        if (
            isinstance(expression, ast.ColumnRef)
            and expression.table is None
            and expression.name.lower() in aliases
        ):
            return
        self._check(
            expression,
            scope,
            replace(context, clause=clause),
            output_aliases=aliases,
        )

    def _check_limit(
        self, expression: ast.Expression | None, what: str
    ) -> int | None:
        """LIMIT/OFFSET: accept (possibly signed) integer literals only.

        The engine tolerates any constant-foldable integer expression;
        the analyzer accepts the literal subset and rejects the rest —
        over-rejection is the safe direction for admission soundness.
        """
        if expression is None:
            return None
        node = expression
        negate = False
        while isinstance(node, ast.UnaryOp) and node.op in ("-", "+"):
            if node.op == "-":
                negate = not negate
            node = node.operand
        if isinstance(node, ast.Literal) and isinstance(
            node.value, int
        ) and not isinstance(node.value, bool):
            return -node.value if negate else node.value
        self._diag("ANA011", f"{what} must be an integer literal")
        return None

    # -- FROM ------------------------------------------------------------

    def _scope_for(
        self, source: ast.FromSource | None
    ) -> tuple[_Scope, int]:
        if source is None:
            return _Scope(), 1
        if isinstance(source, ast.TableSource):
            if not self.db.has_table(source.name):
                self._diag(
                    "ANA002",
                    f"unknown table {source.name!r}",
                    source.position,
                    len(source.name),
                )
                return _Scope(open=True), 1
            table = self.db.table(source.name)
            entries = [
                (source.binding, column.name, column.dtype)
                for column in table.schema.columns
            ]
            distinct = {
                (source.binding.lower(), column.name.lower()): (
                    table.distinct_count(column.name)
                )
                for column in table.schema.columns
            }
            stats = {
                (source.binding.lower(), column.name.lower()): (
                    ColumnStats(
                        rows=len(table),
                        distinct=table.distinct_count(column.name),
                        nulls=table.null_count(column.name),
                    )
                )
                for column in table.schema.columns
            }
            return (
                _Scope(entries=entries, distinct=distinct, stats=stats),
                max(len(table), 1),
            )
        if isinstance(source, ast.SubquerySource):
            info = self.select(source.query)
            entries = [
                (
                    source.alias,
                    name,
                    dtype if dtype is not None else DataType.ANY,
                )
                for name, dtype in zip(info.names, info.types)
            ]
            return _Scope(entries=entries), max(info.result_rows, 1)
        if isinstance(source, ast.Join):
            left, left_rows = self._scope_for(source.left)
            right, right_rows = self._scope_for(source.right)
            scope = _Scope(
                entries=left.entries + right.entries,
                open=left.open or right.open,
                distinct={**left.distinct, **right.distinct},
                stats={**left.stats, **right.stats},
            )
            if source.condition is not None:
                self._check(
                    source.condition,
                    scope,
                    _Context(
                        rows=left_rows * right_rows, clause="JOIN ON"
                    ),
                )
            return scope, left_rows * right_rows
        raise AssertionError(  # pragma: no cover - parser is exhaustive
            f"unexpected FROM source {type(source).__name__}"
        )

    def _expand_stars(
        self, items: tuple[ast.SelectItem, ...], scope: _Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expression, ast.Star):
                expanded.append(item)
                continue
            star = item.expression
            if star.table is not None and not scope.open:
                if star.table.lower() not in scope.bindings():
                    self._diag(
                        "ANA002",
                        f"unknown table {star.table!r} in "
                        f"{star.table}.*",
                        star.position,
                        len(star.table),
                    )
                    continue
            for binding, name, _ in scope.entries:
                if star.table is not None and (
                    binding is None
                    or binding.lower() != star.table.lower()
                ):
                    continue
                expanded.append(
                    ast.SelectItem(ast.ColumnRef(name, binding), name)
                )
        return expanded

    # -- expressions -----------------------------------------------------

    def _check(
        self,
        expression: ast.Expression,
        scope: _Scope,
        context: _Context,
        output_aliases: dict[str, ExprType] | None = None,
    ) -> ExprType:
        """Typecheck one expression; returns its inferred type."""
        if isinstance(expression, ast.Literal):
            return (
                None
                if expression.value is None
                else infer_type(expression.value)
            )
        if isinstance(expression, ast.ColumnRef):
            return self._check_column(expression, scope, context,
                                      output_aliases)
        if isinstance(expression, ast.Star):
            self._diag(
                "ANA009",
                "'*' is only valid in SELECT items or COUNT(*)",
                expression.position,
            )
            return DataType.ANY
        if isinstance(expression, ast.UnaryOp):
            operand = self._check(
                expression.operand, scope, context, output_aliases
            )
            if expression.op == "NOT":
                return DataType.BOOLEAN
            if not _numeric_ok(operand):
                self._diag(
                    "ANA008",
                    f"cannot apply unary {expression.op!r} to a "
                    f"{_type_name(operand)} operand",
                )
            return operand if operand is not None else None
        if isinstance(expression, ast.BinaryOp):
            return self._check_binary(
                expression, scope, context, output_aliases
            )
        if isinstance(expression, ast.FunctionCall):
            return self._check_call(
                expression, scope, context, output_aliases
            )
        if isinstance(expression, ast.CaseExpression):
            if expression.operand is not None:
                self._check(
                    expression.operand, scope, context, output_aliases
                )
            results: list[ExprType] = []
            for condition, result in expression.branches:
                self._check(condition, scope, context, output_aliases)
                results.append(
                    self._check(result, scope, context, output_aliases)
                )
            if expression.default is not None:
                results.append(
                    self._check(
                        expression.default, scope, context, output_aliases
                    )
                )
            return _unify(*results)
        if isinstance(expression, ast.CastExpression):
            self._check(expression.operand, scope, context, output_aliases)
            try:
                return DataType.from_sql(expression.type_name)
            except SchemaError:
                self._diag(
                    "ANA012",
                    f"unknown type {expression.type_name!r} in CAST",
                )
                return DataType.ANY
        if isinstance(expression, ast.InList):
            self._check(expression.operand, scope, context, output_aliases)
            for item in expression.items:
                self._check(item, scope, context, output_aliases)
            return DataType.BOOLEAN
        if isinstance(expression, ast.InSubquery):
            self._check(expression.operand, scope, context, output_aliases)
            self._value_subquery(expression.subquery, "IN subquery")
            return DataType.BOOLEAN
        if isinstance(expression, ast.ExistsSubquery):
            self.select(expression.subquery)
            return DataType.BOOLEAN
        if isinstance(expression, ast.ScalarSubquery):
            info = self._value_subquery(
                expression.subquery, "scalar subquery"
            )
            if info is not None and len(info.types) == 1:
                return info.types[0]
            return DataType.ANY
        if isinstance(expression, ast.BetweenExpression):
            self._check(expression.operand, scope, context, output_aliases)
            self._check(expression.lower, scope, context, output_aliases)
            self._check(expression.upper, scope, context, output_aliases)
            return DataType.BOOLEAN
        if isinstance(expression, ast.LikeExpression):
            self._check(expression.operand, scope, context, output_aliases)
            self._check(expression.pattern, scope, context, output_aliases)
            return DataType.BOOLEAN
        if isinstance(expression, ast.IsNullExpression):
            self._check(expression.operand, scope, context, output_aliases)
            return DataType.BOOLEAN
        raise AssertionError(  # pragma: no cover - AST is exhaustive
            f"unexpected expression {type(expression).__name__}"
        )

    def _value_subquery(
        self, subquery: ast.Select, what: str
    ) -> _SelectInfo | None:
        """A subquery used as a value must expose exactly one column."""
        info = self.select(subquery)
        if len(info.names) != 1:
            self._diag(
                "ANA013",
                f"{what} must return exactly one column, "
                f"got {len(info.names)}",
            )
            return None
        return info

    def _check_column(
        self,
        node: ast.ColumnRef,
        scope: _Scope,
        context: _Context,
        output_aliases: dict[str, ExprType] | None,
    ) -> ExprType:
        if (
            output_aliases is not None
            and node.table is None
            and node.name.lower() in output_aliases
        ):
            return output_aliases[node.name.lower()]
        if scope.open:
            return DataType.ANY
        resolved = scope.resolve(node.name, node.table)
        if resolved == "ANA003":
            self._diag(
                "ANA003",
                f"unknown column {node.display()!r}",
                node.position,
                len(node.display()),
            )
            return DataType.ANY
        if resolved == "ANA004":
            self._diag(
                "ANA004",
                f"ambiguous column {node.name!r} (qualify it with a "
                "table name)",
                node.position,
                len(node.name),
            )
            return DataType.ANY
        if (
            context.is_aggregate_query
            and not context.inside_aggregate
            and context.clause in ("SELECT", "HAVING", "ORDER BY")
            and node not in context.group_expressions
        ):
            self._diag(
                "ANA010",
                f"column {node.display()!r} is neither grouped nor "
                "aggregated; the engine serves an arbitrary group "
                "member (hidden FIRST())",
                node.position,
                len(node.display()),
                severity=Severity.WARNING,
            )
        assert isinstance(resolved, DataType)
        return resolved

    def _check_binary(
        self,
        node: ast.BinaryOp,
        scope: _Scope,
        context: _Context,
        output_aliases: dict[str, ExprType] | None,
    ) -> ExprType:
        left = self._check(node.left, scope, context, output_aliases)
        right = self._check(node.right, scope, context, output_aliases)
        if node.op in ("AND", "OR"):
            return DataType.BOOLEAN
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return DataType.BOOLEAN
        if node.op == "||":
            return DataType.TEXT
        # Arithmetic: the engine raises on non-numeric operands.
        for operand_type, operand in ((left, node.left), (right, node.right)):
            if not _numeric_ok(operand_type):
                self._diag(
                    "ANA008",
                    f"arithmetic {node.op!r} over a "
                    f"{_type_name(operand_type)} operand",
                    getattr(operand, "position", None),
                )
        if node.op == "/":
            return DataType.ANY  # int/int may stay int, else float
        if left is DataType.REAL or right is DataType.REAL:
            return DataType.REAL
        if left is DataType.ANY or right is DataType.ANY:
            return DataType.ANY
        if left is None and right is None:
            return None
        return DataType.INTEGER

    # -- function calls --------------------------------------------------

    def _check_call(
        self,
        node: ast.FunctionCall,
        scope: _Scope,
        context: _Context,
        output_aliases: dict[str, ExprType] | None,
    ) -> ExprType:
        name = node.name
        is_aggregate_call = self.functions.is_aggregate(name) and (
            node.star or len(node.args) == 1
        )
        if is_aggregate_call:
            return self._check_aggregate_call(
                node, scope, context, output_aliases
            )
        if node.star:
            # FOO(*) for a non-aggregate FOO calls FOO() at runtime.
            self._diag(
                "ANA007",
                f"'*' argument is only valid for aggregates, not "
                f"{name}()",
                node.position,
                len(name),
            )
            return DataType.ANY
        if self.functions.is_aggregate(name) and not (
            self.functions.has_scalar(name)
        ):
            # COUNT(), SUM(a, b): aggregate name with non-aggregate shape.
            self._diag(
                "ANA007",
                f"aggregate {name}() takes exactly one argument "
                f"(or '*'), got {len(node.args)}",
                node.position,
                len(name),
            )
            for argument in node.args:
                self._check(argument, scope, context, output_aliases)
            return DataType.ANY
        if not self.functions.has_scalar(name):
            self._diag(
                "ANA005",
                f"unknown function {name!r}",
                node.position,
                len(name),
            )
            for argument in node.args:
                self._check(argument, scope, context, output_aliases)
            return DataType.ANY
        if self.functions.is_expensive(name):
            self.lm_calls += context.rows
            self.lm_calls_batched += self._batched_bound(node, scope,
                                                         context)
        argument_types = [
            self._check(argument, scope, context, output_aliases)
            for argument in node.args
        ]
        signature = _SCALAR_SIGNATURES.get(name)
        if signature is None:
            self._check_udf_arity(node)
            return DataType.ANY
        self._check_signature(node, signature, argument_types)
        return signature.returns

    def _batched_bound(
        self,
        node: ast.FunctionCall,
        scope: _Scope,
        context: _Context,
    ) -> int:
        """Invocation bound for one call site under the batched path.

        The batched operators invoke the UDF at most once per distinct
        argument *tuple*, so the bound is the product of each
        argument's distinct-value count: literals contribute 1, stored
        columns their catalog distinct count, anything else (computed
        expressions, subquery columns) falls back to the per-row
        bound.  Always capped by ``context.rows`` — dedup can never
        cost more than per-row execution.
        """
        bound = 1
        for argument in node.args:
            if isinstance(argument, ast.Literal):
                continue
            if isinstance(argument, ast.ColumnRef):
                distinct = scope.distinct_bound(
                    argument.name, argument.table
                )
                if distinct is not None:
                    bound *= max(distinct, 1)
                    if bound >= context.rows:
                        return context.rows
                    continue
            return context.rows
        return min(bound, context.rows)

    def _check_aggregate_call(
        self,
        node: ast.FunctionCall,
        scope: _Scope,
        context: _Context,
        output_aliases: dict[str, ExprType] | None,
    ) -> ExprType:
        name = node.name
        if not context.aggregates_allowed or context.inside_aggregate:
            where = (
                "inside another aggregate"
                if context.inside_aggregate
                else f"in {context.clause}"
            )
            self._diag(
                "ANA006",
                f"aggregate {name}() is not allowed {where}",
                node.position,
                len(name),
            )
        if node.star:
            return _AGGREGATE_SIGNATURES.get(
                name, _Signature(1, 1)
            ).returns if name == "COUNT" else DataType.ANY
        inner = replace(context, inside_aggregate=True)
        argument_type = self._check(
            node.args[0], scope, inner, output_aliases
        )
        signature = _AGGREGATE_SIGNATURES.get(name)
        if signature is None:  # registered custom aggregate
            return DataType.ANY
        if signature.kind_at(0) == "num" and not _numeric_ok(
            argument_type
        ):
            self._diag(
                "ANA008",
                f"{name}() over a {_type_name(argument_type)} argument",
                node.position,
                len(name),
            )
        if name in ("MIN", "MAX", "SUM") and signature.returns is (
            DataType.ANY
        ):
            return argument_type
        return signature.returns

    def _check_signature(
        self,
        node: ast.FunctionCall,
        signature: _Signature,
        argument_types: list[ExprType],
    ) -> None:
        count = len(node.args)
        if count < signature.min_args or (
            signature.max_args is not None and count > signature.max_args
        ):
            if signature.max_args is None:
                expected = f"at least {signature.min_args}"
            elif signature.min_args == signature.max_args:
                expected = str(signature.min_args)
            else:
                expected = f"{signature.min_args}..{signature.max_args}"
            self._diag(
                "ANA007",
                f"{node.name}() expects {expected} argument(s), "
                f"got {count}",
                node.position,
                len(node.name),
            )
            return
        for position, argument_type in enumerate(argument_types):
            kind = signature.kind_at(position)
            if kind == "num" and not _numeric_ok(argument_type):
                self._diag(
                    "ANA008",
                    f"argument {position + 1} of {node.name}() must be "
                    f"numeric, got {_type_name(argument_type)}",
                    node.position,
                    len(node.name),
                )
            elif kind == "text" and not _textual_ok(argument_type):
                self._diag(
                    "ANA008",
                    f"argument {position + 1} of {node.name}() must be "
                    f"text, got {_type_name(argument_type)}",
                    node.position,
                    len(node.name),
                )

    def _check_udf_arity(self, node: ast.FunctionCall) -> None:
        arity = _callable_arity(self.functions.scalar(node.name))
        if arity is None:
            return
        minimum, maximum = arity
        count = len(node.args)
        if count < minimum or (maximum is not None and count > maximum):
            if maximum is None:
                expected = f"at least {minimum}"
            elif minimum == maximum:
                expected = str(minimum)
            else:
                expected = f"{minimum}..{maximum}"
            self._diag(
                "ANA007",
                f"{node.name}() expects {expected} argument(s), "
                f"got {count}",
                node.position,
                len(node.name),
            )

    # -- aggregate discovery / positional resolution ---------------------

    def _is_aggregate_call(self, node: ast.Expression) -> bool:
        return (
            isinstance(node, ast.FunctionCall)
            and self.functions.is_aggregate(node.name)
            and (node.star or len(node.args) == 1)
        )

    def _contains_aggregate(self, expression: ast.Expression) -> bool:
        from repro.db.planner import _walk

        return any(
            self._is_aggregate_call(node) for node in _walk(expression)
        )

    def _resolve_positional(
        self,
        expression: ast.Expression,
        items: list[ast.SelectItem],
    ) -> ast.Expression:
        """GROUP BY ordinals / output aliases, as the planner resolves
        them."""
        if isinstance(expression, ast.Literal) and isinstance(
            expression.value, int
        ) and not isinstance(expression.value, bool):
            index = expression.value - 1
            if 0 <= index < len(items):
                return items[index].expression
            self._diag(
                "ANA014",
                f"GROUP BY position {expression.value} is out of range "
                f"(1..{len(items)})",
            )
            return ast.Literal(1)  # placeholder; error already recorded
        if isinstance(expression, ast.ColumnRef) and (
            expression.table is None
        ):
            for item in items:
                if item.alias and item.alias.lower() == (
                    expression.name.lower()
                ):
                    return item.expression
        return expression


def _expression_name(expression: ast.Expression) -> str:
    from repro.db.planner import _expression_name as planner_name

    return planner_name(expression)


def _type_name(expression_type: ExprType) -> str:
    return "NULL" if expression_type is None else expression_type.value
