"""Static concurrency-safety analyzer (``python -m repro lint --conc``).

ROADMAP item 2 (sharded, multi-core execution) will multiply the number
of threads mutating the serving layer's shared state; this module is
the gate that must stay green before (and after) that refactor.  It is
an interprocedural ``ast`` pass over ``src/repro/`` that

(a) builds a **class-attribute mutation map** per module — every
    ``self.x = ...`` / ``self.x += ...`` / ``self.x.append(...)`` /
    ``self.x[k] = v`` site outside ``__init__``;

(b) infers **locksets**: which locks are provably held at each site,
    tracking ``with self._lock:`` / ``with self._cv:`` scopes (and
    ``racecheck.guard(name, self._lock)`` wrappers) *through helper
    calls* — a private helper invoked only from lock-held call sites
    inherits those locksets, and the ``*_locked`` naming contract seeds
    helpers with their class's locks (this engine also backs the
    determinism linter's DET105, fixing its aliased-reference blind
    spot);

(c) identifies classes whose instances **cross the worker boundary**:
    the transitive construction/annotation closure from
    :data:`SHARED_ROOTS` (``TagServer``, ``BatchingLM``, ``Database``,
    ``UDFMemoCache``, ``MetricsRegistry``, ``Tracer``,
    ``SemanticResultCache``, ``QueryRegistry``).

The rule taxonomy (codes are stable API, tests pin them):

======= ==============================================================
code    rule
======= ==============================================================
CONC201 unguarded shared mutation: an attribute that is mutated under
        a lock somewhere in its class is also mutated on a path where
        no lock is provably held
CONC202 inconsistent lockset: every mutation of an attribute holds
        *some* lock, but no single lock is common to all sites — two
        threads can mutate concurrently while each "holds the lock"
CONC203 lock-order cycle: lock B is acquired while holding A on one
        path and A while holding B on another (potential deadlock)
CONC204 a ``*_locked`` helper is reachable with an empty lockset —
        the interprocedural successor of DET105, also catching
        aliased method references and ``self.__class__`` dispatch
CONC205 escaping guarded state: a method returns or yields a guarded
        mutable container attribute itself (not a copy), handing
        callers unsynchronized access to it
CONC206 check-then-act lazy initialization: ``if self._x is None:
        self._x = ...`` with no lock held, on an attribute that is
        lock-guarded elsewhere
CONC207 mutable class-level attribute (list/dict/set literal in the
        class body) — state silently shared across instances *and*
        threads
CONC208 manual ``.acquire()`` whose ``.release()`` is not in a
        ``finally`` block — an exception between them leaks the lock
======= ==============================================================

Findings are suppressed via ``[tool.repro.conc]`` in ``pyproject.toml``
(same ``"<path>:<CODE>  # why"`` entry format as the determinism
linter's ``[tool.repro.lint]``).

Scope and soundness.  This is a linter, not a verifier: it reasons per
class with a closed-world assumption for underscore-private helpers
(they are called only from the call sites the class itself contains)
and an open-world assumption for public methods (callable with no
locks held).  Dynamic dispatch through non-self objects, locks passed
across objects, and monkey-patching are out of scope — the dynamic
layer (:mod:`repro.obs.racecheck`) covers what static reasoning cannot.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.11 is the floor
    tomllib = None

#: Class names whose instances are, by construction, shared across
#: TagServer worker threads; the worker-boundary closure starts here.
SHARED_ROOTS = (
    "TagServer",
    "BatchingLM",
    "Database",
    "UDFMemoCache",
    "MetricsRegistry",
    "Tracer",
    "SemanticResultCache",
    "QueryRegistry",
    "ShardDedup",
    "Exchange",
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
    }
)

#: Name tokens marking a dotted name as a synchronization primitive.
#: Matched against ``_``-separated tokens of the leaf name, not as raw
#: substrings — ``self.clock`` must not read as a lock.
_LOCKISH = frozenset(
    {"lock", "rlock", "cv", "cvar", "mutex", "cond", "condition",
     "sem", "semaphore"}
)

#: Methods whose bodies run before the instance can be shared.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})

#: Container constructors whose results are mutable shared state.
_CONTAINER_CALLS = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque"}
)


def is_lockish(dotted: str) -> bool:
    """Does a dotted name look like a synchronization primitive?"""
    leaf = dotted.rsplit(".", 1)[-1].lower()
    return any(token in _LOCKISH for token in leaf.split("_") if token)


def dotted_name(expression: ast.expr) -> str:
    """Best-effort ``a.b.c`` rendering of an expression ('' if none)."""
    parts: list[str] = []
    while isinstance(expression, ast.Attribute):
        parts.append(expression.attr)
        expression = expression.value
    if isinstance(expression, ast.Name):
        parts.append(expression.id)
    else:
        return ""
    return ".".join(reversed(parts))


def with_item_locks(item: ast.withitem) -> frozenset[str]:
    """Lock names one ``with`` item acquires.

    Recognizes the lock itself (``with self._lock:``), a blocking
    acquire-style call (``with self._cv:`` is the same node shape), and
    the dynamic checker's wrapper (``with racecheck.guard("name",
    self._lock):`` — any lock-ish *argument* counts).
    """
    expression = item.context_expr
    names: set[str] = set()
    direct = dotted_name(expression)
    if direct and is_lockish(direct):
        names.add(direct)
    if isinstance(expression, ast.Call):
        callee = dotted_name(expression.func)
        if callee and is_lockish(callee):
            names.add(callee)
        for argument in expression.args:
            inner = dotted_name(argument)
            if inner and is_lockish(inner):
                names.add(inner)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Findings and report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConcFinding:
    """One concurrency finding, addressable for allowlisting."""

    path: str  # repo-root-relative, forward slashes
    line: int
    column: int
    code: str
    message: str
    #: ``Class.method`` (or ``<module>.function``) the finding is in.
    where: str = ""

    @property
    def key(self) -> str:
        """The ``path:CODE`` string an allowlist entry must match."""
        return f"{self.path}:{self.code}"

    def render(self) -> str:
        site = f" [{self.where}]" if self.where else ""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} {self.message}{site}"
        )

    def __str__(self) -> str:
        return self.render()


@dataclass
class ConcurrencyReport:
    """Everything one analyzer run learned, QueryReport-style."""

    findings: list[ConcFinding] = field(default_factory=list)
    suppressed: list[ConcFinding] = field(default_factory=list)
    #: Worker-shared classes, as ``Class (path)``, name-sorted.
    shared_classes: list[str] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Per-rule finding counts, code-sorted."""
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))

    def render(self) -> str:
        lines = [
            f"concurrency: {'ok' if self.ok else 'unsafe'} "
            f"({len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_analyzed} file(s))"
        ]
        for finding in self.findings:
            lines.append(finding.render())
        counts = self.counts()
        if counts:
            lines.append(
                "per-rule: "
                + ", ".join(f"{code} x{n}" for code, n in counts.items())
            )
        if self.shared_classes:
            lines.append(
                "worker-shared surface: " + ", ".join(self.shared_classes)
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_analyzed": self.files_analyzed,
                "counts": self.counts(),
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "column": f.column,
                        "code": f.code,
                        "message": f.message,
                        "where": f.where,
                    }
                    for f in self.findings
                ],
                "suppressed": len(self.suppressed),
                "shared_classes": self.shared_classes,
            },
            indent=2,
            sort_keys=True,
        )


# ---------------------------------------------------------------------------
# Per-function facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationSite:
    """One ``self.<attr>`` mutation and the locks locally held there."""

    attr: str
    line: int
    column: int
    locks: frozenset[str]


@dataclass(frozen=True)
class CallSite:
    """One intra-class ``self.<method>()`` call (alias-resolved)."""

    callee: str
    line: int
    column: int
    locks: frozenset[str]


@dataclass
class FunctionFacts:
    """Everything one method/function body contributes to inference."""

    name: str
    line: int
    mutations: list[MutationSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: ``(held, acquired, line)`` local lock-order edges.
    order_edges: list[tuple[str, str, int]] = field(default_factory=list)
    #: Every lock acquisition: ``(lock, locally-held locks, line)`` —
    #: entry locksets extend these into interprocedural order edges.
    acquisitions: list[tuple[str, frozenset[str], int]] = field(
        default_factory=list
    )
    #: ``*_locked`` calls on non-self receivers (``other._f_locked()``,
    #: bare ``f_locked()``) — lock-discipline checked, not call-graph
    #: edges.
    foreign_locked_calls: list[CallSite] = field(default_factory=list)
    #: ``return self._x`` / ``yield self._x`` of a bare attribute.
    escapes: list[tuple[str, int, int]] = field(default_factory=list)
    #: ``if self._x is None: self._x = ...`` sites: (attr, line, col, locks)
    lazy_inits: list[tuple[str, int, int, frozenset[str]]] = field(
        default_factory=list
    )
    #: ``<lockish>.acquire()`` sites, pruned against finally-releases.
    bad_acquires: list[tuple[str, int, int]] = field(default_factory=list)
    #: Dotted bases ``release()``d inside a ``finally`` block anywhere
    #: in this function — their acquires follow the disciplined idiom.
    finally_released: set[str] = field(default_factory=set)


class _FunctionVisitor(ast.NodeVisitor):
    """Extract :class:`FunctionFacts` from one function body.

    ``self_name`` is the receiver parameter ('' for module-level
    functions, which then contribute plain-name call facts only).
    """

    def __init__(
        self, facts: FunctionFacts, self_name: str, entry: frozenset[str]
    ) -> None:
        self.facts = facts
        self.self_name = self_name
        self.locks: frozenset[str] = entry
        #: local alias -> self-method name (``m = self._flush``).
        self.aliases: dict[str, str] = {}

    # -- helpers ---------------------------------------------------------

    def _self_attr(self, node: ast.expr) -> str | None:
        """``attr`` when ``node`` is ``self.attr`` or ``self.__class__.attr``."""
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        if isinstance(value, ast.Name) and value.id == self.self_name:
            return node.attr
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "__class__"
            and isinstance(value.value, ast.Name)
            and value.value.id == self.self_name
        ):
            return node.attr
        return None

    def _mutate(self, attr: str, node: ast.AST) -> None:
        self.facts.mutations.append(
            MutationSite(attr, node.lineno, node.col_offset, self.locks)
        )

    def _call(self, callee: str, node: ast.AST) -> None:
        self.facts.calls.append(
            CallSite(callee, node.lineno, node.col_offset, self.locks)
        )

    # -- lock scopes -----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: set[str] = set()
        for item in node.items:
            acquired |= with_item_locks(item)
            self.visit(item.context_expr)
        if acquired:
            for lock in acquired:
                self.facts.acquisitions.append(
                    (lock, self.locks, node.lineno)
                )
            for held in self.locks:
                for lock in acquired:
                    if held != lock:
                        self.facts.order_edges.append(
                            (held, lock, node.lineno)
                        )
            saved = self.locks
            self.locks = saved | acquired
            for statement in node.body:
                self.visit(statement)
            self.locks = saved
        else:
            for statement in node.body:
                self.visit(statement)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- mutations -------------------------------------------------------

    def _mutated_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutated_target(element)
            return
        attr = self._self_attr(target)
        if attr is not None:
            self._mutate(attr, target)
            return
        # self.x[k] = v / del self.x[k]: mutation of self.x
        if isinstance(target, ast.Subscript):
            inner = self._self_attr(target.value)
            if inner is not None:
                self._mutate(inner, target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutated_target(target)
        # Alias tracking: ``m = self._drain_locked`` (or via __class__).
        if len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            attr = self._self_attr(node.value)
            if attr is not None:
                self.aliases[node.targets[0].id] = attr
            elif isinstance(node.value, ast.Name):
                source = self.aliases.get(node.value.id)
                if source is not None:
                    self.aliases[node.targets[0].id] = source
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutated_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._mutated_target(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._mutated_target(target)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        attr = self._self_attr(node.func)
        if attr is not None:
            self._call(attr, node)
        elif isinstance(node.func, ast.Name):
            target = self.aliases.get(node.func.id)
            if target is not None:
                self._call(target, node)
            elif not self.self_name:
                # Module-level function: plain-name calls are its
                # call facts (no receiver to resolve through).
                self._call(node.func.id, node)
            elif node.func.id.endswith("_locked"):
                self.facts.foreign_locked_calls.append(
                    CallSite(
                        node.func.id,
                        node.lineno,
                        node.col_offset,
                        self.locks,
                    )
                )
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr.endswith("_locked"):
                # Non-self receiver (``server._drain_locked()``): still
                # subject to lock discipline at this call site.
                self.facts.foreign_locked_calls.append(
                    CallSite(
                        node.func.attr,
                        node.lineno,
                        node.col_offset,
                        self.locks,
                    )
                )
            # Mutator method on a self attribute: self.x.append(...)
            owner = self._self_attr(node.func.value)
            if owner is not None and node.func.attr in _MUTATORS:
                self._mutate(owner, node)
            if node.func.attr == "acquire":
                base = dotted_name(node.func.value)
                if base and is_lockish(base):
                    self.facts.bad_acquires.append(
                        (base, node.lineno, node.col_offset)
                    )
        self.generic_visit(node)

    # -- escapes ---------------------------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            attr = self._self_attr(node.value)
            if attr is not None:
                self.facts.escapes.append(
                    (attr, node.lineno, node.col_offset)
                )
            self.visit(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            attr = self._self_attr(node.value)
            if attr is not None:
                self.facts.escapes.append(
                    (attr, node.lineno, node.col_offset)
                )
            self.visit(node.value)

    # -- check-then-act --------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        attr = self._lazy_guard_attr(node.test)
        if attr is not None:
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and self._self_attr(statement.targets[0]) == attr
                ):
                    self.facts.lazy_inits.append(
                        (
                            attr,
                            node.lineno,
                            node.col_offset,
                            self.locks,
                        )
                    )
                    break
        self.generic_visit(node)

    def _lazy_guard_attr(self, test: ast.expr) -> str | None:
        """``attr`` when the test is ``self.attr is None`` / ``not self.attr``."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return self._self_attr(test.left)
        if isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            return self._self_attr(test.operand)
        return None

    # -- nested scopes ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def inherits the locks held at its definition site
        # only loosely (it may run later); analyze its body with the
        # *current* lockset, the common case being immediate helpers.
        for statement in node.body:
            self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Try(self, node: ast.Try) -> None:
        # ``x.acquire()`` anywhere in this function is disciplined when
        # ``x.release()`` sits in a finally block (the classic
        # acquire-before-try idiom puts the acquire *outside* the try).
        for statement in node.finalbody:
            for sub in ast.walk(statement):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                ):
                    base = dotted_name(sub.func.value)
                    if base:
                        self.facts.finally_released.add(base)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Per-class model
# ---------------------------------------------------------------------------


@dataclass
class ClassModel:
    """Everything inference needs about one class."""

    name: str
    path: str
    line: int
    methods: dict[str, FunctionFacts] = field(default_factory=dict)
    #: Locks this class ever acquires (dotted, e.g. ``self._lock``).
    lock_names: set[str] = field(default_factory=set)
    #: Attributes initialized to mutable containers in a constructor.
    container_attrs: set[str] = field(default_factory=set)
    #: Class names referenced by construction or __init__ annotation.
    referenced: set[str] = field(default_factory=set)
    #: Class-level mutable literals: (name, line, col).
    class_mutables: list[tuple[str, int, int]] = field(
        default_factory=list
    )

    @property
    def owns_locks(self) -> bool:
        return bool(self.lock_names)

    def entry_locksets(self) -> dict[str, frozenset[frozenset[str]]]:
        """Fixpoint: the locksets each method can be *entered* with.

        - ``*_locked`` methods with no internal callers fall back to
          the naming contract: assumed entered with every class lock
          held (the caller promised *a* lock; one-lock classes make
          this exact).
        - Underscore-private methods with internal callers are
          closed-world: entered only from those sites.
        - Everything else additionally admits the empty lockset
          (external, unlocked callers).
        """
        callers: dict[str, list[tuple[str, frozenset[str]]]] = {
            name: [] for name in self.methods
        }
        for name, facts in self.methods.items():
            for call in facts.calls:
                if call.callee in self.methods:
                    callers[call.callee].append((name, call.locks))

        contract = frozenset(self.lock_names) or frozenset(
            {"<caller-lock>"}
        )
        entries: dict[str, set[frozenset[str]]] = {}
        for name in self.methods:
            if name.endswith("_locked") and not callers[name]:
                entries[name] = {contract}
            elif (
                name.startswith("_")
                and not name.startswith("__")
                and callers[name]
            ):
                entries[name] = set()
            else:
                entries[name] = {frozenset()}
        # Propagate caller entry locksets through call edges to a
        # fixpoint (bounded: lockset lattice is finite and grows only).
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for name, sites in callers.items():
                if name.endswith("_locked") and not sites:
                    continue
                for caller, site_locks in sites:
                    for caller_entry in entries.get(caller, set()):
                        candidate = caller_entry | site_locks
                        if candidate not in entries[name]:
                            entries[name].add(candidate)
                            changed = True
        # A *_locked method that picked up internal callers keeps the
        # contract only if some caller actually held a lock; internal
        # unlocked call sites are exactly what CONC204 must flag, so
        # they stay visible as empty entries.
        return {
            name: frozenset(sets) if sets else frozenset({frozenset()})
            for name, sets in entries.items()
        }


class _ModuleCollector(ast.NodeVisitor):
    """Build :class:`ClassModel`\\ s (plus module-level facts) for a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.classes: list[ClassModel] = []
        #: Module-level functions, modeled as one pseudo-class.
        self.module_functions: dict[str, FunctionFacts] = {}

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        model = ClassModel(node.name, self.path, node.lineno)
        for statement in node.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._collect_method(model, statement)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if self._is_mutable_literal(statement.value):
                            model.class_mutables.append(
                                (
                                    target.id,
                                    statement.lineno,
                                    statement.col_offset,
                                )
                            )
            elif isinstance(statement, ast.AnnAssign):
                if (
                    isinstance(statement.target, ast.Name)
                    and statement.value is not None
                    and self._is_mutable_literal(statement.value)
                ):
                    model.class_mutables.append(
                        (
                            statement.target.id,
                            statement.lineno,
                            statement.col_offset,
                        )
                    )
        self.classes.append(model)
        # Nested classes are rare here; don't descend.

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set")
        )

    def _collect_method(
        self, model: ClassModel, node: ast.FunctionDef
    ) -> None:
        self_name = node.args.args[0].arg if node.args.args else ""
        facts = FunctionFacts(node.name, node.lineno)
        visitor = _FunctionVisitor(facts, self_name, frozenset())
        for statement in node.body:
            visitor.visit(statement)
        model.methods[node.name] = facts
        # Locks: any with-scope lock rooted at self.
        for sub in ast.walk(node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    for lock in with_item_locks(item):
                        if lock.startswith(f"{self_name}."):
                            model.lock_names.add(
                                "self." + lock.split(".", 1)[1]
                            )
        # Constructor facts: container attrs, referenced classes.
        if node.name in _CONSTRUCTORS:
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Attribute)
                    and isinstance(sub.targets[0].value, ast.Name)
                    and sub.targets[0].value.id == self_name
                ):
                    if self._is_container(sub.value):
                        model.container_attrs.add(sub.targets[0].attr)
            for argument in node.args.args + node.args.kwonlyargs:
                annotation = argument.annotation
                if annotation is not None:
                    for name in self._annotation_names(annotation):
                        model.referenced.add(name)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Name
            ):
                model.referenced.add(sub.func.id)

    @staticmethod
    def _annotation_names(annotation: ast.expr) -> list[str]:
        names = []
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Constant) and isinstance(
                sub.value, str
            ):
                # String annotations: pull identifiers loosely.
                for token in sub.value.replace("|", " ").split():
                    names.append(token.strip("\"'[](),. "))
        return names

    @staticmethod
    def _is_container(value: ast.expr) -> bool:
        if isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)
        ):
            return True
        if isinstance(value, ast.Call):
            callee = value.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else ""
            )
            return name in _CONTAINER_CALLS
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        facts = FunctionFacts(node.name, node.lineno)
        visitor = _FunctionVisitor(facts, "", frozenset())
        for statement in node.body:
            visitor.visit(statement)
        self.module_functions[node.name] = facts

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Rules over the model
# ---------------------------------------------------------------------------


def _effective_locksets(
    entries: frozenset[frozenset[str]], site_locks: frozenset[str]
) -> list[frozenset[str]]:
    return [entry | site_locks for entry in entries]


def unlocked_locked_calls(
    model: ClassModel,
    entries: dict[str, frozenset[frozenset[str]]] | None = None,
) -> list[tuple[str, int, int, str]]:
    """``(callee, line, column, method)`` for every ``*_locked`` call
    reachable with an empty effective lockset.

    The shared engine behind CONC204 *and* the determinism linter's
    DET105: interprocedural entry locksets plus local ``with`` scopes,
    alias-resolved self-calls (``m = self._f_locked; m()``),
    ``self.__class__`` dispatch, and non-self receivers all included.
    Call sites inside ``*_locked`` methods are exempt — the violation,
    if any, is at the unlocked call *into* the locked subgraph.
    """
    if entries is None:
        entries = model.entry_locksets()
    results: list[tuple[str, int, int, str]] = []
    for name, facts in model.methods.items():
        if name.endswith("_locked"):
            continue
        method_entries = entries.get(name, frozenset({frozenset()}))
        for call in list(facts.calls) + list(facts.foreign_locked_calls):
            if not call.callee.endswith("_locked"):
                continue
            effective = _effective_locksets(method_entries, call.locks)
            if any(not locks for locks in effective):
                results.append(
                    (call.callee, call.line, call.column, name)
                )
    results.sort(key=lambda item: (item[1], item[2], item[0]))
    return results


def unlocked_module_locked_calls(
    functions: dict[str, FunctionFacts],
) -> list[tuple[str, int, int, str]]:
    """Module-level counterpart of :func:`unlocked_locked_calls`."""
    results: list[tuple[str, int, int, str]] = []
    for name, facts in sorted(functions.items()):
        if name.endswith("_locked"):
            continue
        for call in list(facts.calls) + list(facts.foreign_locked_calls):
            if call.callee.endswith("_locked") and not call.locks:
                results.append(
                    (call.callee, call.line, call.column, name)
                )
    results.sort(key=lambda item: (item[1], item[2], item[0]))
    return results


def _check_class(
    model: ClassModel, shared: set[str]
) -> list[ConcFinding]:
    findings: list[ConcFinding] = []
    entries = model.entry_locksets()
    tag = (
        " (worker-shared)" if model.name in shared else ""
    )

    def flag(
        code: str, message: str, line: int, column: int, method: str
    ) -> None:
        findings.append(
            ConcFinding(
                model.path,
                line,
                column,
                code,
                message + tag,
                f"{model.name}.{method}",
            )
        )

    # Gather per-attribute mutation sites with effective locksets.
    per_attr: dict[
        str, list[tuple[str, MutationSite, list[frozenset[str]]]]
    ] = {}
    for name, facts in model.methods.items():
        if name in _CONSTRUCTORS:
            continue
        method_entries = entries.get(name, frozenset({frozenset()}))
        for site in facts.mutations:
            effective = _effective_locksets(method_entries, site.locks)
            per_attr.setdefault(site.attr, []).append(
                (name, site, effective)
            )

    guarded_attrs: set[str] = set()
    for attr, sites in sorted(per_attr.items()):
        fully_guarded = [
            entry
            for entry in sites
            if all(locks for locks in entry[2])
        ]
        if fully_guarded:
            guarded_attrs.add(attr)
        if not model.owns_locks:
            continue
        # CONC201: guarded somewhere, reachable unguarded elsewhere.
        if fully_guarded:
            for name, site, effective in sites:
                if any(not locks for locks in effective):
                    flag(
                        "CONC201",
                        f"attribute self.{attr} is lock-guarded "
                        "elsewhere but mutated here with no lock "
                        "held on some path",
                        site.line,
                        site.column,
                        name,
                    )
        # CONC202: every site guarded, but no common lock.
        if fully_guarded and len(fully_guarded) == len(sites):
            common: frozenset[str] | None = None
            for _, _, effective in sites:
                for locks in effective:
                    common = (
                        locks if common is None else common & locks
                    )
            if common is not None and not common:
                name, site, _ = sites[-1]
                flag(
                    "CONC202",
                    f"attribute self.{attr} is mutated under "
                    "disjoint locksets — no single lock orders "
                    "all writers",
                    site.line,
                    site.column,
                    name,
                )

    # CONC203: lock-order cycles over this class's acquisition edges.
    edges: dict[str, set[str]] = {}
    edge_sites: dict[tuple[str, str], tuple[int, str]] = {}
    for name, facts in model.methods.items():
        method_entries = entries.get(name, frozenset({frozenset()}))
        for held, acquired, line in facts.order_edges:
            edges.setdefault(held, set()).add(acquired)
            edge_sites.setdefault((held, acquired), (line, name))
        # Locks held at *entry* also order ahead of local acquires:
        # a helper called under lock A that takes lock B is an A->B
        # edge even though no single function nests the two scopes.
        for lock, local_locks, line in facts.acquisitions:
            for entry_locks in method_entries:
                for held in entry_locks | local_locks:
                    if held != lock and not held.startswith("<"):
                        edges.setdefault(held, set()).add(lock)
                        edge_sites.setdefault(
                            (held, lock), (line, name)
                        )
    for cycle in _find_cycles(edges):
        first, second = cycle[0], cycle[1 % len(cycle)]
        line, name = edge_sites.get((first, second), (model.line, ""))
        flag(
            "CONC203",
            "lock-order cycle "
            + " -> ".join(cycle + [cycle[0]])
            + " (potential deadlock)",
            line,
            0,
            name,
        )

    # CONC204: *_locked helpers reachable with an empty lockset.
    for callee, line, column, name in unlocked_locked_calls(
        model, entries
    ):
        flag(
            "CONC204",
            f"{callee}() reachable with no lock held",
            line,
            column,
            name,
        )

    # CONC205: returning/yielding a guarded mutable container.
    for name, facts in model.methods.items():
        for attr, line, column in facts.escapes:
            if (
                attr in model.container_attrs
                and attr in guarded_attrs
            ):
                flag(
                    "CONC205",
                    f"guarded container self.{attr} escapes by "
                    "return/yield — callers get unsynchronized "
                    "access (return a copy)",
                    line,
                    column,
                    name,
                )

    # CONC206: unlocked check-then-act lazy init of a guarded attr.
    for name, facts in model.methods.items():
        if name in _CONSTRUCTORS:
            continue
        method_entries = entries.get(name, frozenset({frozenset()}))
        for attr, line, column, locks in facts.lazy_inits:
            if attr not in guarded_attrs:
                continue
            effective = _effective_locksets(method_entries, locks)
            if any(not held for held in effective):
                flag(
                    "CONC206",
                    f"check-then-act lazy init of guarded "
                    f"self.{attr} outside the lock (two threads "
                    "can both see None and both initialize)",
                    line,
                    column,
                    name,
                )

    # CONC207: class-level mutable literals.  ALL-CAPS names follow
    # the read-only-constant convention and are exempt — flagging them
    # would punish lookup tables that are never written.
    for attr, line, column in model.class_mutables:
        if attr.lstrip("_").isupper():
            continue
        flag(
            "CONC207",
            f"mutable class attribute {attr} is shared across "
            "instances and threads — move it into __init__",
            line,
            column,
            "<class>",
        )

    # CONC208: manual acquire without finally-release.
    for name, facts in model.methods.items():
        for lock, line, column in facts.bad_acquires:
            if lock in facts.finally_released:
                continue
            flag(
                "CONC208",
                f"{lock}.acquire() without release() in a finally "
                "block — an exception leaks the lock (prefer "
                "'with')",
                line,
                column,
                name,
            )
    return findings


def _check_module_functions(
    path: str, functions: dict[str, FunctionFacts]
) -> list[ConcFinding]:
    """Module-level rules: CONC204-equivalent and CONC208."""
    findings: list[ConcFinding] = []
    # Only *_locked discipline applies at module level; the
    # receiver-based rules need a class.
    for callee, line, column, name in unlocked_module_locked_calls(
        functions
    ):
        findings.append(
            ConcFinding(
                path,
                line,
                column,
                "CONC204",
                f"{callee}() reachable with no lock held",
                f"<module>.{name}",
            )
        )
    for name, facts in sorted(functions.items()):
        for lock, line, column in facts.bad_acquires:
            if lock in facts.finally_released:
                continue
            findings.append(
                ConcFinding(
                    path,
                    line,
                    column,
                    "CONC208",
                    f"{lock}.acquire() without release() in a "
                    "finally block — an exception leaks the lock "
                    "(prefer 'with')",
                    f"<module>.{name}",
                )
            )
    return findings


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles in a small digraph, deterministically ordered.

    Returns each cycle once, rotated so its lexically-smallest node
    leads.  The graphs here are a handful of lock names, so a simple
    DFS enumeration is plenty.
    """
    cycles: set[tuple[str, ...]] = set()

    def walk(start: str, node: str, trail: list[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start and len(trail) > 1:
                smallest = min(trail)
                pivot = trail.index(smallest)
                cycles.add(tuple(trail[pivot:] + trail[:pivot]))
            elif nxt not in trail and nxt > start:
                walk(start, nxt, trail + [nxt])

    for start in sorted(edges):
        walk(start, start, [start])
    return [list(cycle) for cycle in sorted(cycles)]


# ---------------------------------------------------------------------------
# Worker-boundary closure
# ---------------------------------------------------------------------------


def shared_closure(
    classes: list[ClassModel], roots: tuple[str, ...] = SHARED_ROOTS
) -> set[str]:
    """Class names reachable from the shared roots by construction or
    constructor annotation — the worker-crossing surface."""
    by_name = {model.name: model for model in classes}
    shared = {name for name in roots if name in by_name}
    frontier = list(shared)
    while frontier:
        current = frontier.pop()
        model = by_name.get(current)
        if model is None:
            continue
        for referenced in sorted(model.referenced):
            if referenced in by_name and referenced not in shared:
                shared.add(referenced)
                frontier.append(referenced)
    return shared


# ---------------------------------------------------------------------------
# Running the analyzer
# ---------------------------------------------------------------------------


def collect_file(
    path: Path, root: Path
) -> tuple[list[ClassModel], dict[str, FunctionFacts], str]:
    relative = path.relative_to(root).as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    collector = _ModuleCollector(relative)
    collector.visit(tree)
    return collector.classes, collector.module_functions, relative


def analyze_source(source: str, path: str = "<memory>") -> list[ConcFinding]:
    """Analyze one module's source text (test/fixture entry point)."""
    collector = _ModuleCollector(path)
    collector.visit(ast.parse(source))
    shared = shared_closure(collector.classes)
    findings: list[ConcFinding] = []
    for model in collector.classes:
        findings.extend(_check_class(model, shared))
    findings.extend(
        _check_module_functions(path, collector.module_functions)
    )
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.column, f.code)
    )


def load_allowlist(root: Path) -> dict[str, str]:
    """``path:CODE -> justification`` from pyproject's [tool.repro.conc]."""
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    entries = (
        data.get("tool", {}).get("repro", {}).get("conc", {}).get("allow", [])
    )
    allowlist: dict[str, str] = {}
    for entry in entries:
        key, _, justification = entry.partition("#")
        allowlist[key.strip()] = justification.strip()
    return allowlist


def analyze_tree(
    root: Path, subdirectory: str = "src"
) -> ConcurrencyReport:
    """Analyze every ``.py`` under ``root/subdirectory``.

    The shared-class closure is computed over the *whole* tree (so
    ``Database`` in ``db/`` marks ``UDFMemoCache`` even though
    ``TagServer`` lives in ``serve/``), then each class is checked.
    """
    allowlist = load_allowlist(root)
    all_classes: list[ClassModel] = []
    module_functions: list[tuple[str, dict[str, FunctionFacts]]] = []
    files = 0
    for path in sorted((root / subdirectory).rglob("*.py")):
        try:
            classes, functions, relative = collect_file(path, root)
        except SyntaxError:
            continue  # the determinism linter reports DET100 for these
        files += 1
        all_classes.extend(classes)
        module_functions.append((relative, functions))
    shared = shared_closure(all_classes)
    findings: list[ConcFinding] = []
    for model in all_classes:
        findings.extend(_check_class(model, shared))
    for relative, functions in module_functions:
        findings.extend(_check_module_functions(relative, functions))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    reported = [f for f in findings if f.key not in allowlist]
    suppressed = [f for f in findings if f.key in allowlist]
    by_name = {model.name: model for model in all_classes}
    # The full closure includes plenty of effectively-immutable carrier
    # dataclasses; the *interesting* shared surface is the subset that
    # owns locks or mutates instance state after construction.
    mutable_shared = [
        name
        for name in sorted(shared)
        if by_name[name].owns_locks
        or any(
            facts.mutations
            for method, facts in by_name[name].methods.items()
            if method not in _CONSTRUCTORS
        )
    ]
    return ConcurrencyReport(
        findings=reported,
        suppressed=suppressed,
        shared_classes=[
            f"{name} ({by_name[name].path})" for name in mutable_shared
        ],
        files_analyzed=files,
    )
