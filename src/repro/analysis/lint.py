"""Determinism linter for this codebase (``python -m repro lint``).

The deterministic serving layer's guarantees (bit-identical reports for
a fixed seed, at any worker count) only hold if *no* code path reads
wall-clock time, consumes unseeded randomness, or mutates shared state
outside its lock.  Those invariants are easy to break in review-sized
diffs, so this module enforces them statically over ``src/`` with
Python's own ``ast``:

======= ==============================================================
code    rule
======= ==============================================================
DET101  wall-clock read (``time.time``/``monotonic``/``perf_counter``/
        ``process_time``, ``datetime.now``/``utcnow``, ``date.today``)
        anywhere but ``serve/clock.py`` — simulated time must come from
        the virtual clock
DET102  unseeded randomness: module-level ``random.*`` calls (use a
        seeded ``random.Random`` instance) or ``numpy.random.*`` calls
        other than ``default_rng``/``Generator``/``SeedSequence``
DET103  bare ``except:`` (swallows ``KeyboardInterrupt`` and hides the
        failure taxonomy the serving layer depends on)
DET104  mutable default argument (``def f(x=[])``) — shared across
        calls, a classic source of cross-request state leaks
DET105  lock discipline: a ``*_locked`` helper reachable with an empty
        lockset (the naming convention the serve layer uses for state
        that must be mutated under its lock).  Backed by the
        interprocedural lockset inference in
        :mod:`repro.analysis.concurrency`, so aliased method references
        (``m = self._f_locked; m()``), ``self.__class__`` dispatch,
        helpers whose callers hold the lock for them, and
        ``racecheck.guard(...)``-wrapped scopes are all resolved —
        fixing the old name-only check's blind spots in both directions
DET106  runtime identity in trace stamping: ``id()``/``hash()``/
        ``uuid.*`` calls inside ``repro/obs/`` — span identity must be
        assigned at export time from (request index, tree order), never
        from interpreter addresses, salted hashes, or UUIDs, or trace
        bytes vary run-to-run
======= ==============================================================

Findings can be suppressed via ``[tool.repro.lint]`` in
``pyproject.toml``::

    [tool.repro.lint]
    allow = [
        "src/repro/serve/clock.py:DET101  # the clock IS the time source",
    ]

Each entry is ``<path>:<CODE>`` with an optional ``#``-comment
justification; the path is repo-root-relative with forward slashes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

# One-way dependency: the linter consumes the concurrency analyzer's
# lockset engine (for DET105); concurrency.py never imports this module.
from repro.analysis import concurrency as _conc

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.11 is the floor
    tomllib = None

#: Paths (suffix-matched, "/"-normalized) where DET101 is expected:
#: the virtual clock itself is the one sanctioned time source.
_CLOCK_PATHS = ("serve/clock.py",)

#: Path fragment ("/"-normalized) marking the observability package,
#: where DET106 forbids runtime-identity sources in span stamping.
_OBS_FRAGMENT = "repro/obs/"

#: Builtins whose results vary across interpreter runs (addresses,
#: salted string hashing) — banned in repro/obs/ by DET106.
_IDENTITY_BUILTINS = ("id", "hash")

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: numpy.random entry points that take an explicit seed.
_SEEDED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "RandomState"}

#: random-module attributes that are classes (instantiating is fine,
#: the instance is seeded explicitly), not global-state functions.
_RANDOM_CLASSES = {"Random", "SystemRandom"}


@dataclass(frozen=True)
class LintFinding:
    """One linter finding, addressable for allowlisting."""

    path: str  # repo-root-relative, forward slashes
    line: int
    column: int
    code: str
    message: str

    @property
    def key(self) -> str:
        """The ``path:CODE`` string an allowlist entry must match."""
        return f"{self.path}:{self.code}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} {self.message}"
        )

    def __str__(self) -> str:
        return self.render()


class _FileLinter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        is_clock_module: bool,
        is_obs_module: bool = False,
    ) -> None:
        self.path = path
        self.is_clock_module = is_clock_module
        self.is_obs_module = is_obs_module
        self.findings: list[LintFinding] = []
        #: module aliases: local name -> canonical module ("time",
        #: "random", "numpy.random", "datetime")
        self.modules: dict[str, str] = {}
        #: names imported from modules: local name -> (module, attr)
        self.from_imports: dict[str, tuple[str, str]] = {}

    # -- bookkeeping -----------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name in (
                "time",
                "random",
                "datetime",
                "numpy.random",
                "uuid",
            ):
                self.modules[local] = alias.name
            elif alias.name == "numpy":
                self.modules[local] = "numpy"
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            if module in ("time", "random", "datetime", "uuid"):
                self.from_imports[local] = (module, alias.name)
            elif module == "numpy" and alias.name == "random":
                self.modules[local] = "numpy.random"
            elif module == "numpy.random":
                self.from_imports[local] = ("numpy.random", alias.name)
        self.generic_visit(node)

    # -- resolution ------------------------------------------------------

    def _call_target(self, func: ast.expr) -> tuple[str, str] | None:
        """(module, attribute) a call resolves to, or None."""
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in self.modules:
                return self.modules[base], func.attr
            if base in self.from_imports:
                # e.g. ``from datetime import datetime`` then
                # ``datetime.now()``: base resolves to a class.
                module, attribute = self.from_imports[base]
                if module == "datetime":
                    return attribute, func.attr
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # e.g. ``np.random.random()`` / ``datetime.datetime.now()``
            inner = func.value
            if isinstance(inner.value, ast.Name):
                base = inner.value.id
                if (
                    self.modules.get(base) == "numpy"
                    and inner.attr == "random"
                ):
                    return "numpy.random", func.attr
                if self.modules.get(base) == "datetime":
                    return inner.attr, func.attr
            return None
        if isinstance(func, ast.Name) and func.id in self.from_imports:
            return self.from_imports[func.id]
        return None

    # -- rules -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = self._call_target(node.func)
        if target is not None:
            module, attribute = target
            if (
                (module, attribute) in _WALL_CLOCK
                and not self.is_clock_module
            ):
                self._flag(
                    node,
                    "DET101",
                    f"wall-clock read {module}.{attribute}() — use the "
                    "virtual clock (serve/clock.py)",
                )
            if module == "random" and attribute not in _RANDOM_CLASSES:
                self._flag(
                    node,
                    "DET102",
                    f"global random.{attribute}() — use a seeded "
                    "random.Random instance",
                )
            if (
                module == "numpy.random"
                and attribute not in _SEEDED_NP_RANDOM
            ):
                self._flag(
                    node,
                    "DET102",
                    f"global numpy.random.{attribute}() — use "
                    "numpy.random.default_rng(seed)",
                )
            if module == "uuid" and self.is_obs_module:
                self._flag(
                    node,
                    "DET106",
                    f"uuid.{attribute}() in repro/obs/ — span ids are "
                    "assigned at export time from tree order",
                )
        # DET106: interpreter-identity builtins in the obs package.
        if (
            self.is_obs_module
            and isinstance(node.func, ast.Name)
            and node.func.id in _IDENTITY_BUILTINS
        ):
            self._flag(
                node,
                "DET106",
                f"builtin {node.func.id}() in repro/obs/ — varies "
                "across interpreter runs; derive identity from "
                "(request index, tree order) at export time",
            )
        # DET105 is no longer checked here: the lockset inference in
        # repro.analysis.concurrency handles it (see _det105_findings).
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                node,
                "DET103",
                "bare 'except:' — catch a concrete exception type",
            )
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                self._flag(
                    default,
                    "DET104",
                    f"mutable default argument in {node.name}() — "
                    "default to None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]


def _det105_findings(tree: ast.Module, path: str) -> list[LintFinding]:
    """DET105 via the concurrency analyzer's lockset inference.

    A ``*_locked`` helper is flagged at every call site reachable with
    an empty effective lockset — interprocedurally, so helpers invoked
    through aliases or ``self.__class__``, and helpers whose callers
    provably hold the lock, are both resolved correctly.
    """
    collector = _conc._ModuleCollector(path)
    collector.visit(tree)
    findings: list[LintFinding] = []
    for model in collector.classes:
        for callee, line, column, _method in _conc.unlocked_locked_calls(
            model
        ):
            findings.append(
                LintFinding(
                    path,
                    line,
                    column,
                    "DET105",
                    f"{callee}() called outside a 'with <lock>:' block",
                )
            )
    for callee, line, column, _name in _conc.unlocked_module_locked_calls(
        collector.module_functions
    ):
        findings.append(
            LintFinding(
                path,
                line,
                column,
                "DET105",
                f"{callee}() called outside a 'with <lock>:' block",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Running the linter
# ---------------------------------------------------------------------------


def lint_file(path: Path, root: Path) -> list[LintFinding]:
    """Lint one Python file; returns findings (unfiltered)."""
    relative = path.relative_to(root).as_posix()
    is_clock = any(relative.endswith(clock) for clock in _CLOCK_PATHS)
    is_obs = _OBS_FRAGMENT in relative
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as error:
        return [
            LintFinding(
                relative,
                error.lineno or 0,
                error.offset or 0,
                "DET100",
                f"file does not parse: {error.msg}",
            )
        ]
    linter = _FileLinter(relative, is_clock, is_obs)
    linter.visit(tree)
    findings = linter.findings + _det105_findings(tree, relative)
    return sorted(findings, key=lambda f: (f.line, f.column, f.code))


def load_allowlist(root: Path) -> dict[str, str]:
    """``path:CODE -> justification`` from pyproject's [tool.repro.lint]."""
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    entries = (
        data.get("tool", {}).get("repro", {}).get("lint", {}).get("allow", [])
    )
    allowlist: dict[str, str] = {}
    for entry in entries:
        key, _, justification = entry.partition("#")
        allowlist[key.strip()] = justification.strip()
    return allowlist


def lint_tree(
    root: Path, subdirectory: str = "src"
) -> tuple[list[LintFinding], list[LintFinding]]:
    """Lint every ``.py`` under ``root/subdirectory``.

    Returns ``(reported, suppressed)`` after applying the pyproject
    allowlist; both lists are deterministically ordered.
    """
    allowlist = load_allowlist(root)
    reported: list[LintFinding] = []
    suppressed: list[LintFinding] = []
    for path in sorted((root / subdirectory).rglob("*.py")):
        for finding in lint_file(path, root):
            if finding.key in allowlist:
                suppressed.append(finding)
            else:
                reported.append(finding)
    return reported, suppressed
