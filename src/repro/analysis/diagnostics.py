"""Structured diagnostics for the static-analysis layer.

A :class:`Diagnostic` is one finding: a stable machine-readable code, a
human message, a severity, and (when the AST carried one) a source
:class:`Span` into the analyzed SQL text.  A :class:`QueryReport`
bundles every diagnostic for one statement together with the
:class:`CostEstimate` the admission controller consumes.

The diagnostic taxonomy (codes are stable API, tests pin them):

====== ======== ==========================================================
code   severity meaning
====== ======== ==========================================================
ANA001 error    SQL could not be parsed (syntax error)
ANA002 error    unknown table in FROM
ANA003 error    unknown column reference
ANA004 error    ambiguous unqualified column reference
ANA005 error    unknown function (not a builtin, aggregate, or UDF)
ANA006 error    aggregate misuse (in WHERE/GROUP BY, nested, or HAVING
                without grouping context)
ANA007 error    wrong number of arguments for a function
ANA008 error    operand type mismatch (arithmetic/function over TEXT, ...)
ANA009 error    ``*`` outside SELECT items / COUNT(*)
ANA010 warning  bare non-grouped column under GROUP BY (engine serves it
                via a hidden FIRST() — SQLite-style leniency)
ANA011 error    LIMIT/OFFSET is not an integer literal
ANA012 error    unknown type name in CAST
ANA013 error    subquery used as a value must produce exactly one column
ANA014 error    GROUP BY / ORDER BY ordinal out of range
====== ======== ==========================================================

Errors are *sound for admission*: a query with no error-severity
diagnostics is guaranteed (and property-tested) to plan and execute
without an engine error on any catalog-conforming data.  Warnings flag
constructs the engine tolerates but that usually indicate LM confusion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; only ERROR blocks admission."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Span:
    """Half-open character range ``[start, end)`` into the source SQL."""

    start: int
    end: int

    @classmethod
    def at(cls, position: int | None, length: int = 1) -> "Span | None":
        """Span starting at a (possibly absent) AST position."""
        if position is None:
            return None
        return cls(position, position + max(length, 1))

    def excerpt(self, sql: str) -> str:
        """The source text this span covers."""
        return sql[self.start : self.end]

    def caret_line(self, sql: str) -> str:
        """Two-line ``source\\n   ^^^`` rendering for CLI output."""
        line_start = sql.rfind("\n", 0, self.start) + 1
        line_end = sql.find("\n", self.start)
        if line_end == -1:
            line_end = len(sql)
        line = sql[line_start:line_end]
        offset = self.start - line_start
        width = max(1, min(self.end, line_end) - self.start)
        return f"{line}\n{' ' * offset}{'^' * width}"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    span: Span | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self, sql: str | None = None) -> str:
        where = (
            f" at {self.span.start}..{self.span.end}"
            if self.span is not None
            else ""
        )
        head = f"{self.severity.value} {self.code}{where}: {self.message}"
        if sql is not None and self.span is not None:
            return head + "\n  " + self.span.caret_line(sql).replace(
                "\n", "\n  "
            )
        return head

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class CostEstimate:
    """Deterministic upper bounds for one SELECT, from catalog stats.

    ``lm_calls`` bounds per-row invocations of *expensive* registered
    functions (LM UDFs); token counts apply the cost model's per-call
    constants.  All numbers are worst-case bounds, not expectations —
    admission control needs "can never exceed", not "probably around".
    """

    #: Upper bound on rows flowing out of the FROM tree (before WHERE).
    rows_scanned: int
    #: Upper bound on result rows (LIMIT applied when constant).
    result_rows: int
    #: Upper bound on expensive-UDF (LM) invocations, subqueries included.
    lm_calls: int
    #: ``lm_calls`` x per-call prompt-token constant.
    lm_prompt_tokens: int
    #: ``lm_calls`` x per-call output-token constant.
    lm_output_tokens: int
    #: Upper bound on invocations under the *batched* execution path
    #: (``udf_batch_size=...``), which deduplicates argument tuples:
    #: at most one invocation per distinct combination of argument
    #: column values (catalog distinct counts), capped by ``lm_calls``.
    lm_calls_batched: int = 0
    #: *Expected* result rows after WHERE, from the shared selectivity
    #: estimator (:func:`repro.analysis.cost.predicate_selectivity`).
    #: Unlike every other field this is an expectation, not a bound —
    #: the query optimizer uses it to rank plans; admission control
    #: must keep using the worst-case fields above.  None when the
    #: statement has no WHERE clause.
    expected_result_rows: int | None = None

    @property
    def lm_tokens(self) -> int:
        """Total estimated LM tokens (prompt + output)."""
        return self.lm_prompt_tokens + self.lm_output_tokens


@dataclass
class QueryReport:
    """Everything the analyzer learned about one statement."""

    sql: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: None when analysis stopped before costing (syntax/binding errors).
    cost: CostEstimate | None = None

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def render(self) -> str:
        """Multi-line human-readable report (the CLI's output)."""
        lines = [f"analyze: {'ok' if self.ok else 'rejected'}"]
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render(self.sql))
        if self.cost is not None:
            lines.append(
                "estimated rows scanned  "
                f"{self.cost.rows_scanned}"
            )
            lines.append(
                f"estimated result rows   {self.cost.result_rows}"
            )
            lines.append(f"estimated LM calls      {self.cost.lm_calls}")
            if self.cost.lm_calls:
                lines.append(
                    "estimated LM calls (batched path) "
                    f"{self.cost.lm_calls_batched}"
                )
            lines.append(
                "estimated LM tokens     "
                f"{self.cost.lm_tokens} "
                f"({self.cost.lm_prompt_tokens} prompt + "
                f"{self.cost.lm_output_tokens} output)"
            )
        return "\n".join(lines)
