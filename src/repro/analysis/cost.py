"""Cost-model constants for the static LM-cost estimator.

The analyzer multiplies its bound on expensive-UDF call sites by these
per-call constants to turn "at most N LM invocations" into an estimated
token budget.  The defaults match the simulated LM's typical TAG-UDF
shape (a short per-row classification prompt and a one-phrase answer);
servers with different prompt templates pass their own model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-call token constants used by :class:`~repro.analysis.SQLAnalyzer`."""

    #: Prompt tokens charged per estimated LM-UDF invocation.
    prompt_tokens_per_call: int = 48
    #: Output tokens charged per estimated LM-UDF invocation.
    output_tokens_per_call: int = 8
