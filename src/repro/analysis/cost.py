"""Cost-model constants and the predicate-selectivity estimator.

The analyzer multiplies its bound on expensive-UDF call sites by these
per-call constants to turn "at most N LM invocations" into an estimated
token budget.  The defaults match the simulated LM's typical TAG-UDF
shape (a short per-row classification prompt and a one-phrase answer);
servers with different prompt templates pass their own model.

:func:`predicate_selectivity` is the shared estimator behind the query
optimizer's predicate-reorder and pushdown decisions and the analyzer's
expected-row figures.  It is deliberately classical (System R-style
magic numbers refined by catalog statistics) and deliberately *not* a
bound: selectivities are expectations used to choose among plans, while
:class:`~repro.analysis.CostEstimate`'s call/token fields stay
worst-case bounds for admission control.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.db.sql import ast

#: Fallback selectivity for predicates the estimator has no rule or no
#: statistics for (System R's classic 1/3).
DEFAULT_SELECTIVITY = 1 / 3

#: Magic selectivities for shapes where only the operator is known.
RANGE_SELECTIVITY = 1 / 3
BETWEEN_SELECTIVITY = 1 / 4
LIKE_SELECTIVITY = 1 / 10


@dataclass(frozen=True)
class CostModel:
    """Per-call token constants used by :class:`~repro.analysis.SQLAnalyzer`
    and the LM-aware query optimizer."""

    #: Prompt tokens charged per estimated LM-UDF invocation.
    prompt_tokens_per_call: int = 48
    #: Output tokens charged per estimated LM-UDF invocation.
    output_tokens_per_call: int = 8
    #: Prompt tokens charged per *cheap-tier* (cascade) invocation.
    cheap_prompt_tokens_per_call: int = 12
    #: Output tokens charged per cheap-tier invocation.
    cheap_output_tokens_per_call: int = 2
    #: Expected fraction of cheap-tier calls that escalate to the
    #: expensive tier (the cheap classifier answers None).  Used only
    #: to *price* the cascade route; the executor meters the real rate.
    cascade_escalation_rate: float = 0.5

    @property
    def tokens_per_call(self) -> int:
        """Total (prompt + output) tokens per expensive invocation."""
        return self.prompt_tokens_per_call + self.output_tokens_per_call

    @property
    def cheap_tokens_per_call(self) -> int:
        """Total tokens per cheap-tier invocation."""
        return (
            self.cheap_prompt_tokens_per_call
            + self.cheap_output_tokens_per_call
        )


@dataclass(frozen=True)
class ColumnStats:
    """Catalog statistics for one stored column."""

    rows: int
    distinct: int
    nulls: int

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.rows if self.rows else 0.0


#: Resolves a column reference ``(name, table_or_None)`` to stats, or
#: None when the column is computed / unresolvable.
StatsLookup = Callable[[str, "str | None"], "ColumnStats | None"]


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def _column_stats(
    expression: ast.Expression, stats: StatsLookup
) -> ColumnStats | None:
    if isinstance(expression, ast.ColumnRef):
        return stats(expression.name, expression.table)
    return None


def _comparison_selectivity(
    node: ast.BinaryOp, stats: StatsLookup, default: float
) -> float:
    """``col <op> literal`` (either side), from distinct counts."""
    for ref, other in ((node.left, node.right), (node.right, node.left)):
        column = _column_stats(ref, stats)
        if column is None or not isinstance(other, ast.Literal):
            continue
        distinct = max(column.distinct, 1)
        if node.op == "=":
            return _clamp(1.0 / distinct)
        if node.op == "<>":
            # Complement of equality — NOT the blanket default.  (This
            # is the negated-predicate estimate the equivalence harness
            # pinned down; see tests/analysis/test_selectivity.py.)
            return _clamp(1.0 - 1.0 / distinct)
        return RANGE_SELECTIVITY
    if node.op in ("<", "<=", ">", ">="):
        return RANGE_SELECTIVITY
    return default


def predicate_selectivity(
    expression: ast.Expression,
    stats: StatsLookup,
    default: float = DEFAULT_SELECTIVITY,
) -> float:
    """Expected fraction of rows satisfying ``expression``.

    Catalog-driven where possible (equality via distinct counts,
    IS [NOT] NULL via null fractions), complement-correct for negation
    (``NOT p`` is ``1 - sel(p)``, ``col <> lit`` is the complement of
    ``col = lit``), and composable over AND (product, assuming
    independence) and OR (inclusion-exclusion).  Always in [0, 1].
    """
    node = expression
    if isinstance(node, ast.UnaryOp) and node.op == "NOT":
        return _clamp(
            1.0 - predicate_selectivity(node.operand, stats, default)
        )
    if isinstance(node, ast.BinaryOp):
        if node.op == "AND":
            return _clamp(
                predicate_selectivity(node.left, stats, default)
                * predicate_selectivity(node.right, stats, default)
            )
        if node.op == "OR":
            left = predicate_selectivity(node.left, stats, default)
            right = predicate_selectivity(node.right, stats, default)
            return _clamp(left + right - left * right)
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison_selectivity(node, stats, default)
        return default
    if isinstance(node, ast.IsNullExpression):
        column = _column_stats(node.operand, stats)
        if column is None or column.rows == 0:
            fraction = default
        else:
            fraction = column.null_fraction
        return _clamp(1.0 - fraction if node.negated else fraction)
    if isinstance(node, ast.BetweenExpression):
        fraction = BETWEEN_SELECTIVITY
        return _clamp(1.0 - fraction if node.negated else fraction)
    if isinstance(node, ast.LikeExpression):
        fraction = LIKE_SELECTIVITY
        return _clamp(1.0 - fraction if node.negated else fraction)
    if isinstance(node, ast.InList):
        column = _column_stats(node.operand, stats)
        if column is not None:
            fraction = _clamp(
                len(node.items) / max(column.distinct, 1)
            )
        else:
            fraction = _clamp(len(node.items) * default)
        return _clamp(1.0 - fraction if node.negated else fraction)
    if isinstance(node, ast.Literal):
        if node.value is None:
            return 0.0
        if isinstance(node.value, bool) or isinstance(node.value, int):
            return 1.0 if node.value else 0.0
        return default
    return default
