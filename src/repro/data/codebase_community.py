"""codebase_community: a statistics Q&A community (posts/comments/users).

This is the benchmark's *reasoning* domain: post titles span a wide
technicality range and comments span sentiment/sarcasm registers, so
queries like "top 3 most sarcastic comments" or "order titles from most
technical to least technical" have graded, human-recognisable answers.
The specific post the paper's Appendix A aggregation query names —
"How does gentle boosting differ from AdaBoost?" — exists with a fixed
comment thread.
"""

from __future__ import annotations

import random

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, ForeignKey, TableSchema

#: Post titles, roughly ordered from most to least technical.
POST_TITLES: list[str] = [
    "How does gentle boosting differ from AdaBoost?",
    "Deriving the bias-variance decomposition for ridge regression",
    "Eigenvalue shrinkage in high-dimensional covariance estimation",
    "Why does SGD with momentum escape saddle points faster?",
    "Closed-form posterior for conjugate Gaussian likelihoods",
    "Regularization paths for L1-penalized logistic regression",
    "Backpropagation through a softmax-cross-entropy layer",
    "Asymptotic variance of the maximum likelihood estimator",
    "Kernel trick intuition for support vector machines",
    "Cross-validation strategies for time series data",
    "How to interpret interaction terms in linear regression?",
    "Bootstrap confidence intervals for the median",
    "When should I use a random forest over gradient boosting?",
    "Detecting multicollinearity with variance inflation factors",
    "What does a QQ-plot actually show?",
    "Difference between probability and likelihood",
    "How many samples do I need for a t-test?",
    "Is my histogram skewed or is it just me?",
    "What statistics course should I take first?",
    "Book recommendations for learning statistics",
    "How do I get started with data analysis?",
    "Why do people love box plots so much?",
    "Favorite visualization of the central limit theorem",
    "Is statistics a good career path?",
    "How do you explain p-values to your boss?",
    "Fun datasets for teaching intro stats",
    "Does anyone actually enjoy cleaning data?",
    "What is your favorite statistics joke?",
    "Coffee consumption and productivity, anecdotes welcome",
    "Weekend reading suggestions, nothing too heavy",
]

#: Comment texts with intended register markers for the generators:
#: plain-positive, plain-negative, neutral, and sarcastic.
POSITIVE_COMMENTS = [
    "Excellent answer, the derivation is clear and helpful.",
    "This is a wonderful explanation, thank you so much.",
    "Great example, it made the concept finally click for me.",
    "Really impressive write-up, clean and rigorous.",
    "Lovely intuition, I recommend this answer to my students.",
    "Fantastic summary, the references are very helpful too.",
    "This solid walkthrough saved me hours, brilliant work.",
]
NEGATIVE_COMMENTS = [
    "This answer is misleading and the notation is a mess.",
    "Disappointing, the key assumption is never stated.",
    "The proof is broken, the second step does not follow.",
    "Confusing write-up, the example contradicts the claim.",
    "This is a poor explanation and the plot is mislabeled.",
    "Weak answer, it ignores the heteroscedasticity issue entirely.",
]
NEUTRAL_COMMENTS = [
    "See also the 2009 survey on ensemble methods.",
    "Which software did you use for the simulation?",
    "The link to the dataset appears to be down.",
    "Could you share the code for the figure?",
    "There is a related question from last year worth linking.",
    "Section 4.3 of the textbook covers this case.",
]
SARCASTIC_COMMENTS = [
    "Oh great, another 'proof' that skips the hard part entirely.",
    "Yeah right, because that always works on real data.",
    "Brilliant plan, just assume the residuals behave. What could "
    "possibly go wrong?",
    "Thanks a lot, now my model is 'converging' to garbage even faster.",
    "Wow, a genius idea: just collect more data. How original.",
    "Oh sure, p equals 0.049, clearly the best science ever.",
    "Totally rigorous: eyeball the plot and call it significant. Slow "
    "clap.",
    "Just what I needed, a ten-line formula with no definitions. "
    "Obviously self-explanatory.",
]

_FIRST_NAMES = [
    "Alex", "Bianca", "Chen", "Dmitri", "Elena", "Farid", "Grace",
    "Hiro", "Ines", "Jonas", "Katya", "Liam", "Mina", "Noor", "Otto",
    "Priya", "Quinn", "Rosa", "Sven", "Tara",
]


def build(seed: int = 0, comments_per_post: int = 6) -> Dataset:
    """Generate the domain deterministically from ``seed``."""
    rng = random.Random(("codebase_community", seed).__repr__())
    db = Database("codebase_community")
    db.create_table(
        TableSchema(
            "users",
            [
                Column("Id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("DisplayName", DataType.TEXT),
                Column("Reputation", DataType.INTEGER),
                Column("Location", DataType.TEXT),
                Column("Age", DataType.INTEGER),
                Column("CreationDate", DataType.TEXT),
                Column("Views", DataType.INTEGER),
                Column("UpVotes", DataType.INTEGER),
                Column("DownVotes", DataType.INTEGER),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "posts",
            [
                Column("Id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("PostTypeId", DataType.INTEGER),
                Column("Title", DataType.TEXT),
                Column("Body", DataType.TEXT),
                Column("Tags", DataType.TEXT),
                Column("ViewCount", DataType.INTEGER),
                Column("Score", DataType.INTEGER),
                Column("AnswerCount", DataType.INTEGER),
                Column("CommentCount", DataType.INTEGER),
                Column("FavoriteCount", DataType.INTEGER),
                Column("OwnerUserId", DataType.INTEGER),
                Column("CreationDate", DataType.TEXT),
                Column("LastActivityDate", DataType.TEXT),
            ],
            foreign_keys=[ForeignKey("OwnerUserId", "users", "Id")],
        )
    )
    db.create_table(
        TableSchema(
            "comments",
            [
                Column("Id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("PostId", DataType.INTEGER),
                Column("Text", DataType.TEXT),
                Column("Score", DataType.INTEGER),
                Column("UserId", DataType.INTEGER),
                Column("CreationDate", DataType.TEXT),
            ],
            foreign_keys=[
                ForeignKey("PostId", "posts", "Id"),
                ForeignKey("UserId", "users", "Id"),
            ],
        )
    )

    locations = [
        "London", "Berlin", "San Francisco", "Toronto", "Bangalore",
        "Sydney", "Amsterdam", "Zurich", None,
    ]
    for user_id, name in enumerate(_FIRST_NAMES, start=1):
        db.insert(
            "users",
            [
                [
                    user_id,
                    f"{name}_{user_id}",
                    rng.randint(10, 25_000),
                    rng.choice(locations),
                    rng.choice([None, rng.randint(19, 65)]),
                    f"20{rng.randint(9, 14):02d}-0{rng.randint(1, 9)}-"
                    f"{rng.randint(10, 28)}",
                    rng.randint(0, 5000),
                    rng.randint(0, 2000),
                    rng.randint(0, 200),
                ]
            ],
        )

    comment_pool = (
        [(text, "positive") for text in POSITIVE_COMMENTS]
        + [(text, "negative") for text in NEGATIVE_COMMENTS]
        + [(text, "neutral") for text in NEUTRAL_COMMENTS]
        + [(text, "sarcastic") for text in SARCASTIC_COMMENTS]
    )
    comment_id = 0
    for post_id, title in enumerate(POST_TITLES, start=1):
        view_count = rng.randint(50, 20_000)
        # Make the view-count ordering unambiguous at the top so
        # "5 posts with highest popularity" has a stable gold answer.
        if post_id <= 5:
            view_count = 40_000 - post_id * 2_500 + rng.randint(0, 500)
        tags = rng.sample(
            ["regression", "machine-learning", "probability",
             "hypothesis-testing", "bayesian", "time-series",
             "classification", "distributions", "self-study"],
            k=rng.randint(1, 3),
        )
        db.insert(
            "posts",
            [
                [
                    post_id,
                    1,
                    title,
                    f"Question body for: {title}",
                    "<" + "><".join(tags) + ">",
                    view_count,
                    rng.randint(-2, 120),
                    rng.randint(0, 8),
                    comments_per_post,
                    rng.randint(0, 30),
                    rng.randint(1, len(_FIRST_NAMES)),
                    f"201{rng.randint(0, 5)}-0{rng.randint(1, 9)}-"
                    f"{rng.randint(10, 28)}",
                    f"201{rng.randint(5, 6)}-0{rng.randint(1, 9)}-"
                    f"{rng.randint(10, 28)}",
                ]
            ],
        )
        chosen = rng.sample(
            comment_pool, k=min(comments_per_post, len(comment_pool))
        )
        for text, _register in chosen:
            comment_id += 1
            db.insert(
                "comments",
                [
                    [
                        comment_id,
                        post_id,
                        text,
                        rng.randint(0, 40),
                        rng.randint(1, len(_FIRST_NAMES)),
                        f"201{rng.randint(1, 6)}-1{rng.randint(0, 1)}-"
                        f"{rng.randint(10, 28)}",
                    ]
                ],
            )
    db.create_index("posts", "Id")
    db.create_index("comments", "PostId")
    return Dataset(
        name="codebase_community",
        db=db,
        description=(
            "A statistics Q&A community: posts with graded technicality, "
            "comments with graded sentiment and sarcasm, and users."
        ),
        frames=frames_from_db(db),
    )
