"""The Figure 1 movies table.

A single ``movies`` table (title, year, genre, revenue, review) built
from the movie fact store — the data source behind the paper's worked
example: "Summarize the reviews of the highest grossing romance movie
considered a 'classic'".
"""

from __future__ import annotations

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, TableSchema
from repro.knowledge.movies import MOVIE_FACTS, MOVIE_REVIEWS


def build(seed: int = 0) -> Dataset:
    """Build the movies dataset (the seed is accepted for API symmetry
    but the table is a fixed fact-store projection)."""
    db = Database("movies")
    db.create_table(
        TableSchema(
            "movies",
            [
                Column("movie_id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("movie_title", DataType.TEXT),
                Column("year", DataType.INTEGER),
                Column("genre", DataType.TEXT),
                Column("revenue", DataType.REAL),
                Column("review", DataType.TEXT),
            ],
        )
    )
    for movie_id, (title, year, genre, revenue, _classic, _conf) in (
        enumerate(MOVIE_FACTS, start=1)
    ):
        reviews = MOVIE_REVIEWS.get(title, ["A watchable film."])
        db.insert(
            "movies",
            [[movie_id, title, year, genre, revenue, " ".join(reviews)]],
        )
    db.create_index("movies", "movie_title")
    return Dataset(
        name="movies",
        db=db,
        description="The Figure 1 movies example table.",
        frames=frames_from_db(db),
    )
