"""debit_card_specializing: fuel-card customers and transactions.

Customers and gas stations span Central European countries, so the
Eurozone/EU facts in the knowledge store ("customers in countries that
use the Euro") gate knowledge queries the same way BIRD's Czech/Slovak
data does in the paper.
"""

from __future__ import annotations

import random

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, ForeignKey, TableSchema

#: Countries gas stations operate in, with relative frequency weights.
_COUNTRIES = [
    ("Czech Republic", 5),
    ("Slovakia", 3),
    ("Germany", 2),
    ("Austria", 2),
    ("Poland", 2),
    ("Hungary", 1),
    ("Slovenia", 1),
    ("Switzerland", 1),
]
_SEGMENTS = ["SME", "LAM", "KAM", "Discount"]
_PRODUCTS = {2: 11.5, 5: 25.2, 9: 42.7, 23: 9.1}  # ProductID -> unit price


def build(
    seed: int = 0,
    customers: int = 60,
    stations: int = 40,
    transactions: int = 600,
) -> Dataset:
    """Generate the domain deterministically from ``seed``."""
    rng = random.Random(("debit_card_specializing", seed).__repr__())
    db = Database("debit_card_specializing")
    db.create_table(
        TableSchema(
            "customers",
            [
                Column("CustomerID", DataType.INTEGER, nullable=False, primary_key=True),
                Column("Segment", DataType.TEXT),
                Column("Currency", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "gasstations",
            [
                Column("GasStationID", DataType.INTEGER, nullable=False, primary_key=True),
                Column("ChainID", DataType.INTEGER),
                Column("Country", DataType.TEXT),
                Column("Segment", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "transactions_1k",
            [
                Column("TransactionID", DataType.INTEGER, nullable=False, primary_key=True),
                Column("Date", DataType.TEXT),
                Column("Time", DataType.TEXT),
                Column("CustomerID", DataType.INTEGER),
                Column("CardID", DataType.INTEGER),
                Column("GasStationID", DataType.INTEGER),
                Column("ProductID", DataType.INTEGER),
                Column("Amount", DataType.INTEGER),
                Column("Price", DataType.REAL),
            ],
            foreign_keys=[
                ForeignKey("CustomerID", "customers", "CustomerID"),
                ForeignKey("GasStationID", "gasstations", "GasStationID"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "yearmonth",
            [
                Column("CustomerID", DataType.INTEGER, nullable=False),
                Column("Date", DataType.TEXT),
                Column("Consumption", DataType.REAL),
            ],
            foreign_keys=[
                ForeignKey("CustomerID", "customers", "CustomerID")
            ],
        )
    )

    for customer_id in range(1, customers + 1):
        currency = "EUR" if rng.random() < 0.45 else "CZK"
        db.insert(
            "customers",
            [[customer_id, rng.choice(_SEGMENTS), currency]],
        )

    weighted_countries = [
        country for country, weight in _COUNTRIES for _ in range(weight)
    ]
    for station_id in range(1, stations + 1):
        db.insert(
            "gasstations",
            [
                [
                    station_id,
                    rng.randint(1, 8),
                    rng.choice(weighted_countries),
                    rng.choice(_SEGMENTS),
                ]
            ],
        )

    for transaction_id in range(1, transactions + 1):
        product_id = rng.choice(list(_PRODUCTS))
        amount = rng.randint(1, 80)
        price = round(_PRODUCTS[product_id] * rng.uniform(0.9, 1.15), 2)
        db.insert(
            "transactions_1k",
            [
                [
                    transaction_id,
                    f"2012-{rng.randint(1, 12):02d}-"
                    f"{rng.randint(1, 28):02d}",
                    f"{rng.randint(6, 22):02d}:{rng.randint(0, 59):02d}:00",
                    rng.randint(1, customers),
                    rng.randint(100000, 999999),
                    rng.randint(1, stations),
                    product_id,
                    amount,
                    price,
                ]
            ],
        )

    for customer_id in range(1, customers + 1):
        for month in (6, 7, 8):
            db.insert(
                "yearmonth",
                [
                    [
                        customer_id,
                        f"2012{month:02d}",
                        round(rng.uniform(100.0, 9000.0), 2),
                    ]
                ],
            )
    db.create_index("transactions_1k", "CustomerID")
    db.create_index("transactions_1k", "GasStationID")
    db.create_index("gasstations", "GasStationID")
    return Dataset(
        name="debit_card_specializing",
        db=db,
        description=(
            "Fuel-card customers, gas stations across Central Europe, "
            "transactions, and monthly consumption."
        ),
        frames=frames_from_db(db),
    )
