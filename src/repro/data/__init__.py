"""Synthetic BIRD-like datasets.

The paper's benchmark draws on five BIRD domains.  BIRD's data is not
redistributable offline, so each domain here is a seeded generator
producing schema-compatible tables whose contents line up with the
shared world-knowledge fact store — e.g. the ``formula_1`` races table
is built from the same Sepang 1999-2017 history the LM "knows", just as
BIRD's real data lines up with a real LM's world knowledge.

Use :func:`load_domain` / :func:`load_all`::

    dataset = load_domain("california_schools", seed=0)
    dataset.db.execute("SELECT COUNT(*) FROM schools")
    dataset.frames["schools"].sort_values("Longitude")
"""

from repro.data.base import Dataset, load_all, load_domain

DOMAINS = (
    "california_schools",
    "codebase_community",
    "formula_1",
    "european_football_2",
    "debit_card_specializing",
)

__all__ = ["DOMAINS", "Dataset", "load_all", "load_domain"]
