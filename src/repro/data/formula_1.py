"""formula_1: circuits, races, drivers, and results.

Built directly from the Formula 1 fact store, so the ``races`` table
contains exactly the seasons each circuit really hosted (Sepang
1999-2017 etc.) — the alignment the Figure 2 aggregation query needs.
"""

from __future__ import annotations

import random
import zlib

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, ForeignKey, TableSchema
from repro.knowledge import formula1 as facts

#: Driver roster (forename, surname, nationality, date of birth).
DRIVERS: list[tuple[str, str, str, str]] = [
    ("Lewis", "Hamilton", "British", "1985-01-07"),
    ("Michael", "Schumacher", "German", "1969-01-03"),
    ("Sebastian", "Vettel", "German", "1987-07-03"),
    ("Fernando", "Alonso", "Spanish", "1981-07-29"),
    ("Kimi", "Raikkonen", "Finnish", "1979-10-17"),
    ("Mika", "Hakkinen", "Finnish", "1968-09-28"),
    ("Jenson", "Button", "British", "1980-01-19"),
    ("Nico", "Rosberg", "German", "1985-06-27"),
    ("Felipe", "Massa", "Brazilian", "1981-04-25"),
    ("Rubens", "Barrichello", "Brazilian", "1972-05-23"),
    ("Mark", "Webber", "Australian", "1976-08-27"),
    ("Daniel", "Ricciardo", "Australian", "1989-07-01"),
    ("Valtteri", "Bottas", "Finnish", "1989-08-28"),
    ("Sergio", "Perez", "Mexican", "1990-01-26"),
    ("Romain", "Grosjean", "French", "1986-04-17"),
    ("Nico", "Hulkenberg", "German", "1987-08-19"),
    ("Carlos", "Sainz", "Spanish", "1994-09-01"),
    ("Juan Pablo", "Montoya", "Colombian", "1975-09-20"),
    ("Ralf", "Schumacher", "German", "1975-06-30"),
    ("Max", "Verstappen", "Dutch", "1997-09-30"),
]

_POINTS_BY_POSITION = [25.0, 18.0, 15.0, 12.0, 10.0, 8.0, 6.0, 4.0, 2.0, 1.0]


def build(seed: int = 0, results_per_race: int = 10) -> Dataset:
    """Generate the domain from the F1 fact store and ``seed``."""
    rng = random.Random(("formula_1", seed).__repr__())
    db = Database("formula_1")
    db.create_table(
        TableSchema(
            "circuits",
            [
                Column("circuitId", DataType.INTEGER, nullable=False, primary_key=True),
                Column("circuitRef", DataType.TEXT),
                Column("name", DataType.TEXT),
                Column("location", DataType.TEXT),
                Column("country", DataType.TEXT),
                Column("lat", DataType.REAL),
                Column("lng", DataType.REAL),
                Column("url", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "races",
            [
                Column("raceId", DataType.INTEGER, nullable=False, primary_key=True),
                Column("year", DataType.INTEGER),
                Column("round", DataType.INTEGER),
                Column("circuitId", DataType.INTEGER),
                Column("name", DataType.TEXT),
                Column("date", DataType.TEXT),
                Column("time", DataType.TEXT),
            ],
            foreign_keys=[ForeignKey("circuitId", "circuits", "circuitId")],
        )
    )
    db.create_table(
        TableSchema(
            "drivers",
            [
                Column("driverId", DataType.INTEGER, nullable=False, primary_key=True),
                Column("driverRef", DataType.TEXT),
                Column("forename", DataType.TEXT),
                Column("surname", DataType.TEXT),
                Column("nationality", DataType.TEXT),
                Column("dob", DataType.TEXT),
                Column("code", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "results",
            [
                Column("resultId", DataType.INTEGER, nullable=False, primary_key=True),
                Column("raceId", DataType.INTEGER),
                Column("driverId", DataType.INTEGER),
                Column("grid", DataType.INTEGER),
                Column("position", DataType.INTEGER),
                Column("points", DataType.REAL),
                Column("laps", DataType.INTEGER),
            ],
            foreign_keys=[
                ForeignKey("raceId", "races", "raceId"),
                ForeignKey("driverId", "drivers", "driverId"),
            ],
        )
    )

    circuit_ids: dict[str, int] = {}
    for circuit_id, circuit in enumerate(facts.CIRCUITS, start=1):
        circuit_ids[circuit.name] = circuit_id
        ref = circuit.name.lower().replace(" ", "_")
        db.insert(
            "circuits",
            [
                [
                    circuit_id,
                    ref,
                    circuit.name,
                    circuit.location,
                    circuit.country,
                    round(rng.uniform(-37.0, 53.0), 4),
                    round(rng.uniform(-97.0, 140.0), 4),
                    f"http://en.wikipedia.org/wiki/{ref}",
                ]
            ],
        )

    driver_ids: dict[str, int] = {}
    for driver_id, (forename, surname, nationality, dob) in enumerate(
        DRIVERS, start=1
    ):
        driver_ids[f"{forename} {surname}"] = driver_id
        db.insert(
            "drivers",
            [
                [
                    driver_id,
                    surname.lower().replace(" ", "_"),
                    forename,
                    surname,
                    nationality,
                    dob,
                    surname[:3].upper(),
                ]
            ],
        )

    # Build the season calendars: all circuit-years, ordered by month
    # within a year to assign rounds.
    events: dict[int, list[str]] = {}
    for circuit_name, years in facts.RACE_HISTORY.items():
        for year in years:
            events.setdefault(year, []).append(circuit_name)
    race_id = 0
    result_id = 0
    for year in sorted(events):
        calendar = sorted(
            events[year],
            key=lambda name: (facts.TYPICAL_RACE_MONTH[name], name),
        )
        for round_number, circuit_name in enumerate(calendar, start=1):
            race_id += 1
            month = facts.TYPICAL_RACE_MONTH[circuit_name]
            day = 7 + (
                zlib.crc32(f"{circuit_name}|{year}".encode()) % 21
            )
            gp_name = facts.GRAND_PRIX_NAME[circuit_name]
            db.insert(
                "races",
                [
                    [
                        race_id,
                        year,
                        round_number,
                        circuit_ids[circuit_name],
                        gp_name,
                        f"{year}-{month:02d}-{day:02d}",
                        f"{rng.randint(12, 15)}:00:00",
                    ]
                ],
            )
            # Results: the season's champion is biased toward winning.
            champion = facts.WORLD_CHAMPIONS.get(year)
            roster = list(driver_ids)
            rng.shuffle(roster)
            if champion in driver_ids and rng.random() < 0.55:
                roster.remove(champion)
                roster.insert(0, champion)
            for position in range(1, results_per_race + 1):
                result_id += 1
                driver_name = roster[position - 1]
                points = (
                    _POINTS_BY_POSITION[position - 1]
                    if position <= len(_POINTS_BY_POSITION)
                    else 0.0
                )
                db.insert(
                    "results",
                    [
                        [
                            result_id,
                            race_id,
                            driver_ids[driver_name],
                            min(20, position + rng.randint(0, 4)),
                            position,
                            points,
                            rng.randint(44, 78),
                        ]
                    ],
                )
    db.create_index("races", "circuitId")
    db.create_index("results", "raceId")
    db.create_index("circuits", "name")
    return Dataset(
        name="formula_1",
        db=db,
        description=(
            "Formula 1 circuits, races (1999-2017 calendars from the "
            "fact store), drivers, and race results."
        ),
        frames=frames_from_db(db),
    )
