"""The paper-introduction accounts table.

The paper's motivating Databricks example asks *"what are the QoQ
trends for the 'retail' vertical?"* over "a table containing attributes
for account names, products and revenue" — needing the LM's knowledge
of both what QoQ means and which companies are retail (§1).  This
generator builds that table: quarterly revenue rows per account, with
account names drawn from the business-vertical fact store so the LM
holds (fuzzy) beliefs about each.
"""

from __future__ import annotations

import random

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, TableSchema
from repro.knowledge.business import COMPANY_VERTICAL_FACTS

_PRODUCTS = ["Platform", "Analytics", "Support", "Storage"]
_QUARTERS = ["2023-Q3", "2023-Q4", "2024-Q1", "2024-Q2"]


def build(seed: int = 0) -> Dataset:
    """Generate the accounts table deterministically from ``seed``."""
    rng = random.Random(("accounts", seed).__repr__())
    db = Database("accounts")
    db.create_table(
        TableSchema(
            "accounts",
            [
                Column("account_id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("account_name", DataType.TEXT),
                Column("product", DataType.TEXT),
                Column("quarter", DataType.TEXT),
                Column("revenue", DataType.REAL),
            ],
        )
    )
    account_id = 0
    for company, vertical, _confidence in COMPANY_VERTICAL_FACTS:
        base = rng.uniform(40.0, 900.0)
        # Give each vertical a characteristic drift so QoQ trends are
        # real signals, not noise (retail trends mildly up).
        drift = {
            "retail": 0.04,
            "technology": 0.07,
            "finance": 0.01,
            "healthcare": 0.02,
            "energy": -0.02,
            "automotive": 0.03,
            "aerospace": 0.0,
            "travel": 0.05,
        }.get(vertical, 0.0)
        product = rng.choice(_PRODUCTS)
        revenue = base
        for quarter in _QUARTERS:
            account_id += 1
            noisy = revenue * (1 + rng.uniform(-0.01, 0.01))
            db.insert(
                "accounts",
                [
                    [
                        account_id,
                        company,
                        product,
                        quarter,
                        round(noisy, 1),
                    ]
                ],
            )
            revenue *= 1 + drift + rng.uniform(-0.005, 0.005)
    db.create_index("accounts", "account_name")
    return Dataset(
        name="accounts",
        db=db,
        description=(
            "Quarterly revenue per account — the paper-introduction "
            "QoQ-by-vertical example table."
        ),
        frames=frames_from_db(db),
    )
