"""Dataset container and loader registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Database
from repro.errors import BenchmarkError
from repro.frame import DataFrame


@dataclass
class Dataset:
    """One benchmark domain: a relational DB plus dataframe views.

    The hand-written TAG pipelines (like the paper's Appendix C, which
    reads the BIRD tables as pandas CSVs) work on :attr:`frames`; every
    SQL-based method works on :attr:`db`.  Both views hold identical
    data by construction.
    """

    name: str
    db: Database
    description: str
    frames: dict[str, DataFrame] = field(default_factory=dict)

    def frame(self, table: str) -> DataFrame:
        try:
            return self.frames[table]
        except KeyError as exc:
            raise BenchmarkError(
                f"domain {self.name!r} has no table {table!r}"
            ) from exc

    def schema_sql(self) -> str:
        return self.db.schema_sql()

    def prompt_schema(self, sample_rows: int = 6) -> str:
        """Schema encoding for the Text2SQL prompt, BIRD style.

        CREATE TABLE statements followed by commented column notes and
        a few sample rows per table — the enriched encoding BIRD-format
        prompts carry, which is also what makes real query-synthesis
        prompts thousands of tokens long.
        """
        blocks: list[str] = []
        for table_name in self.db.table_names:
            table = self.db.table(table_name)
            lines = [table.schema.to_create_sql()]
            for position, column in enumerate(table.schema.columns):
                described = _describe_identifier(column.name)
                examples: list[str] = []
                for row in table.rows:
                    value = str(row[position])
                    if value not in examples:
                        examples.append(value)
                    if len(examples) == 3:
                        break
                rendered_examples = ", ".join(examples)
                lines.append(
                    f"-- {table_name}.{column.name} "
                    f"({column.dtype.value}): {described}; value examples: "
                    f"{rendered_examples}"
                )
            names = " | ".join(table.schema.column_names)
            lines.append(f"-- Sample rows ({table_name}): {names}")
            for row in table.rows[:sample_rows]:
                rendered = " | ".join(str(value) for value in row)
                lines.append(f"--   {rendered}")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def _describe_identifier(name: str) -> str:
    """Readable phrase for a column name (GSoffered -> 'g s offered')."""
    import re

    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    spaced = spaced.replace("_", " ")
    return spaced.lower()


def frames_from_db(db: Database) -> dict[str, DataFrame]:
    """Materialise every table of ``db`` as a DataFrame view."""
    return {
        name: DataFrame.from_rows(
            db.table(name).schema.column_names, db.table(name).rows
        )
        for name in db.table_names
    }


def load_domain(name: str, seed: int = 0) -> Dataset:
    """Build one domain by name (see :data:`repro.data.DOMAINS`)."""
    from repro.data import (
        california_schools,
        codebase_community,
        debit_card_specializing,
        european_football_2,
        formula_1,
    )

    builders = {
        "california_schools": california_schools.build,
        "codebase_community": codebase_community.build,
        "formula_1": formula_1.build,
        "european_football_2": european_football_2.build,
        "debit_card_specializing": debit_card_specializing.build,
    }
    try:
        builder = builders[name]
    except KeyError as exc:
        raise BenchmarkError(f"unknown domain {name!r}") from exc
    return builder(seed=seed)


def load_all(seed: int = 0) -> dict[str, Dataset]:
    """Build every benchmark domain keyed by name."""
    from repro.data import DOMAINS

    return {name: load_domain(name, seed=seed) for name in DOMAINS}
