"""california_schools: schools, SAT scores, and FRPM tables.

Schema-compatible with the BIRD domain's columns the benchmark touches
(``schools.City/County/GSoffered/Longitude``, ``satscores.AvgScrMath``,
``frpm."Free Meal Count (K-12)"``).  Cities are drawn from the
geography fact store, so knowledge queries about regions ("schools in
the Bay Area") resolve against the same cities the LM holds beliefs
about.
"""

from __future__ import annotations

import random

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, ForeignKey, TableSchema
from repro.knowledge.geography import CITY_COORDINATES

_GRADE_SPANS = ["K-5", "K-6", "K-8", "K-12", "6-8", "6-12", "9-12"]
_SCHOOL_KINDS = [
    ("Elementary", ("K-5", "K-6", "K-8")),
    ("Middle", ("6-8",)),
    ("High", ("9-12",)),
    ("Unified", ("K-12", "6-12")),
    ("Charter Academy", ("K-8", "K-12", "9-12")),
]
_COUNTY_BY_CITY = {
    "San Francisco": "San Francisco",
    "Oakland": "Alameda",
    "Berkeley": "Alameda",
    "Fremont": "Alameda",
    "Hayward": "Alameda",
    "San Jose": "Santa Clara",
    "Palo Alto": "Santa Clara",
    "Mountain View": "Santa Clara",
    "Sunnyvale": "Santa Clara",
    "Santa Clara": "Santa Clara",
    "Cupertino": "Santa Clara",
    "Milpitas": "Santa Clara",
    "Los Altos": "Santa Clara",
    "Campbell": "Santa Clara",
    "Saratoga": "Santa Clara",
    "Los Gatos": "Santa Clara",
    "Morgan Hill": "Santa Clara",
    "Gilroy": "Santa Clara",
    "Menlo Park": "San Mateo",
    "Redwood City": "San Mateo",
    "San Mateo": "San Mateo",
    "Daly City": "San Mateo",
    "Richmond": "Contra Costa",
    "Concord": "Contra Costa",
    "Walnut Creek": "Contra Costa",
    "San Rafael": "Marin",
    "Vallejo": "Solano",
    "Napa": "Napa",
    "Santa Rosa": "Sonoma",
    "Santa Cruz": "Santa Cruz",
    "Stockton": "San Joaquin",
    "Sacramento": "Sacramento",
    "Modesto": "Stanislaus",
    "Fresno": "Fresno",
    "Los Angeles": "Los Angeles",
    "Long Beach": "Los Angeles",
    "Pasadena": "Los Angeles",
    "San Diego": "San Diego",
    "Chula Vista": "San Diego",
    "Anaheim": "Orange",
    "Santa Ana": "Orange",
    "Irvine": "Orange",
    "Riverside": "Riverside",
    "Bakersfield": "Kern",
    "Santa Barbara": "Santa Barbara",
    "San Luis Obispo": "San Luis Obispo",
    "Monterey": "Monterey",
    "Salinas": "Monterey",
    "Visalia": "Tulare",
    "Merced": "Merced",
}


def build(seed: int = 0, schools_per_city: int = 5) -> Dataset:
    """Generate the domain deterministically from ``seed``."""
    rng = random.Random(("california_schools", seed).__repr__())
    db = Database("california_schools")
    db.create_table(
        TableSchema(
            "schools",
            [
                Column("CDSCode", DataType.TEXT, nullable=False, primary_key=True),
                Column("StatusType", DataType.TEXT),
                Column("School", DataType.TEXT),
                Column("District", DataType.TEXT),
                Column("County", DataType.TEXT),
                Column("City", DataType.TEXT),
                Column("Zip", DataType.TEXT),
                Column("Street", DataType.TEXT),
                Column("Phone", DataType.TEXT),
                Column("Website", DataType.TEXT),
                Column("GSoffered", DataType.TEXT),
                Column("GSserved", DataType.TEXT),
                Column("Latitude", DataType.REAL),
                Column("Longitude", DataType.REAL),
                Column("Charter", DataType.INTEGER),
                Column("FundingType", DataType.TEXT),
                Column("DOCType", DataType.TEXT),
                Column("SOCType", DataType.TEXT),
                Column("EdOpsName", DataType.TEXT),
                Column("Virtual", DataType.TEXT),
                Column("Magnet", DataType.INTEGER),
                Column("AdmFName", DataType.TEXT),
                Column("AdmLName", DataType.TEXT),
                Column("OpenDate", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "satscores",
            [
                Column("cds", DataType.TEXT, nullable=False, primary_key=True),
                Column("rtype", DataType.TEXT),
                Column("sname", DataType.TEXT),
                Column("dname", DataType.TEXT),
                Column("cname", DataType.TEXT),
                Column("enroll12", DataType.INTEGER),
                Column("NumTstTakr", DataType.INTEGER),
                Column("AvgScrRead", DataType.INTEGER),
                Column("AvgScrMath", DataType.INTEGER),
                Column("AvgScrWrite", DataType.INTEGER),
                Column("NumGE1500", DataType.INTEGER),
            ],
            foreign_keys=[ForeignKey("cds", "schools", "CDSCode")],
        )
    )
    db.create_table(
        TableSchema(
            "frpm",
            [
                Column("CDSCode", DataType.TEXT, nullable=False, primary_key=True),
                Column("Academic Year", DataType.TEXT),
                Column("County Name", DataType.TEXT),
                Column("District Name", DataType.TEXT),
                Column("School Type", DataType.TEXT),
                Column("Low Grade", DataType.TEXT),
                Column("High Grade", DataType.TEXT),
                Column("Enrollment", DataType.REAL),
                Column("FreeMealCount", DataType.REAL),
                Column("FRPMCount", DataType.REAL),
            ],
            foreign_keys=[ForeignKey("CDSCode", "schools", "CDSCode")],
        )
    )

    cities = sorted(_COUNTY_BY_CITY)
    code = 1_000_000
    used_math_scores: set[int] = set()
    used_takers: set[int] = set()
    for city in cities:
        latitude, longitude = CITY_COORDINATES[city]
        county = _COUNTY_BY_CITY[city]
        for slot in range(schools_per_city):
            kind, spans = _SCHOOL_KINDS[slot % len(_SCHOOL_KINDS)]
            code += rng.randint(11, 99)
            school_name = f"{city} {kind} {slot + 1}"
            district = f"{city} Unified School District"
            grade_span = rng.choice(list(spans))
            charter = 1 if rng.random() < 0.2 else 0
            open_year = rng.randint(1950, 2010)
            row_latitude = round(
                latitude + rng.uniform(-0.04, 0.04), 6
            )
            row_longitude = round(
                longitude + rng.uniform(-0.04, 0.04), 6
            )
            admin_first = rng.choice(
                ["Maria", "James", "Linda", "Robert", "Susan", "David"]
            )
            admin_last = rng.choice(
                ["Nguyen", "Garcia", "Smith", "Kim", "Lopez", "Chen"]
            )
            slug = school_name.lower().replace(" ", "")
            db.insert(
                "schools",
                [
                    [
                        f"{code:07d}",
                        "Active",
                        school_name,
                        district,
                        county,
                        city,
                        f"9{rng.randint(1000, 9999)}",
                        f"{rng.randint(100, 9999)} "
                        f"{rng.choice(['Main St', 'Oak Ave', 'Elm Dr', 'School Rd'])}",
                        f"({rng.randint(200, 989)}) "
                        f"{rng.randint(200, 989)}-{rng.randint(1000, 9999)}",
                        f"www.{slug}.k12.ca.us",
                        grade_span,
                        grade_span,
                        row_latitude,
                        row_longitude,
                        charter,
                        "Directly funded" if charter else "State aid",
                        rng.choice(
                            ["Unified School District", "Elementary School District"]
                        ),
                        kind,
                        "Traditional",
                        rng.choice(["N", "P"]),
                        1 if rng.random() < 0.1 else 0,
                        admin_first,
                        admin_last,
                        f"{open_year}-0{rng.randint(1, 9)}-15",
                    ]
                ],
            )
            # Only high/unified schools administer the SAT.
            if kind in ("High", "Unified", "Charter Academy"):
                # Keep math scores and taker counts unique so that
                # superlative and top-k gold answers are unambiguous.
                takers = rng.randint(40, 600)
                while takers in used_takers:
                    takers = rng.randint(40, 600)
                used_takers.add(takers)
                base = rng.randint(440, 620)
                math = min(800, base + rng.randint(-30, 60))
                while math in used_math_scores:
                    math = min(800, 440 + rng.randint(0, 240))
                used_math_scores.add(math)
                read = min(800, base + rng.randint(-40, 40))
                write = min(800, base + rng.randint(-40, 40))
                ge1500 = int(
                    takers * max(0.0, (math + read + write - 1350) / 900.0)
                )
                db.insert(
                    "satscores",
                    [
                        [
                            f"{code:07d}",
                            "S",
                            school_name,
                            district,
                            county,
                            takers + rng.randint(0, 80),
                            takers,
                            read,
                            math,
                            write,
                            ge1500,
                        ]
                    ],
                )
            enrollment = float(rng.randint(200, 2400))
            free_meals = round(enrollment * rng.uniform(0.1, 0.8), 1)
            frpm_count = round(
                min(enrollment, free_meals * rng.uniform(1.0, 1.25)), 1
            )
            low_grade, _, high_grade = grade_span.partition("-")
            db.insert(
                "frpm",
                [
                    [
                        f"{code:07d}",
                        "2014-2015",
                        county,
                        district,
                        f"{kind} Schools (Public)",
                        low_grade,
                        high_grade,
                        enrollment,
                        free_meals,
                        frpm_count,
                    ]
                ],
            )
    db.create_index("schools", "CDSCode")
    db.create_index("satscores", "cds")
    db.create_index("frpm", "CDSCode")
    return Dataset(
        name="california_schools",
        db=db,
        description=(
            "Californian schools with locations, SAT scores, and free/"
            "reduced-price meal statistics."
        ),
        frames=frames_from_db(db),
    )
