"""european_football_2: leagues, teams, players, and player attributes.

Player heights are generated on a realistic distribution so comparison
queries anchored on real-world heights ("taller than Stephen Curry",
188 cm) split the roster non-trivially.
"""

from __future__ import annotations

import random

from repro.data.base import Dataset, frames_from_db
from repro.db import Column, Database, DataType, ForeignKey, TableSchema
from repro.knowledge.football import LEAGUE_COUNTRY_FACTS

_TEAM_STEMS = [
    "United", "City", "Rovers", "Athletic", "Sporting", "Real",
    "Dynamo", "Olympic", "Racing", "Inter",
]
_PLAYER_FIRST = [
    "Aaron", "Bruno", "Carlos", "David", "Emil", "Felipe", "Gianluca",
    "Henrik", "Ivan", "Jakub", "Kevin", "Luka", "Marco", "Nathan",
    "Oscar", "Pavel", "Rafael", "Sergio", "Thomas", "Victor",
]
_PLAYER_LAST = [
    "Almeida", "Bauer", "Costa", "Dubois", "Eriksen", "Fernandez",
    "Gruber", "Horvat", "Ivanov", "Jensen", "Kovac", "Lombardi",
    "Muller", "Novak", "Oliveira", "Petrov", "Rossi", "Silva",
    "Takacs", "Visser",
]


def build(seed: int = 0, players: int = 240) -> Dataset:
    """Generate the domain deterministically from ``seed``."""
    rng = random.Random(("european_football_2", seed).__repr__())
    db = Database("european_football_2")
    db.create_table(
        TableSchema(
            "League",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("name", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "Team",
            [
                Column("team_api_id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("team_long_name", DataType.TEXT),
                Column("league_id", DataType.INTEGER),
            ],
            foreign_keys=[ForeignKey("league_id", "League", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "Player",
            [
                Column("player_api_id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("player_name", DataType.TEXT),
                Column("height", DataType.REAL),
                Column("weight", DataType.INTEGER),
                Column("birthday", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "Player_Attributes",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("player_api_id", DataType.INTEGER),
                Column("overall_rating", DataType.INTEGER),
                Column("potential", DataType.INTEGER),
                Column("preferred_foot", DataType.TEXT),
                Column("crossing", DataType.INTEGER),
                Column("volleys", DataType.INTEGER),
                Column("dribbling", DataType.INTEGER),
                Column("finishing", DataType.INTEGER),
                Column("short_passing", DataType.INTEGER),
                Column("ball_control", DataType.INTEGER),
                Column("acceleration", DataType.INTEGER),
                Column("sprint_speed", DataType.INTEGER),
                Column("stamina", DataType.INTEGER),
                Column("strength", DataType.INTEGER),
            ],
            foreign_keys=[
                ForeignKey("player_api_id", "Player", "player_api_id")
            ],
        )
    )

    for league_id, (league_name, _country, _conf) in enumerate(
        LEAGUE_COUNTRY_FACTS, start=1
    ):
        db.insert("League", [[league_id, league_name]])
        # Vary team counts across leagues so "league with the most
        # teams" style queries have unambiguous answers.
        for slot in range(3 + (league_id % 4)):
            team_id = league_id * 100 + slot
            stem = _TEAM_STEMS[(league_id + slot) % len(_TEAM_STEMS)]
            db.insert(
                "Team",
                [[team_id, f"{stem} {league_id}{slot}", league_id]],
            )

    used_names: set[str] = set()
    for player_id in range(1, players + 1):
        while True:
            name = (
                f"{rng.choice(_PLAYER_FIRST)} {rng.choice(_PLAYER_LAST)}"
            )
            if name not in used_names:
                used_names.add(name)
                break
        height = round(rng.gauss(181.0, 7.0), 2)
        height = max(160.0, min(204.0, height))
        weight = int(height * 0.42 + rng.uniform(-6, 10))
        birth_year = rng.randint(1975, 1998)
        db.insert(
            "Player",
            [
                [
                    player_id,
                    name,
                    height,
                    weight,
                    f"{birth_year}-{rng.randint(1, 12):02d}-"
                    f"{rng.randint(1, 28):02d}",
                ]
            ],
        )
        rating = rng.randint(55, 94)

        def skill(spread_low: int, spread_high: int) -> int:
            return max(20, min(97, rating + rng.randint(spread_low, spread_high)))

        db.insert(
            "Player_Attributes",
            [
                [
                    player_id,
                    player_id,
                    rating,
                    min(99, rating + rng.randint(0, 6)),
                    "left" if rng.random() < 0.25 else "right",
                    skill(-20, 8),
                    max(20, min(95, rating + rng.randint(-25, 10))),
                    skill(-20, 8),
                    skill(-22, 8),
                    skill(-12, 6),
                    skill(-12, 6),
                    skill(-18, 10),
                    max(
                        25,
                        min(
                            97,
                            int(rating - (height - 181) * 0.8)
                            + rng.randint(-10, 10),
                        ),
                    ),
                    skill(-15, 10),
                    max(
                        25,
                        min(
                            97,
                            int(rating + (height - 181) * 0.6)
                            + rng.randint(-12, 8),
                        ),
                    ),
                ]
            ],
        )
    db.create_index("Player", "player_api_id")
    db.create_index("Player_Attributes", "player_api_id")
    return Dataset(
        name="european_football_2",
        db=db,
        description=(
            "European football leagues, teams, players with heights, "
            "and per-player skill attributes."
        ),
        frames=frames_from_db(db),
    )
