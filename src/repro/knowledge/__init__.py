"""World-knowledge fact store.

The paper's "knowledge" queries require information that is *not in the
database* — which cities are in the Bay Area, how tall Stephen Curry is,
which seasons the Malaysian Grand Prix ran.  In the paper that knowledge
lives in the LM's weights; here it lives in an explicit
:class:`KnowledgeBase` of facts with *confidence* values.

Two views exist over the store:

- the **oracle** view (:class:`KnowledgeBase` itself) returns canonical
  facts and is used to compute benchmark gold answers;
- the **fuzzy** view (:class:`FuzzyKnowledge`) is what the simulated LM
  consults: low-confidence (marginal) facts are deterministically
  perturbed, reproducing the paper's observation that even hand-written
  TAG pipelines answer only ~50-60% of knowledge queries exactly.
"""

from repro.knowledge.kb import Fact, FuzzyKnowledge, KnowledgeBase

__all__ = ["Fact", "FuzzyKnowledge", "KnowledgeBase"]
