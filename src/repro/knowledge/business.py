"""Business and country facts.

Covers the debit_card_specializing domain (countries, currencies, EU and
Eurozone membership — e.g. "customers in countries that use the Euro")
and the paper's introduction example of company -> industry vertical
("what are the QoQ trends for the 'retail' vertical?").
"""

from __future__ import annotations

#: (country, uses_euro, confidence).  The BIRD debit-card data is Central
#: European; Slovakia adopted the Euro in 2009, Czechia did not — the
#: canonical fact every Eurozone knowledge query hinges on.
COUNTRY_EURO_FACTS: list[tuple[str, bool, float]] = [
    ("Czech Republic", False, 0.95),
    ("Slovakia", True, 0.9),
    ("Germany", True, 1.0),
    ("Austria", True, 0.95),
    ("France", True, 1.0),
    ("Italy", True, 1.0),
    ("Spain", True, 1.0),
    ("Poland", False, 0.9),
    ("Hungary", False, 0.85),
    ("Slovenia", True, 0.7),
    ("Croatia", True, 0.55),
    ("Denmark", False, 0.8),
    ("Sweden", False, 0.85),
    ("Switzerland", False, 0.95),
    ("Netherlands", True, 0.95),
    ("Belgium", True, 0.95),
    ("Portugal", True, 0.9),
    ("Ireland", True, 0.9),
    ("Finland", True, 0.85),
    ("Norway", False, 0.9),
    ("UK", False, 1.0),
    ("Romania", False, 0.8),
    ("Bulgaria", False, 0.75),
]

#: (country, in_eu, confidence), as of the paper's era.
COUNTRY_EU_FACTS: list[tuple[str, bool, float]] = [
    ("Czech Republic", True, 0.95),
    ("Slovakia", True, 0.95),
    ("Germany", True, 1.0),
    ("Austria", True, 0.95),
    ("France", True, 1.0),
    ("Italy", True, 1.0),
    ("Spain", True, 1.0),
    ("Poland", True, 0.9),
    ("Hungary", True, 0.9),
    ("Slovenia", True, 0.8),
    ("Croatia", True, 0.75),
    ("Denmark", True, 0.85),
    ("Sweden", True, 0.85),
    ("Switzerland", False, 0.95),
    ("Netherlands", True, 0.95),
    ("Belgium", True, 0.95),
    ("Portugal", True, 0.9),
    ("Ireland", True, 0.9),
    ("Finland", True, 0.85),
    ("Norway", False, 0.9),
    ("UK", False, 0.85),
    ("Romania", True, 0.8),
    ("Bulgaria", True, 0.75),
]

#: (country, currency_code, confidence).
COUNTRY_CURRENCY_FACTS: list[tuple[str, str, float]] = [
    ("Czech Republic", "CZK", 0.95),
    ("Slovakia", "EUR", 0.9),
    ("Germany", "EUR", 1.0),
    ("Austria", "EUR", 0.95),
    ("Poland", "PLN", 0.9),
    ("Hungary", "HUF", 0.85),
    ("Switzerland", "CHF", 0.95),
    ("Denmark", "DKK", 0.8),
    ("Sweden", "SEK", 0.85),
    ("Norway", "NOK", 0.85),
    ("UK", "GBP", 1.0),
    ("France", "EUR", 1.0),
    ("Italy", "EUR", 1.0),
    ("Spain", "EUR", 1.0),
]

#: (company, vertical, confidence) for the QoQ-by-vertical intro example.
COMPANY_VERTICAL_FACTS: list[tuple[str, str, float]] = [
    ("Walmart", "retail", 1.0),
    ("Target", "retail", 1.0),
    ("Costco", "retail", 0.95),
    ("Best Buy", "retail", 0.95),
    ("Home Depot", "retail", 0.9),
    ("Kroger", "retail", 0.9),
    ("Macy's", "retail", 0.9),
    ("Nordstrom", "retail", 0.85),
    ("Amazon", "retail", 0.6),  # retail vs tech is genuinely contested
    ("Apple", "technology", 0.95),
    ("Microsoft", "technology", 1.0),
    ("Google", "technology", 1.0),
    ("Netflix", "technology", 0.7),
    ("Salesforce", "technology", 0.9),
    ("Oracle", "technology", 0.9),
    ("JPMorgan", "finance", 1.0),
    ("Goldman Sachs", "finance", 1.0),
    ("Bank of America", "finance", 0.95),
    ("Visa", "finance", 0.8),
    ("Pfizer", "healthcare", 0.95),
    ("UnitedHealth", "healthcare", 0.9),
    ("Johnson & Johnson", "healthcare", 0.85),
    ("Exxon Mobil", "energy", 0.95),
    ("Chevron", "energy", 0.95),
    ("Shell", "energy", 0.9),
    ("Ford", "automotive", 0.95),
    ("General Motors", "automotive", 0.95),
    ("Tesla", "automotive", 0.75),
    ("Boeing", "aerospace", 0.9),
    ("Delta Air Lines", "travel", 0.85),
    ("Marriott", "travel", 0.85),
]
