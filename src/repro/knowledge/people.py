"""Facts about public figures: athlete heights and related attributes.

The benchmark's comparison queries lean on heights ("taller than Stephen
Curry"), so heights carry the person's measured height in centimetres
with a confidence reflecting how famous/verifiable the figure is.
"""

from __future__ import annotations

#: (person, height_cm, confidence)
PERSON_HEIGHT_FACTS: list[tuple[str, float, float]] = [
    # Basketball
    ("Stephen Curry", 188.0, 1.0),
    ("LeBron James", 206.0, 1.0),
    ("Kevin Durant", 208.0, 0.95),
    ("Michael Jordan", 198.0, 1.0),
    ("Shaquille O'Neal", 216.0, 1.0),
    ("Muggsy Bogues", 160.0, 0.9),
    ("Yao Ming", 229.0, 0.95),
    ("Giannis Antetokounmpo", 211.0, 0.9),
    ("Kobe Bryant", 198.0, 0.95),
    ("Chris Paul", 183.0, 0.9),
    # Football (soccer)
    ("Lionel Messi", 170.0, 1.0),
    ("Cristiano Ronaldo", 187.0, 1.0),
    ("Peter Crouch", 201.0, 0.9),
    ("Zlatan Ibrahimovic", 195.0, 0.9),
    ("Kylian Mbappe", 178.0, 0.85),
    ("Neymar", 175.0, 0.9),
    ("Diego Maradona", 165.0, 0.95),
    ("Gianluigi Buffon", 192.0, 0.85),
    ("N'Golo Kante", 168.0, 0.8),
    ("Virgil van Dijk", 193.0, 0.85),
    # Formula 1 drivers
    ("Lewis Hamilton", 174.0, 0.9),
    ("Michael Schumacher", 174.0, 0.9),
    ("Sebastian Vettel", 175.0, 0.85),
    ("Fernando Alonso", 171.0, 0.85),
    ("Kimi Raikkonen", 175.0, 0.8),
    ("Max Verstappen", 181.0, 0.85),
    ("George Russell", 185.0, 0.75),
    ("Esteban Ocon", 186.0, 0.7),
    # Other well-known figures used by comparison queries
    ("Tom Cruise", 170.0, 0.95),
    ("Danny DeVito", 147.0, 0.95),
    ("Usain Bolt", 195.0, 0.95),
    ("Serena Williams", 175.0, 0.9),
    ("Roger Federer", 185.0, 0.9),
]

#: (person, birth_year, confidence) — used by age-flavoured knowledge queries.
PERSON_BIRTH_YEAR_FACTS: list[tuple[str, int, float]] = [
    ("Stephen Curry", 1988, 0.95),
    ("LeBron James", 1984, 0.95),
    ("Lionel Messi", 1987, 1.0),
    ("Cristiano Ronaldo", 1985, 1.0),
    ("Lewis Hamilton", 1985, 0.95),
    ("Michael Schumacher", 1969, 0.95),
    ("Sebastian Vettel", 1987, 0.9),
    ("Fernando Alonso", 1981, 0.9),
    ("Max Verstappen", 1997, 0.9),
    ("Kimi Raikkonen", 1979, 0.85),
]
