"""Formula 1 facts: circuits, their locations/attributes, and race history.

The Figure 2 query ("races held on Sepang International Circuit") and
several knowledge queries in the formula_1 domain depend on this data.
The circuit list mirrors the real calendar; the dataset generator builds
the ``races`` table from :data:`RACE_HISTORY`, so the DB and the LM's
world knowledge are mutually consistent, exactly like BIRD + a trained
LM in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Circuit:
    name: str
    location: str
    country: str
    #: Whether this is a temporary street circuit.
    street: bool
    #: Geographic region used by knowledge queries.
    region: str


CIRCUITS: list[Circuit] = [
    Circuit("Sepang International Circuit", "Kuala Lumpur", "Malaysia", False, "southeast asia"),
    Circuit("Marina Bay Street Circuit", "Marina Bay", "Singapore", True, "southeast asia"),
    Circuit("Autodromo Nazionale di Monza", "Monza", "Italy", False, "europe"),
    Circuit("Silverstone Circuit", "Silverstone", "UK", False, "europe"),
    Circuit("Circuit de Monaco", "Monte-Carlo", "Monaco", True, "europe"),
    Circuit("Circuit de Spa-Francorchamps", "Spa", "Belgium", False, "europe"),
    Circuit("Suzuka Circuit", "Suzuka", "Japan", False, "east asia"),
    Circuit("Albert Park Grand Prix Circuit", "Melbourne", "Australia", True, "oceania"),
    Circuit("Circuit de Barcelona-Catalunya", "Montmelo", "Spain", False, "europe"),
    Circuit("Hockenheimring", "Hockenheim", "Germany", False, "europe"),
    Circuit("Nurburgring", "Nurburg", "Germany", False, "europe"),
    Circuit("Shanghai International Circuit", "Shanghai", "China", False, "east asia"),
    Circuit("Bahrain International Circuit", "Sakhir", "Bahrain", False, "middle east"),
    Circuit("Yas Marina Circuit", "Abu Dhabi", "UAE", False, "middle east"),
    Circuit("Circuit of the Americas", "Austin", "USA", False, "north america"),
    Circuit("Hungaroring", "Budapest", "Hungary", False, "europe"),
    Circuit("Autodromo Jose Carlos Pace", "Sao Paulo", "Brazil", False, "south america"),
    Circuit("Circuit Gilles Villeneuve", "Montreal", "Canada", True, "north america"),
    Circuit("Red Bull Ring", "Spielberg", "Austria", False, "europe"),
    Circuit("Baku City Circuit", "Baku", "Azerbaijan", True, "asia"),
]

#: Grand Prix name per circuit.
GRAND_PRIX_NAME: dict[str, str] = {
    "Sepang International Circuit": "Malaysian Grand Prix",
    "Marina Bay Street Circuit": "Singapore Grand Prix",
    "Autodromo Nazionale di Monza": "Italian Grand Prix",
    "Silverstone Circuit": "British Grand Prix",
    "Circuit de Monaco": "Monaco Grand Prix",
    "Circuit de Spa-Francorchamps": "Belgian Grand Prix",
    "Suzuka Circuit": "Japanese Grand Prix",
    "Albert Park Grand Prix Circuit": "Australian Grand Prix",
    "Circuit de Barcelona-Catalunya": "Spanish Grand Prix",
    "Hockenheimring": "German Grand Prix",
    "Nurburgring": "European Grand Prix",
    "Shanghai International Circuit": "Chinese Grand Prix",
    "Bahrain International Circuit": "Bahrain Grand Prix",
    "Yas Marina Circuit": "Abu Dhabi Grand Prix",
    "Circuit of the Americas": "United States Grand Prix",
    "Hungaroring": "Hungarian Grand Prix",
    "Autodromo Jose Carlos Pace": "Brazilian Grand Prix",
    "Circuit Gilles Villeneuve": "Canadian Grand Prix",
    "Red Bull Ring": "Austrian Grand Prix",
    "Baku City Circuit": "Azerbaijan Grand Prix",
}

#: Years each circuit hosted its Grand Prix (inclusive ranges flattened).
#: Sepang's 1999-2017 run matches the paper's Figure 2 answer.
RACE_HISTORY: dict[str, list[int]] = {
    "Sepang International Circuit": list(range(1999, 2018)),
    "Marina Bay Street Circuit": list(range(2008, 2018)),
    "Autodromo Nazionale di Monza": list(range(1999, 2018)),
    "Silverstone Circuit": list(range(1999, 2018)),
    "Circuit de Monaco": list(range(1999, 2018)),
    "Circuit de Spa-Francorchamps": [year for year in range(1999, 2018) if year not in (2003, 2006)],
    "Suzuka Circuit": [year for year in range(1999, 2018) if year not in (2007, 2008)],
    "Albert Park Grand Prix Circuit": list(range(1999, 2018)),
    "Circuit de Barcelona-Catalunya": list(range(1999, 2018)),
    "Hockenheimring": [2001, 2002, 2003, 2004, 2005, 2006, 2008, 2010, 2012, 2014, 2016],
    "Nurburgring": [1999, 2000, 2001, 2002, 2003, 2004, 2005, 2006, 2007, 2009, 2011, 2013],
    "Shanghai International Circuit": list(range(2004, 2018)),
    "Bahrain International Circuit": [year for year in range(2004, 2018) if year != 2011],
    "Yas Marina Circuit": list(range(2009, 2018)),
    "Circuit of the Americas": list(range(2012, 2018)),
    "Hungaroring": list(range(1999, 2018)),
    "Autodromo Jose Carlos Pace": list(range(1999, 2018)),
    "Circuit Gilles Villeneuve": [year for year in range(1999, 2018) if year != 2009],
    "Red Bull Ring": list(range(2014, 2018)),
    "Baku City Circuit": [2016, 2017],
}

#: Approximate race date (month, day) per circuit per era; the generator
#: perturbs days deterministically per year.
TYPICAL_RACE_MONTH: dict[str, int] = {
    "Sepang International Circuit": 3,
    "Marina Bay Street Circuit": 9,
    "Autodromo Nazionale di Monza": 9,
    "Silverstone Circuit": 7,
    "Circuit de Monaco": 5,
    "Circuit de Spa-Francorchamps": 8,
    "Suzuka Circuit": 10,
    "Albert Park Grand Prix Circuit": 3,
    "Circuit de Barcelona-Catalunya": 5,
    "Hockenheimring": 7,
    "Nurburgring": 6,
    "Shanghai International Circuit": 4,
    "Bahrain International Circuit": 4,
    "Yas Marina Circuit": 11,
    "Circuit of the Americas": 10,
    "Hungaroring": 7,
    "Autodromo Jose Carlos Pace": 11,
    "Circuit Gilles Villeneuve": 6,
    "Red Bull Ring": 6,
    "Baku City Circuit": 6,
}

#: (circuit attribute fact, confidence) for region/street membership.
#: Core facts are 1.0; a handful are culturally fuzzy.
CIRCUIT_FACT_CONFIDENCE: dict[tuple[str, str], float] = {
    ("Albert Park Grand Prix Circuit", "street"): 0.6,
    ("Circuit Gilles Villeneuve", "street"): 0.55,
    ("Baku City Circuit", "region"): 0.6,
}

#: World champions by season (1999-2017), for knowledge queries.
WORLD_CHAMPIONS: dict[int, str] = {
    1999: "Mika Hakkinen",
    2000: "Michael Schumacher",
    2001: "Michael Schumacher",
    2002: "Michael Schumacher",
    2003: "Michael Schumacher",
    2004: "Michael Schumacher",
    2005: "Fernando Alonso",
    2006: "Fernando Alonso",
    2007: "Kimi Raikkonen",
    2008: "Lewis Hamilton",
    2009: "Jenson Button",
    2010: "Sebastian Vettel",
    2011: "Sebastian Vettel",
    2012: "Sebastian Vettel",
    2013: "Sebastian Vettel",
    2014: "Lewis Hamilton",
    2015: "Lewis Hamilton",
    2016: "Nico Rosberg",
    2017: "Lewis Hamilton",
}

#: Driver nationality facts with confidence (fuzzier for less famous).
DRIVER_NATIONALITY: list[tuple[str, str, float]] = [
    ("Lewis Hamilton", "British", 1.0),
    ("Michael Schumacher", "German", 1.0),
    ("Sebastian Vettel", "German", 0.95),
    ("Fernando Alonso", "Spanish", 0.95),
    ("Kimi Raikkonen", "Finnish", 0.95),
    ("Mika Hakkinen", "Finnish", 0.9),
    ("Jenson Button", "British", 0.9),
    ("Nico Rosberg", "German", 0.85),
    ("Max Verstappen", "Dutch", 0.9),
    ("Felipe Massa", "Brazilian", 0.85),
    ("Rubens Barrichello", "Brazilian", 0.85),
    ("Mark Webber", "Australian", 0.85),
    ("Daniel Ricciardo", "Australian", 0.85),
    ("Valtteri Bottas", "Finnish", 0.8),
    ("Sergio Perez", "Mexican", 0.85),
    ("Romain Grosjean", "French", 0.7),
    ("Nico Hulkenberg", "German", 0.7),
    ("Carlos Sainz", "Spanish", 0.75),
    ("Juan Pablo Montoya", "Colombian", 0.8),
    ("Ralf Schumacher", "German", 0.8),
]
