"""Movie facts for the paper's Figure 1 worked example.

The example query — "Summarize the reviews of the highest grossing
romance movie considered a 'classic'" — needs an LM judgment of which
films are classics.  ``classic`` membership carries confidence like
every other cultural fact.  Revenue figures are worldwide gross in
millions of USD (approximate), used by the example dataset generator.
"""

from __future__ import annotations

#: (title, year, genre, revenue_musd, classic, confidence)
MOVIE_FACTS: list[tuple[str, int, str, float, bool, float]] = [
    ("Titanic", 1997, "Romance", 2257.8, True, 1.0),
    ("Casablanca", 1942, "Romance", 10.2, True, 1.0),
    ("Gone with the Wind", 1939, "Romance", 402.4, True, 0.95),
    ("Roman Holiday", 1953, "Romance", 12.0, True, 0.9),
    ("The Notebook", 2004, "Romance", 115.6, False, 0.6),
    ("Pretty Woman", 1990, "Romance", 463.4, False, 0.55),
    ("La La Land", 2016, "Romance", 446.1, False, 0.7),
    ("Before Sunrise", 1995, "Romance", 5.5, True, 0.6),
    ("Notting Hill", 1999, "Romance", 363.9, False, 0.7),
    ("When Harry Met Sally", 1989, "Romance", 92.8, True, 0.7),
    ("The Shawshank Redemption", 1994, "Drama", 73.3, True, 0.95),
    ("The Godfather", 1972, "Crime", 250.0, True, 1.0),
    ("Citizen Kane", 1941, "Drama", 1.6, True, 0.95),
    ("Avatar", 2009, "SciFi", 2923.7, False, 0.8),
    ("Avengers: Endgame", 2019, "Action", 2799.4, False, 0.9),
    ("Star Wars", 1977, "SciFi", 775.4, True, 0.95),
    ("Jurassic Park", 1993, "SciFi", 1109.8, True, 0.7),
    ("The Matrix", 1999, "SciFi", 467.2, True, 0.75),
    ("Frozen", 2013, "Animation", 1290.0, False, 0.85),
    ("Toy Story", 1995, "Animation", 394.4, True, 0.7),
]

#: Short synthetic review snippets per title, used by the generator.
MOVIE_REVIEWS: dict[str, list[str]] = {
    "Titanic": [
        "A sweeping, heartbreaking romance with breathtaking visuals.",
        "The love story feels timeless and the ending still devastates.",
        "Overlong in places, but an unforgettable spectacle.",
    ],
    "Casablanca": [
        "The definitive classic; every line is quotable.",
        "A perfect blend of romance and wartime intrigue.",
    ],
    "Gone with the Wind": [
        "Epic in scale and ambition, though it shows its age.",
        "A grand, sweeping romance of the old Hollywood era.",
    ],
    "The Notebook": [
        "Sweet but slow; the leads carry a thin story.",
        "A tearjerker that knows exactly what it is.",
    ],
    "Pretty Woman": [
        "Charming leads elevate a predictable fairy tale.",
    ],
    "La La Land": [
        "A dazzling, bittersweet love letter to dreamers.",
        "Gorgeous music and a brave, melancholy ending.",
    ],
    "Before Sunrise": [
        "Two people talking, and it is utterly captivating.",
    ],
    "Notting Hill": [
        "Warm, funny, and effortlessly charming.",
    ],
    "When Harry Met Sally": [
        "The sharpest romantic comedy script ever written.",
    ],
    "Roman Holiday": [
        "Effortlessly elegant, a timeless romance.",
    ],
}
