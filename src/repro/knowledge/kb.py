"""The fact store and its two views (oracle and fuzzy).

Facts are (relation, subject) -> (value, confidence) entries.  Subjects
are strings or tuples of strings and are matched case-insensitively.

:class:`KnowledgeBase` is the *oracle*: canonical truth, used by dataset
generators and by the benchmark's gold-answer functions.

:class:`FuzzyKnowledge` is the *LM's belief*: a deterministic seeded view
in which a fact of confidence ``c`` is misremembered with probability
``1 - c`` (booleans flip, numbers drift, strings are sometimes unknown).
This models how a real LM is reliable on famous facts and unreliable on
marginal ones, which is precisely what separates the paper's 50-60%
hand-written-TAG accuracy from 100%.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.knowledge import business, football, formula1, geography, people

Subject = str | tuple[str, ...]


@dataclass(frozen=True)
class Fact:
    relation: str
    subject: Subject
    value: Any
    confidence: float


def _normalize(subject: Subject) -> tuple[str, ...]:
    if isinstance(subject, str):
        return (subject.strip().lower(),)
    return tuple(part.strip().lower() for part in subject)


class KnowledgeBase:
    """Canonical world knowledge (the oracle view)."""

    def __init__(self) -> None:
        self._facts: dict[tuple[str, tuple[str, ...]], Fact] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(
        self,
        relation: str,
        subject: Subject,
        value: Any,
        confidence: float = 1.0,
    ) -> None:
        if not 0.0 < confidence <= 1.0:
            raise ValueError(f"confidence {confidence} outside (0, 1]")
        fact = Fact(relation, subject, value, confidence)
        self._facts[(relation, _normalize(subject))] = fact

    @classmethod
    def default(cls) -> "KnowledgeBase":
        """The standard fact store used across the library."""
        kb = cls()
        for city, region, member, confidence in geography.CITY_REGION_FACTS:
            kb.add("in_region", (city, region), member, confidence)
        for person, height, confidence in people.PERSON_HEIGHT_FACTS:
            kb.add("height_cm", person, height, confidence)
        for person, year, confidence in people.PERSON_BIRTH_YEAR_FACTS:
            kb.add("birth_year", person, year, confidence)
        for circuit in formula1.CIRCUITS:
            kb.add("circuit_location", circuit.name, circuit.location)
            kb.add("circuit_country", circuit.name, circuit.country)
            street_confidence = formula1.CIRCUIT_FACT_CONFIDENCE.get(
                (circuit.name, "street"), 0.95
            )
            kb.add(
                "street_circuit", circuit.name, circuit.street,
                street_confidence,
            )
            region_confidence = formula1.CIRCUIT_FACT_CONFIDENCE.get(
                (circuit.name, "region"), 0.95
            )
            kb.add(
                "circuit_region", circuit.name, circuit.region,
                region_confidence,
            )
        for circuit_name, gp_name in formula1.GRAND_PRIX_NAME.items():
            kb.add("grand_prix_name", circuit_name, gp_name)
        for circuit_name, years in formula1.RACE_HISTORY.items():
            kb.add("race_years", circuit_name, tuple(years))
        for year, champion in formula1.WORLD_CHAMPIONS.items():
            kb.add("world_champion", str(year), champion, 0.9)
        for driver, nationality, confidence in formula1.DRIVER_NATIONALITY:
            kb.add("driver_nationality", driver, nationality, confidence)
        for country, flag, confidence in business.COUNTRY_EURO_FACTS:
            kb.add("uses_euro", country, flag, confidence)
        for country, flag, confidence in business.COUNTRY_EU_FACTS:
            kb.add("in_eu", country, flag, confidence)
        for country, code, confidence in business.COUNTRY_CURRENCY_FACTS:
            kb.add("currency", country, code, confidence)
        for company, vertical, confidence in business.COMPANY_VERTICAL_FACTS:
            kb.add("company_vertical", company, vertical, confidence)
        for league, country, confidence in football.LEAGUE_COUNTRY_FACTS:
            kb.add("league_country", league, country, confidence)
        for league, member, confidence in football.BIG_FIVE_LEAGUE_FACTS:
            kb.add("big_five_league", league, member, confidence)
        for country, member, confidence in football.UK_HOME_NATION_FACTS:
            kb.add("uk_home_nation", country, member, confidence)
        return kb

    # ------------------------------------------------------------------
    # oracle lookups
    # ------------------------------------------------------------------

    def get(self, relation: str, subject: Subject) -> Fact | None:
        return self._facts.get((relation, _normalize(subject)))

    def value(
        self, relation: str, subject: Subject, default: Any = None
    ) -> Any:
        fact = self.get(relation, subject)
        return default if fact is None else fact.value

    def facts_for_relation(self, relation: str) -> list[Fact]:
        return [
            fact
            for (fact_relation, _), fact in self._facts.items()
            if fact_relation == relation
        ]

    def __len__(self) -> int:
        return len(self._facts)

    # -- geography -------------------------------------------------------

    def is_in_region(self, city: str, region: str) -> bool:
        """Canonical region membership; unknown cities are non-members."""
        return bool(self.value("in_region", (city, region), False))

    def cities_in_region(self, region: str) -> set[str]:
        return {
            fact.subject[0]
            for fact in self.facts_for_relation("in_region")
            if fact.subject[1] == region.strip().lower() and fact.value
        }

    # -- people ------------------------------------------------------------

    def person_height_cm(self, person: str) -> float | None:
        return self.value("height_cm", person)

    # -- formula 1 ----------------------------------------------------------

    def race_years(self, circuit: str) -> tuple[int, ...]:
        return tuple(self.value("race_years", circuit, ()))

    def grand_prix_name(self, circuit: str) -> str | None:
        return self.value("grand_prix_name", circuit)

    # -- business -------------------------------------------------------------

    def uses_euro(self, country: str) -> bool:
        return bool(self.value("uses_euro", country, False))


class FuzzyKnowledge:
    """The simulated LM's belief about the world.

    A fact of confidence ``c`` is returned wrong with probability
    ``(1 - c) * skepticism``, decided by a deterministic hash of
    ``(seed, relation, subject)``, so the same model seed always holds
    the same (possibly wrong) beliefs — queries are reproducible and a
    belief never flip-flops within a run.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        seed: int = 0,
        skepticism: float = 1.0,
    ) -> None:
        self._kb = kb
        self._seed = seed
        self._skepticism = skepticism

    def _unit(self, relation: str, subject: Subject) -> float:
        """Deterministic pseudo-random in [0, 1) for one fact."""
        key = "|".join(
            (str(self._seed), relation) + _normalize(subject)
        )
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _is_wrong(self, fact: Fact, relation: str, subject: Subject) -> bool:
        error_probability = (1.0 - fact.confidence) * self._skepticism
        return self._unit(relation, subject) < error_probability

    def believe(
        self, relation: str, subject: Subject, default: Any = None
    ) -> Any:
        """The LM's belief for a fact; ``default`` when truly unknown."""
        fact = self._kb.get(relation, subject)
        if fact is None:
            return default
        if not self._is_wrong(fact, relation, subject):
            return fact.value
        if isinstance(fact.value, bool):
            return not fact.value
        if isinstance(fact.value, (int, float)):
            # Misremembered magnitude: drift by 2-6%.
            drift = 0.02 + 0.04 * self._unit(relation + "#drift", subject)
            sign = 1 if self._unit(relation + "#sign", subject) < 0.5 else -1
            return type(fact.value)(round(fact.value * (1 + sign * drift), 1))
        if isinstance(fact.value, tuple):
            # Misremembered list: drop the last element.
            return fact.value[:-1] if len(fact.value) > 1 else fact.value
        return default  # forgotten string-valued fact

    # -- typed conveniences mirroring the oracle API ------------------------

    def believes_in_region(self, city: str, region: str) -> bool:
        return bool(self.believe("in_region", (city, region), False))

    def believed_height_cm(self, person: str) -> float | None:
        return self.believe("height_cm", person)

    def believed_race_years(self, circuit: str) -> tuple[int, ...]:
        return tuple(self.believe("race_years", circuit, ()))

    def believed_uses_euro(self, country: str) -> bool:
        return bool(self.believe("uses_euro", country, False))
