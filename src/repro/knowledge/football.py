"""European football facts for the european_football_2 domain.

League -> country and "big five league" memberships power knowledge
queries like "teams playing in a Big Five league"; national-team facts
power player-level knowledge queries.
"""

from __future__ import annotations

#: (league, country, confidence).
LEAGUE_COUNTRY_FACTS: list[tuple[str, str, float]] = [
    ("England Premier League", "England", 1.0),
    ("Spain LIGA BBVA", "Spain", 0.95),
    ("Germany 1. Bundesliga", "Germany", 0.95),
    ("Italy Serie A", "Italy", 1.0),
    ("France Ligue 1", "France", 0.95),
    ("Netherlands Eredivisie", "Netherlands", 0.9),
    ("Portugal Liga ZON Sagres", "Portugal", 0.85),
    ("Scotland Premier League", "Scotland", 0.9),
    ("Belgium Jupiler League", "Belgium", 0.85),
    ("Poland Ekstraklasa", "Poland", 0.8),
    ("Switzerland Super League", "Switzerland", 0.8),
]

#: The European "Big Five" leagues (revenue-defined; membership is firm
#: for the top four, with France culturally marginal in casual usage).
BIG_FIVE_LEAGUE_FACTS: list[tuple[str, bool, float]] = [
    ("England Premier League", True, 1.0),
    ("Spain LIGA BBVA", True, 0.95),
    ("Germany 1. Bundesliga", True, 0.95),
    ("Italy Serie A", True, 0.95),
    ("France Ligue 1", True, 0.7),
    ("Netherlands Eredivisie", False, 0.85),
    ("Portugal Liga ZON Sagres", False, 0.85),
    ("Scotland Premier League", False, 0.9),
    ("Belgium Jupiler League", False, 0.9),
    ("Poland Ekstraklasa", False, 0.95),
    ("Switzerland Super League", False, 0.95),
]

#: (country, is_uk_home_nation, confidence) — knowledge queries about
#: "leagues in the United Kingdom" need England+Scotland membership.
UK_HOME_NATION_FACTS: list[tuple[str, bool, float]] = [
    ("England", True, 1.0),
    ("Scotland", True, 0.95),
    ("Wales", True, 0.9),
    ("Northern Ireland", True, 0.85),
    ("Ireland", False, 0.75),
    ("Spain", False, 1.0),
    ("Germany", False, 1.0),
    ("Italy", False, 1.0),
    ("France", False, 1.0),
    ("Netherlands", False, 1.0),
    ("Portugal", False, 1.0),
    ("Belgium", False, 1.0),
    ("Poland", False, 1.0),
    ("Switzerland", False, 1.0),
]
