"""Semantic operators over dataframes (a LOTUS-style runtime).

The paper's hand-written TAG pipelines are LOTUS programs: relational
dataframe transforms composed with LM-backed *semantic operators* —
``sem_filter``, ``sem_topk``, ``sem_agg``, ``sem_map``, ``sem_join``.
This package reimplements those operator semantics over
:class:`repro.frame.DataFrame`, executing every LM judgment through the
batched inference API of :class:`repro.lm.SimulatedLM` (which is where
hand-written TAG's low execution time comes from, §4.3).

Instructions use ``{Column}`` placeholders, exactly like the paper's
Appendix C pipelines::

    ops = SemanticOperators(lm)
    sv = ops.sem_filter(cities, "{City} is a city in the Silicon Valley region")
    top = ops.sem_topk(posts, "What {Title} is most technical?", k=5)
    text = ops.sem_agg(merged, "Summarize the comments", columns=["Text"])
"""

from repro.semantic.engine import SemanticEngine
from repro.semantic.operators import SemanticOperators

__all__ = ["SemanticEngine", "SemanticOperators"]
