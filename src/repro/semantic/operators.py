"""The semantic operators: sem_filter, sem_topk, sem_agg, sem_map, sem_join.

Operator semantics follow LOTUS:

- ``sem_filter`` keeps rows the LM judges to satisfy the instruction
  (one batched yes/no judgment per row);
- ``sem_topk`` returns the k best rows *in order*, using quickselect
  with an LM pairwise comparator — pivot comparisons are batched, the
  optimisation LOTUS's engine applies;
- ``sem_agg`` folds rows into one text answer hierarchically, so
  arbitrarily many rows fit the model's context window;
- ``sem_map`` computes a per-row judgment or score column;
- ``sem_join`` keeps (left, right) pairs the LM judges related.
"""

from __future__ import annotations

import re

from repro.errors import SemanticOperatorError
from repro.frame import DataFrame
from repro.lm import SimulatedLM
from repro.semantic.engine import SemanticEngine

_PLACEHOLDER_RE = re.compile(r"\{([^{}]+)\}")

#: Rows folded per sem_agg leaf call (keeps each call inside context).
_AGG_CHUNK_ROWS = 24


def placeholders(instruction: str) -> list[str]:
    """Column placeholders referenced by an instruction, in order."""
    return _PLACEHOLDER_RE.findall(instruction)


def fill(instruction: str, record: dict[str, object]) -> str:
    """Substitute ``{Column}`` placeholders with the row's values."""

    def replace(match: re.Match[str]) -> str:
        name = match.group(1)
        if name not in record:
            raise SemanticOperatorError(
                f"instruction references unknown column {name!r}"
            )
        return str(record[name])

    return _PLACEHOLDER_RE.sub(replace, instruction)


def _criterion_of(instruction: str) -> str:
    """The instruction with placeholders blanked, used as a criterion."""
    return _PLACEHOLDER_RE.sub("", instruction).strip()


class SemanticOperators:
    """Semantic operators bound to one LM (via a batching engine)."""

    def __init__(
        self,
        lm: SimulatedLM,
        batch_size: int = 32,
    ) -> None:
        self.engine = SemanticEngine(lm, batch_size=batch_size)

    # ------------------------------------------------------------------
    # sem_filter
    # ------------------------------------------------------------------

    def sem_filter(self, frame: DataFrame, instruction: str) -> DataFrame:
        """Rows for which the LM judges the filled instruction true."""
        self._check_instruction(frame, instruction, needs_placeholder=True)
        if frame.empty:
            return frame
        conditions = [
            fill(instruction, record) for _, record in frame.iterrows()
        ]
        verdicts = self.engine.judge(conditions)
        return frame.filter_mask(verdicts)

    # ------------------------------------------------------------------
    # sem_topk
    # ------------------------------------------------------------------

    def sem_topk(
        self,
        frame: DataFrame,
        instruction: str,
        k: int,
        method: str = "quickselect",
    ) -> DataFrame:
        """The ``k`` rows best matching the instruction, best first.

        Two strategies, mirroring LOTUS's top-k algorithms:

        - ``"quickselect"`` (default): pairwise LM comparisons,
          batching every candidate-vs-pivot round; O(n log n)
          comparisons worst case, but each comparison is a sharper
          judgment than an absolute score;
        - ``"score"``: one graded scoring call per row (one batch
          total) and a sort — cheaper, but absolute scores are noisier
          than pairwise preferences on near-ties.

        The strategy ablation benchmark compares their cost/accuracy.
        """
        if k < 1:
            raise SemanticOperatorError("k must be >= 1")
        if method not in ("quickselect", "score"):
            raise SemanticOperatorError(
                f"sem_topk method must be 'quickselect' or 'score', "
                f"got {method!r}"
            )
        self._check_instruction(frame, instruction, needs_placeholder=True)
        if len(frame) <= 1:
            return frame
        criterion = _criterion_of(instruction)
        # Items are the raw placeholder values, not the filled sentence:
        # the comparator judges the data, with the instruction as the
        # criterion (mirrors LOTUS's sem_topk(langex) semantics).
        names = placeholders(instruction)
        items = [
            ", ".join(str(record[name]) for name in names)
            for _, record in frame.iterrows()
        ]
        if method == "score":
            scores = self.engine.score(criterion, items)
            order = sorted(
                range(len(items)),
                key=lambda index: scores[index],
                reverse=True,
            )
        else:
            order = self._quickselect_order(
                criterion,
                items,
                list(range(len(items))),
                min(k, len(items)),
            )
        return frame.take(order[:k])

    def _quickselect_order(
        self,
        criterion: str,
        items: list[str],
        indices: list[int],
        k: int,
    ) -> list[int]:
        if len(indices) <= 1 or k <= 0:
            return indices
        pivot = indices[len(indices) // 2]
        others = [index for index in indices if index != pivot]
        wins = self.engine.compare(
            criterion,
            [(items[index], items[pivot]) for index in others],
        )
        better = [index for index, won in zip(others, wins) if won]
        worse = [index for index, won in zip(others, wins) if not won]
        if len(better) >= k:
            return self._quickselect_order(criterion, items, better, k)
        ordered_better = self._quickselect_order(
            criterion, items, better, len(better)
        )
        remaining = k - len(better) - 1
        ordered_worse = self._quickselect_order(
            criterion, items, worse, max(remaining, 0)
        )
        return ordered_better + [pivot] + ordered_worse

    # ------------------------------------------------------------------
    # sem_agg
    # ------------------------------------------------------------------

    def sem_agg(
        self,
        frame: DataFrame,
        instruction: str,
        columns: list[str] | None = None,
    ) -> str:
        """Fold all rows into one natural-language answer.

        Rows are serialized (optionally restricted to ``columns``),
        summarised in chunks, and the chunk summaries are folded again
        until a single text remains — the iterative aggregation pattern
        the paper highlights for reasoning across many rows.
        """
        use_columns = columns or frame.columns
        missing = [name for name in use_columns if name not in frame]
        if missing:
            raise SemanticOperatorError(f"unknown column(s) {missing}")
        if frame.empty:
            return ""
        items = [
            "; ".join(
                f"{name}: {record[name]}" for name in use_columns
            )
            for _, record in frame.iterrows()
        ]
        while len(items) > _AGG_CHUNK_ROWS:
            chunks = [
                items[start : start + _AGG_CHUNK_ROWS]
                for start in range(0, len(items), _AGG_CHUNK_ROWS)
            ]
            items = self.engine.summarize_batch(instruction, chunks)
        return self.engine.summarize(instruction, items)

    def sem_agg_by(
        self,
        frame: DataFrame,
        instruction: str,
        by: str,
        columns: list[str] | None = None,
        output_column: str = "summary",
    ) -> DataFrame:
        """Per-group sem_agg: one folded answer per value of ``by``.

        Returns a frame with the grouping column and ``output_column``,
        in first-occurrence group order — the grouped-aggregation shape
        of LOTUS's sem_agg.
        """
        if by not in frame:
            raise SemanticOperatorError(f"unknown column {by!r}")
        groups = frame.groupby(by)
        keys: list[object] = []
        summaries: list[str] = []
        for sub_frame in groups.apply(lambda group: group):
            keys.append(sub_frame[by][0])
            summaries.append(
                self.sem_agg(sub_frame, instruction, columns=columns)
            )
        return DataFrame({by: keys, output_column: summaries})

    # ------------------------------------------------------------------
    # sem_search
    # ------------------------------------------------------------------

    def sem_search(
        self,
        frame: DataFrame,
        query: str,
        text_column: str,
        k: int = 5,
    ) -> DataFrame:
        """The ``k`` rows whose ``text_column`` the LM judges most
        relevant to a natural-language query, best first (LOTUS's
        sem_search / natural-language specifier retrieval)."""
        if k < 1:
            raise SemanticOperatorError("k must be >= 1")
        if text_column not in frame:
            raise SemanticOperatorError(
                f"unknown column {text_column!r}"
            )
        if frame.empty:
            return frame
        documents = [
            str(value) for value in frame[text_column].tolist()
        ]
        scores = self.engine.relevance(query, documents)
        order = sorted(
            range(len(scores)),
            key=lambda index: scores[index],
            reverse=True,
        )
        return frame.take(order[:k])

    # ------------------------------------------------------------------
    # sem_map
    # ------------------------------------------------------------------

    def sem_map(
        self,
        frame: DataFrame,
        instruction: str,
        output_column: str,
        mode: str = "judge",
    ) -> DataFrame:
        """Add a per-row LM judgment (``judge``) or score (``score``)."""
        self._check_instruction(frame, instruction, needs_placeholder=True)
        if mode not in ("judge", "score"):
            raise SemanticOperatorError(
                f"sem_map mode must be 'judge' or 'score', got {mode!r}"
            )
        filled = [
            fill(instruction, record) for _, record in frame.iterrows()
        ]
        if mode == "judge":
            values: list[object] = list(self.engine.judge(filled))
        else:
            criterion = _criterion_of(instruction)
            values = list(self.engine.score(criterion, filled))
        result = frame.take(range(len(frame)))
        result[output_column] = values
        return result

    # ------------------------------------------------------------------
    # sem_join
    # ------------------------------------------------------------------

    def sem_join(
        self,
        left: DataFrame,
        right: DataFrame,
        instruction: str,
        max_pairs: int = 2000,
    ) -> DataFrame:
        """Keep (left x right) pairs the LM judges to satisfy the
        instruction; placeholders may reference columns of either side
        (column names must not collide)."""
        collisions = set(left.columns) & set(right.columns)
        if collisions:
            raise SemanticOperatorError(
                f"sem_join requires disjoint columns; shared: "
                f"{sorted(collisions)}"
            )
        total_pairs = len(left) * len(right)
        if total_pairs > max_pairs:
            raise SemanticOperatorError(
                f"sem_join over {total_pairs} pairs exceeds max_pairs="
                f"{max_pairs}; pre-filter the inputs"
            )
        conditions: list[str] = []
        pairs: list[tuple[dict, dict]] = []
        for _, left_record in left.iterrows():
            for _, right_record in right.iterrows():
                combined = dict(left_record)
                combined.update(right_record)
                conditions.append(fill(instruction, combined))
                pairs.append((left_record, right_record))
        if not conditions:
            return DataFrame(
                {name: [] for name in left.columns + right.columns}
            )
        verdicts = self.engine.judge(conditions)
        kept = [
            {**left_record, **right_record}
            for (left_record, right_record), verdict in zip(pairs, verdicts)
            if verdict
        ]
        if not kept:
            return DataFrame(
                {name: [] for name in left.columns + right.columns}
            )
        return DataFrame.from_records(kept)

    # ------------------------------------------------------------------

    @staticmethod
    def _check_instruction(
        frame: DataFrame, instruction: str, needs_placeholder: bool
    ) -> None:
        names = placeholders(instruction)
        if needs_placeholder and not names:
            raise SemanticOperatorError(
                "instruction must reference at least one {Column}"
            )
        missing = [name for name in names if name not in frame]
        if missing:
            raise SemanticOperatorError(
                f"instruction references unknown column(s) {missing}"
            )
