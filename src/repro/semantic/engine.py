"""Batched LM execution primitives used by the semantic operators."""

from __future__ import annotations

from collections.abc import Sequence

from repro.lm import SimulatedLM, prompts


class SemanticEngine:
    """Chunks operator workloads into LM batches.

    ``batch_size`` bounds how many judgments share one batch; larger
    batches amortise overhead better (the batching ablation sweeps it).
    """

    def __init__(self, lm: SimulatedLM, batch_size: int = 32) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.lm = lm
        self.batch_size = batch_size

    def _run_batched(
        self, built_prompts: list[str], max_tokens: int | None = None
    ) -> list[str]:
        responses: list[str] = []
        for start in range(0, len(built_prompts), self.batch_size):
            chunk = built_prompts[start : start + self.batch_size]
            responses.extend(
                response.text
                for response in self.lm.complete_batch(chunk, max_tokens)
            )
        return responses

    def judge(self, conditions: Sequence[str]) -> list[bool]:
        """Boolean judgment per condition (yes/no prompts)."""
        built = [
            prompts.judgment_prompt(condition) for condition in conditions
        ]
        return [
            text.strip().lower().startswith("yes")
            for text in self._run_batched(built, max_tokens=4)
        ]

    def score(self, criterion: str, items: Sequence[str]) -> list[float]:
        """Graded score per item against one criterion."""
        built = [prompts.scoring_prompt(criterion, item) for item in items]
        return [
            _parse_float(text)
            for text in self._run_batched(built, max_tokens=8)
        ]

    def relevance(
        self, query: str, documents: Sequence[str]
    ) -> list[float]:
        """Relevance score per document (reranking)."""
        built = [
            prompts.relevance_prompt(query, document)
            for document in documents
        ]
        return [
            _parse_float(text)
            for text in self._run_batched(built, max_tokens=8)
        ]

    def compare(
        self, criterion: str, pairs: Sequence[tuple[str, str]]
    ) -> list[bool]:
        """Pairwise winner per (left, right): True when left wins."""
        built = [
            prompts.comparison_prompt(criterion, left, right)
            for left, right in pairs
        ]
        return [
            text.strip().upper().startswith("A")
            for text in self._run_batched(built, max_tokens=4)
        ]

    def summarize(self, instruction: str, items: Sequence[str]) -> str:
        """One summarisation call over listed items."""
        response = self.lm.complete(
            prompts.summary_prompt(instruction, items), max_tokens=256
        )
        return response.text

    def summarize_batch(
        self, instruction: str, chunks: Sequence[Sequence[str]]
    ) -> list[str]:
        """Summarise several chunks in one batch (sem_agg's fold step)."""
        built = [
            prompts.summary_prompt(instruction, chunk)
            for chunk in chunks
        ]
        return self._run_batched(built, max_tokens=256)


def _parse_float(text: str) -> float:
    try:
        return float(text.strip())
    except ValueError:
        return 0.0
