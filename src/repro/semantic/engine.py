"""Batched LM execution primitives used by the semantic operators."""

from __future__ import annotations

from collections.abc import Sequence

from repro.db.udfcache import UDFMemoCache
from repro.lm import SimulatedLM, prompts


class SemanticEngine:
    """Chunks operator workloads into LM batches.

    ``batch_size`` bounds how many judgments share one batch; larger
    batches amortise overhead better (the batching ablation sweeps it).

    Identical prompts within a chunk are deduplicated before
    ``complete_batch`` — duplicate cell values in a ``sem_filter`` /
    ``sem_map`` column cost one judgment, not one per row.  Passing a
    :class:`~repro.db.udfcache.UDFMemoCache` (e.g. a Database's
    ``udf_cache``) extends the reuse across calls and operators.
    Dedup/memo traffic is metered on the LM's
    ``usage.udf_cache_hits``/``udf_cache_misses``, same contract as
    the SQL engine's batched UDF operators: a hit is an occurrence
    served without a new invocation, a miss a dispatched prompt.
    """

    def __init__(
        self,
        lm: SimulatedLM,
        batch_size: int = 32,
        memo_cache: UDFMemoCache | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.lm = lm
        self.batch_size = batch_size
        self.memo_cache = memo_cache

    def _run_batched(
        self, built_prompts: list[str], max_tokens: int | None = None
    ) -> list[str]:
        results: list[str | None] = [None] * len(built_prompts)
        usage = self.lm.usage
        pending: list[int] = []
        for position, prompt in enumerate(built_prompts):
            if self.memo_cache is not None:
                found, text = self.memo_cache.lookup(
                    _memo_key(prompt, max_tokens)
                )
                if found:
                    results[position] = text
                    usage.udf_cache_hits += 1
                    continue
            pending.append(position)
        for start in range(0, len(pending), self.batch_size):
            chunk = pending[start : start + self.batch_size]
            # First occurrence of each distinct prompt is dispatched;
            # repeats within the chunk share its response.
            occurrences: dict[str, list[int]] = {}
            for position in chunk:
                occurrences.setdefault(
                    built_prompts[position], []
                ).append(position)
            distinct = list(occurrences)
            usage.udf_cache_misses += len(distinct)
            usage.udf_cache_hits += len(chunk) - len(distinct)
            responses = self.lm.complete_batch(distinct, max_tokens)
            for prompt, response in zip(distinct, responses):
                for position in occurrences[prompt]:
                    results[position] = response.text
                if self.memo_cache is not None:
                    self.memo_cache.put(
                        _memo_key(prompt, max_tokens), response.text
                    )
        return results  # type: ignore[return-value]

    def judge(self, conditions: Sequence[str]) -> list[bool]:
        """Boolean judgment per condition (yes/no prompts)."""
        built = [
            prompts.judgment_prompt(condition) for condition in conditions
        ]
        return [
            text.strip().lower().startswith("yes")
            for text in self._run_batched(built, max_tokens=4)
        ]

    def score(self, criterion: str, items: Sequence[str]) -> list[float]:
        """Graded score per item against one criterion."""
        built = [prompts.scoring_prompt(criterion, item) for item in items]
        return [
            _parse_float(text)
            for text in self._run_batched(built, max_tokens=8)
        ]

    def relevance(
        self, query: str, documents: Sequence[str]
    ) -> list[float]:
        """Relevance score per document (reranking)."""
        built = [
            prompts.relevance_prompt(query, document)
            for document in documents
        ]
        return [
            _parse_float(text)
            for text in self._run_batched(built, max_tokens=8)
        ]

    def compare(
        self, criterion: str, pairs: Sequence[tuple[str, str]]
    ) -> list[bool]:
        """Pairwise winner per (left, right): True when left wins."""
        built = [
            prompts.comparison_prompt(criterion, left, right)
            for left, right in pairs
        ]
        return [
            text.strip().upper().startswith("A")
            for text in self._run_batched(built, max_tokens=4)
        ]

    def summarize(self, instruction: str, items: Sequence[str]) -> str:
        """One summarisation call over listed items."""
        response = self.lm.complete(
            prompts.summary_prompt(instruction, items), max_tokens=256
        )
        return response.text

    def summarize_batch(
        self, instruction: str, chunks: Sequence[Sequence[str]]
    ) -> list[str]:
        """Summarise several chunks in one batch (sem_agg's fold step)."""
        built = [
            prompts.summary_prompt(instruction, chunk)
            for chunk in chunks
        ]
        return self._run_batched(built, max_tokens=256)


def _memo_key(prompt: str, max_tokens: int | None) -> tuple:
    """Memo-cache key for one semantic prompt.

    Namespaced like the SQL engine's ``(FUNCTION, args)`` keys so one
    shared :class:`UDFMemoCache` can serve both surfaces without
    collisions.
    """
    return ("SEMANTIC", (prompt, max_tokens))


def _parse_float(text: str) -> float:
    try:
        return float(text.strip())
    except ValueError:
        return 0.0
