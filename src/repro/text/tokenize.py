"""Word and sentence tokenisation."""

from __future__ import annotations

import re
import zlib

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z0-9'_-]*|\d+(?:\.\d+)?")
_SENTENCE_END_RE = re.compile(r"(?<=[.!?])\s+")

#: Common English function words excluded from frequency statistics.
STOPWORDS = frozenset(
    """
    a an and are as at be but by for from has have he her his i if in is
    it its me my no nor not of on or our she so that the their them they
    this to was we were what when which who will with you your
    """.split()
)


def tokens(text: str, lowercase: bool = True) -> list[str]:
    """Word tokens of ``text`` (letters/digits, keeps in-word hyphens)."""
    found = _WORD_RE.findall(text)
    if lowercase:
        return [token.lower() for token in found]
    return found


def content_tokens(text: str) -> list[str]:
    """Lower-cased tokens with stopwords removed."""
    return [token for token in tokens(text) if token not in STOPWORDS]


def score_tiebreak(text: str) -> float:
    """A tiny deterministic per-text epsilon in [0, 1e-4).

    Text scorers add this so that distinct texts never score exactly
    equal — rankings become total orders, and the gold labels and the
    simulated LM break ties identically.
    """
    return (zlib.crc32(text.encode("utf-8")) % 10_000) * 1e-8


def sentences(text: str) -> list[str]:
    """Split text into sentences on terminal punctuation."""
    stripped = text.strip()
    if not stripped:
        return []
    pieces = _SENTENCE_END_RE.split(stripped)
    return [piece.strip() for piece in pieces if piece.strip()]
