"""Deterministic text-analysis primitives.

These algorithms give the simulated LM its "semantic reasoning over
text" capability (paper §1): sentiment scoring, sarcasm scoring,
technicality scoring, extractive summarisation, and lexical similarity.
All are classical lexicon/statistics methods — no model weights — so
every judgment is reproducible.
"""

from repro.text.sentiment import sentiment_score
from repro.text.sarcasm import sarcasm_score
from repro.text.similarity import cosine_similarity, jaccard_similarity, tf_idf_vectors
from repro.text.summarize import summarize
from repro.text.technicality import technicality_score
from repro.text.tokenize import sentences, tokens

__all__ = [
    "cosine_similarity",
    "jaccard_similarity",
    "sarcasm_score",
    "sentences",
    "sentiment_score",
    "summarize",
    "technicality_score",
    "tf_idf_vectors",
    "tokens",
]
