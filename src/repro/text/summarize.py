"""Extractive summarisation.

The TAG answer-generation step for aggregation queries ("Summarize the
comments made on ...") calls :func:`summarize`: a frequency-based
extractive summariser (a classical Luhn-style method).  Sentences are
scored by the centrality of their content tokens and the top sentences
are emitted in original order, which keeps summaries faithful — every
emitted sentence appears verbatim in the source.
"""

from __future__ import annotations

from collections import Counter

from repro.text.tokenize import content_tokens, sentences


def summarize(text: str, max_sentences: int = 4) -> str:
    """Extractive summary of ``text`` with at most ``max_sentences``."""
    all_sentences = sentences(text)
    if len(all_sentences) <= max_sentences:
        return " ".join(all_sentences)
    frequencies: Counter[str] = Counter()
    tokenised = [content_tokens(sentence) for sentence in all_sentences]
    for words in tokenised:
        frequencies.update(words)
    scores: list[tuple[float, int]] = []
    for position, words in enumerate(tokenised):
        if not words:
            scores.append((0.0, position))
            continue
        score = sum(frequencies[word] for word in words) / len(words)
        # Slightly favour earlier sentences as topic statements.
        score *= 1.0 + 0.1 / (1 + position)
        scores.append((score, position))
    top = sorted(scores, reverse=True)[:max_sentences]
    chosen = sorted(position for _, position in top)
    return " ".join(all_sentences[position] for position in chosen)


def summarize_items(items: list[str], max_sentences: int = 6) -> str:
    """Summarise a list of short texts (e.g. comments) jointly."""
    joined = " ".join(
        item if item.rstrip().endswith((".", "!", "?")) else item + "."
        for item in items
        if item and item.strip()
    )
    return summarize(joined, max_sentences=max_sentences)
