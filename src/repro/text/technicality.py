"""Technicality scoring for short texts.

Used for the benchmark's ranking queries that ask to order post titles
from "most technical to least technical" — an LM-reasoning task in the
paper, implemented here as jargon-lexicon density plus surface features
(acronyms, symbols, long rare words).  Returns a score in [0, 1].
"""

from __future__ import annotations

import re

from repro.text.tokenize import score_tiebreak, STOPWORDS, tokens

TECHNICAL_TERMS = frozenset(
    """
    adaboost algorithm anova api architecture asymptotic autoencoder
    backpropagation bayesian benchmark bias binomial boosting bootstrap
    cache classifier clustering coefficient compiler complexity
    convolution convolutional correlation covariance cross-validation
    dataframe dataset decision-tree derivative descent deterministic
    distribution eigenvalue embedding ensemble entropy epoch estimator
    feature gaussian gpu gradient heteroscedasticity hyperparameter
    hypothesis index inference integral kernel kurtosis lasso latency
    likelihood linear logistic loss markov matrix maximum-likelihood
    metric minimization model multicollinearity neural nonlinear
    normalization optimization overfitting parameter perceptron
    polynomial posterior precision prior probability quantile random
    recall regression regularization residual ridge sampling scalar
    schema sgd sigmoid softmax sparse spline stochastic svm tensor
    theorem throughput training transformer tuning validation variance
    vector
    """.split()
)

_ACRONYM_RE = re.compile(r"\b[A-Z]{2,6}\b")
_SYMBOL_RE = re.compile(r"[=+^\\{}()\[\]<>|]|\d+%")


def technicality_score(text: str) -> float:
    """How technical ``text`` reads, in [0, 1]."""
    words = tokens(text)
    if not words:
        return 0.0
    content = [word for word in words if word not in STOPWORDS]
    if not content:
        return 0.0
    jargon_hits = sum(1 for word in content if word in TECHNICAL_TERMS)
    jargon_density = jargon_hits / len(content)
    acronyms = len(_ACRONYM_RE.findall(text))
    symbols = len(_SYMBOL_RE.findall(text))
    long_words = sum(1 for word in content if len(word) >= 10)
    score = (
        0.65 * min(jargon_density * 2.0, 1.0)
        + 0.15 * min(acronyms / 2.0, 1.0)
        + 0.10 * min(symbols / 2.0, 1.0)
        + 0.10 * min(long_words / max(len(content), 1) * 3.0, 1.0)
    )
    return min(score, 1.0) + score_tiebreak(text)
