"""Lexical similarity: Jaccard over token sets and TF-IDF cosine."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.text.tokenize import content_tokens


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard overlap of content-token sets, in [0, 1]."""
    left_set = set(content_tokens(left))
    right_set = set(content_tokens(right))
    if not left_set and not right_set:
        return 0.0
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def tf_idf_vectors(documents: Sequence[str]) -> list[dict[str, float]]:
    """TF-IDF weight vectors (sparse dicts) for a document collection."""
    tokenised = [content_tokens(document) for document in documents]
    document_count = len(tokenised)
    document_frequency: Counter[str] = Counter()
    for words in tokenised:
        document_frequency.update(set(words))
    vectors: list[dict[str, float]] = []
    for words in tokenised:
        counts = Counter(words)
        total = sum(counts.values()) or 1
        vector = {
            word: (count / total)
            * math.log((1 + document_count) / (1 + document_frequency[word]))
            for word, count in counts.items()
        }
        vectors.append(vector)
    return vectors


def cosine_similarity(
    left: dict[str, float], right: dict[str, float]
) -> float:
    """Cosine between two sparse weight vectors."""
    if not left or not right:
        return 0.0
    smaller, larger = (left, right) if len(left) <= len(right) else (right, left)
    dot = sum(
        weight * larger.get(word, 0.0) for word, weight in smaller.items()
    )
    left_norm = math.sqrt(sum(weight * weight for weight in left.values()))
    right_norm = math.sqrt(sum(weight * weight for weight in right.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)
