"""Heuristic sarcasm scoring.

Sarcasm detection in the benchmark ("top 3 most sarcastic comments", a
*reasoning* ranking query) is served by a feature-based scorer: sarcasm
markers, praise-of-failure patterns (positive words colliding with
negative context), rhetorical exaggeration, and scare quotes.  The score
is in [0, 1].
"""

from __future__ import annotations

import re

from repro.text.sentiment import NEGATIVE_WORDS, POSITIVE_WORDS
from repro.text.tokenize import score_tiebreak, tokens

#: Phrases that strongly signal a sarcastic register.
SARCASM_MARKERS = (
    "oh great",
    "oh sure",
    "oh wow",
    "yeah right",
    "thanks a lot",
    "good luck with that",
    "as if",
    "what could possibly go wrong",
    "i'm sure",
    "im sure",
    "of course it",
    "just what i needed",
    "because that always works",
    "clearly the best",
    "shocker",
    "big surprise",
    "how original",
    "genius idea",
    "brilliant plan",
    "slow clap",
)

_EXAGGERATION_WORDS = frozenset(
    "totally obviously clearly absolutely definitely surely literally "
    "always never everyone nobody".split()
)

_SCARE_QUOTE_RE = re.compile(r"[\"']([A-Za-z][A-Za-z ]{0,24})[\"']")


def sarcasm_score(text: str) -> float:
    """Sarcasm likelihood of ``text`` in [0, 1]."""
    lowered = text.lower()
    words = tokens(text)
    if not words:
        return 0.0
    score = 0.0
    for marker in SARCASM_MARKERS:
        if marker in lowered:
            score += 0.45
    # Positive words in a negative context read as mock praise.
    positives = sum(1 for word in words if word in POSITIVE_WORDS)
    negatives = sum(1 for word in words if word in NEGATIVE_WORDS)
    if positives and negatives:
        score += 0.25
    exaggerations = sum(
        1 for word in words if word in _EXAGGERATION_WORDS
    )
    score += min(exaggerations * 0.12, 0.3)
    if _SCARE_QUOTE_RE.search(text):
        score += 0.1
    if "!" in text and positives and not negatives:
        # Over-enthusiastic punctuation around praise is weak evidence.
        score += 0.05
    if "..." in text:
        score += 0.05
    return min(score, 1.0) + score_tiebreak(text)
