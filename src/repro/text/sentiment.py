"""Lexicon-based sentiment scoring with negation and intensifiers.

``sentiment_score`` returns a value in [-1, 1].  The lexicon covers the
vocabulary the synthetic review/comment generators draw from plus a broad
set of common evaluative English, so scores behave sensibly on free text.
"""

from __future__ import annotations

from repro.text.tokenize import score_tiebreak, tokens

POSITIVE_WORDS = frozenset(
    """
    amazing awesome beautiful best breathtaking brilliant captivating
    charming classic compelling delightful elegant enjoyable excellent
    exceptional fantastic fascinating flawless fun glorious good great
    gripping happy heartwarming helpful impressive incredible inspiring
    love loved lovely magnificent masterful masterpiece memorable moving
    outstanding perfect phenomenal pleasant powerful recommend refreshing
    remarkable rich satisfying solid spectacular splendid strong stunning
    superb sweet terrific thrilling timeless touching unforgettable
    wonderful worthwhile
    """.split()
)

NEGATIVE_WORDS = frozenset(
    """
    annoying awful bad bland boring broken clumsy confusing disappointing
    disappointment dreadful dull failure flawed forgettable frustrating
    hate hated horrible inconsistent lackluster lazy mediocre mess messy
    miserable painful pathetic pointless poor predictable regret
    regrettable ridiculous sloppy slow terrible tedious tiresome
    underwhelming uneven unpleasant unwatchable waste weak worst
    """.split()
)

NEGATIONS = frozenset(
    "not no never neither nor hardly barely scarcely isnt wasnt dont "
    "didnt doesnt cant cannot couldnt wont wouldnt".split()
)

INTENSIFIERS = {
    "very": 1.5,
    "extremely": 2.0,
    "incredibly": 2.0,
    "really": 1.3,
    "truly": 1.3,
    "absolutely": 1.8,
    "utterly": 1.8,
    "so": 1.2,
    "quite": 1.1,
    "somewhat": 0.6,
    "slightly": 0.5,
    "a-bit": 0.5,
}

_NEGATION_WINDOW = 3


def sentiment_score(text: str) -> float:
    """Polarity of ``text`` in [-1, 1]; 0 means neutral/unknown."""
    words = [word.replace("'", "") for word in tokens(text)]
    if not words:
        return 0.0
    total = 0.0
    hits = 0
    for position, word in enumerate(words):
        polarity = 0.0
        if word in POSITIVE_WORDS:
            polarity = 1.0
        elif word in NEGATIVE_WORDS:
            polarity = -1.0
        else:
            continue
        weight = 1.0
        window = words[max(0, position - _NEGATION_WINDOW) : position]
        for preceding in window:
            if preceding in NEGATIONS:
                polarity = -polarity
            multiplier = INTENSIFIERS.get(preceding)
            if multiplier is not None:
                weight *= multiplier
        total += polarity * weight
        hits += 1
    if hits == 0:
        return score_tiebreak(text)
    # Normalise by hit count with diminishing returns on volume.
    score = total / (hits + 1.0)
    return max(-1.0, min(1.0, score)) + score_tiebreak(text)


def is_positive(text: str, threshold: float = 0.05) -> bool:
    """Binary classification used by LM filter judgments over reviews."""
    return sentiment_score(text) > threshold
