"""Call/token/latency accounting for the simulated LM."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Usage:
    """Cumulative usage counters; snapshot-and-subtract friendly.

    ``cache_hits``/``cache_misses`` are metered by the serving layer's
    prompt cache (:class:`repro.serve.BatchingLM`): a hit returns a
    stored response without touching the model, so it increments no
    call/token/latency counter — cached work is never double-metered.
    """

    calls: int = 0
    batches: int = 0
    prompt_tokens: int = 0
    output_tokens: int = 0
    simulated_seconds: float = 0.0
    context_errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> "Usage":
        return Usage(
            self.calls,
            self.batches,
            self.prompt_tokens,
            self.output_tokens,
            self.simulated_seconds,
            self.context_errors,
            self.cache_hits,
            self.cache_misses,
        )

    def since(self, earlier: "Usage") -> "Usage":
        """Usage accumulated since an earlier snapshot."""
        return Usage(
            self.calls - earlier.calls,
            self.batches - earlier.batches,
            self.prompt_tokens - earlier.prompt_tokens,
            self.output_tokens - earlier.output_tokens,
            self.simulated_seconds - earlier.simulated_seconds,
            self.context_errors - earlier.context_errors,
            self.cache_hits - earlier.cache_hits,
            self.cache_misses - earlier.cache_misses,
        )
