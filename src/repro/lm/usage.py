"""Call/token/latency accounting for the simulated LM."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Usage:
    """Cumulative usage counters; snapshot-and-subtract friendly.

    ``cache_hits``/``cache_misses`` are metered by the serving layer's
    prompt cache (:class:`repro.serve.BatchingLM`): a hit returns a
    stored response without touching the model, so it increments no
    call/token/latency counter — cached work is never double-metered.

    ``udf_cache_hits``/``udf_cache_misses`` are metered by the SQL
    engine's batched UDF operators (and the semantic engine's prompt
    dedup) when a :class:`~repro.db.Database` is bound to this Usage
    via ``bind_udf_meters``: a hit is a row-occurrence of an expensive
    UDF served from the memo cache or intra-batch dedup without a new
    invocation, a miss is a dispatched invocation.  Like the prompt
    cache, hits touch no model counter, so
    ``calls == udf_cache_misses`` on a pure batched-UDF workload.

    Retry metering contract.  Each *logical* request meters its cache
    hit/miss exactly once, at first submission: when a delivery errors
    and the resilience layer re-submits the same prompt, the retry is a
    continuation of already-metered work, so the batching layer skips
    hit/miss metering for it (the retry itself is counted in
    ``retries``).  Model-side counters (``calls``, token counts,
    ``simulated_seconds``) always reflect work the model actually
    performed — a retried call that re-runs the model is billed again,
    but work reused from a partially failed batch is not re-billed.

    ``cascade_cheap_hits``/``cascade_escalations`` are metered by the
    same operators when the optimizer's cascade route is active: a
    cheap hit is a distinct tuple answered by the cheap classifier
    tier, an escalation is one the cheap tier declined (so it was
    dispatched to the expensive form and counted as a
    ``udf_cache_misses`` there).  ``optimizer_decisions`` counts
    recorded plan decisions (route, batch size, reorders, pushdowns),
    metered once per planned statement.

    The :mod:`repro.obs` metrics registry scrapes are derived from
    these same events; Usage stays the canonical meter.

    The resilience counters are metered by the fault-injection and
    middleware layers: ``faults_injected`` by
    :class:`repro.lm.faults.FaultyLM` (one per injected fault, latency
    spikes included), and ``retries``/``breaker_trips``/
    ``deadline_exceeded`` by :class:`repro.serve.resilience.ResilientLM`
    (one per backoff sleep, breaker closed→open transition, and
    deadline kill respectively).  All stay zero on a healthy path, so a
    fault-free run's accounting is bit-identical with or without the
    resilience stack.

    The semantic-cache counters are metered by the serving control
    plane (:class:`repro.serve.semantic.SemanticResultCache`):
    ``semcache_hits`` counts requests served a stored ``TAGResult`` on
    an exact canonical-form match (in-run duplicate coalescing
    included), ``semcache_near_hits`` those served on an
    above-threshold embedding match, ``semcache_misses`` lookups that
    found nothing (the disabled-cache path meters exactly one miss per
    lookup, in one place — see the cache's metering seam), and
    ``semcache_invalidations`` entries evicted by an explicit
    data/catalog-change invalidation.  A semantic hit dispatches no
    pipeline, so it touches no call/token/latency counter — like the
    prompt cache, cached work is never double-metered.  All stay zero
    without a semantic cache, so an uncached run's accounting is
    bit-identical with or without the control plane.

    The repair counters are metered by the self-correcting pipeline
    (:class:`repro.core.repair.SelfCorrectingPipeline`):
    ``repair_attempts`` counts repair prompts issued (one per retry of
    a failed SQL candidate), ``repair_successes`` counts requests whose
    repaired SQL executed cleanly, and ``repair_exhausted`` counts
    requests that burned the whole ``max_repairs`` budget and degraded.
    ``rows_truncated`` is metered by the engine when a ``max_rows``
    result cap drops rows (one per dropped row), via the same
    ``bind_udf_meters`` binding as the UDF-cache counters.  All stay
    zero with ``max_repairs=0`` and no row cap, so an unrepaired run's
    accounting is bit-identical with or without the repair loop.
    """

    calls: int = 0
    batches: int = 0
    prompt_tokens: int = 0
    output_tokens: int = 0
    simulated_seconds: float = 0.0
    context_errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    udf_cache_hits: int = 0
    udf_cache_misses: int = 0
    cascade_cheap_hits: int = 0
    cascade_escalations: int = 0
    optimizer_decisions: int = 0
    faults_injected: int = 0
    retries: int = 0
    breaker_trips: int = 0
    deadline_exceeded: int = 0
    repair_attempts: int = 0
    repair_successes: int = 0
    repair_exhausted: int = 0
    rows_truncated: int = 0
    semcache_hits: int = 0
    semcache_misses: int = 0
    semcache_near_hits: int = 0
    semcache_invalidations: int = 0

    def snapshot(self) -> "Usage":
        return Usage(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def since(self, earlier: "Usage") -> "Usage":
        """Usage accumulated since an earlier snapshot."""
        return Usage(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )
