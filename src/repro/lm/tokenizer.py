"""Token counting for the simulated LM.

Uses the standard byte-pair-encoding approximation: a token is roughly
four characters of English text, floored by the word count (every word
is at least one token).  Good enough for context-window accounting and
the latency model — exactly the two things the evaluation needs.
"""

from __future__ import annotations

import math

_CHARS_PER_TOKEN = 4.0


def count_tokens(text: str) -> int:
    """Approximate token count of ``text``."""
    if not text:
        return 0
    by_chars = math.ceil(len(text) / _CHARS_PER_TOKEN)
    by_words = len(text.split())
    return max(by_chars, by_words, 1)
