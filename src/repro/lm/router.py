"""Prompt routing: dispatch a prompt to the handler that recognises it."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.errors import PromptRoutingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.knowledge import FuzzyKnowledge, KnowledgeBase


@dataclass
class HandlerContext:
    """Everything a handler may consult while "thinking"."""

    fuzzy: "FuzzyKnowledge"
    kb: "KnowledgeBase"
    seed: int
    #: Number of in-context rows the model can process reliably; beyond
    #: this, exact computation over the context degrades (paper §1:
    #: "LMs ... perform poorly on long-context prompts").
    reliable_rows: int


class Handler(Protocol):
    def matches(self, prompt: str) -> bool: ...  # noqa: E704

    def handle(self, prompt: str, context: HandlerContext) -> str: ...  # noqa: E704


class Router:
    """Ordered handler registry; first match wins."""

    def __init__(self, handlers: list[Handler] | None = None) -> None:
        self._handlers: list[Handler] = list(handlers or [])

    def register(self, handler: Handler) -> None:
        self._handlers.append(handler)

    def route(self, prompt: str, context: HandlerContext) -> str:
        for handler in self._handlers:
            if handler.matches(prompt):
                return handler.handle(prompt, context)
        raise PromptRoutingError(
            "no handler recognised the prompt "
            f"(first 80 chars: {prompt[:80]!r})"
        )
