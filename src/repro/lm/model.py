"""The SimulatedLM: a deterministic stand-in for an instruction-tuned LM.

Exposes the two entry points real LM serving stacks expose:

- :meth:`SimulatedLM.complete` — one request;
- :meth:`SimulatedLM.complete_batch` — a batch sharing scheduling
  overhead and decode bandwidth (the vLLM-style batched inference the
  paper credits for hand-written TAG's low execution time).

Operational behaviour mirrors a real deployment: prompts beyond the
context window raise :class:`~repro.errors.ContextLengthError`; all
calls and tokens are metered in :class:`~repro.lm.usage.Usage`; latency
is accumulated from the :class:`~repro.lm.latency.LatencyModel` rather
than wall-clock, so ET measurements are machine-independent and exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ContextLengthError
from repro.knowledge import FuzzyKnowledge, KnowledgeBase
from repro.lm.latency import LatencyModel
from repro.lm.router import HandlerContext, Router
from repro.lm.tokenizer import count_tokens
from repro.lm.usage import Usage
from repro.obs import trace


@dataclass(frozen=True)
class LMConfig:
    """Simulated model configuration.

    ``context_window`` defaults to 8192 tokens: serialising hundreds of
    retrieved rows overflows it, reproducing the context-length failures
    the paper observes on the Text2SQL+LM baseline.
    """

    context_window: int = 8192
    max_output_tokens: int = 512
    seed: int = 0
    #: Scales knowledge-error probability; 0 disables knowledge errors
    #: (an "oracle LM" useful in tests), 1.25 is the calibrated default
    #: (see EXPERIMENTS.md, calibration section).
    skepticism: float = 1.25
    #: How many in-context rows the model handles reliably for exact
    #: computation before long-context degradation sets in.
    reliable_rows: int = 12
    latency: LatencyModel = field(default_factory=LatencyModel)


@dataclass(frozen=True)
class LMResponse:
    text: str
    prompt_tokens: int
    output_tokens: int
    #: Simulated latency attributed to this response, in seconds.
    latency_s: float


class SimulatedLM:
    """Deterministic prompt-routed language model."""

    def __init__(
        self,
        config: LMConfig | None = None,
        kb: KnowledgeBase | None = None,
        router: Router | None = None,
    ) -> None:
        self.config = config or LMConfig()
        self.kb = kb or KnowledgeBase.default()
        self.fuzzy = FuzzyKnowledge(
            self.kb,
            seed=self.config.seed,
            skepticism=self.config.skepticism,
        )
        if router is None:
            from repro.lm.handlers import default_handlers

            router = Router(default_handlers())
        self._router = router
        self.usage = Usage()

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def complete(
        self, prompt: str, max_tokens: int | None = None
    ) -> LMResponse:
        """One unbatched request."""
        text, prompt_tokens, output_tokens = self._generate(
            prompt, max_tokens
        )
        latency = self.config.latency.call_seconds(
            prompt_tokens, output_tokens
        )
        self._account(1, 1, prompt_tokens, output_tokens, latency)
        if trace.active():
            trace.leaf(
                "lm.complete",
                latency,
                prompt_tokens=prompt_tokens,
                output_tokens=output_tokens,
            )
        return LMResponse(text, prompt_tokens, output_tokens, latency)

    def complete_batch(
        self, prompts: list[str], max_tokens: int | None = None
    ) -> list[LMResponse]:
        """A batch of requests sharing overhead and decode bandwidth."""
        if not prompts:
            return []
        generated = [
            self._generate(prompt, max_tokens) for prompt in prompts
        ]
        shape = [
            (prompt_tokens, output_tokens)
            for _, prompt_tokens, output_tokens in generated
        ]
        batch_latency = self.config.latency.batch_seconds(shape)
        per_request = batch_latency / len(prompts)
        total_prompt = sum(tokens for tokens, _ in shape)
        total_output = sum(tokens for _, tokens in shape)
        self._account(
            len(prompts), 1, total_prompt, total_output, batch_latency
        )
        if trace.active():
            trace.leaf(
                "lm.batch",
                batch_latency,
                size=len(prompts),
                prompt_tokens=total_prompt,
                output_tokens=total_output,
            )
        return [
            LMResponse(text, prompt_tokens, output_tokens, per_request)
            for (text, prompt_tokens, output_tokens) in generated
        ]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _generate(
        self, prompt: str, max_tokens: int | None
    ) -> tuple[str, int, int]:
        prompt_tokens = count_tokens(prompt)
        if prompt_tokens > self.config.context_window:
            self.usage.context_errors += 1
            raise ContextLengthError(
                prompt_tokens, self.config.context_window
            )
        context = HandlerContext(
            fuzzy=self.fuzzy,
            kb=self.kb,
            seed=self.config.seed,
            reliable_rows=self.config.reliable_rows,
        )
        text = self._router.route(prompt, context)
        budget = (
            self.config.max_output_tokens
            if max_tokens is None
            else min(max_tokens, self.config.max_output_tokens)
        )
        output_tokens = count_tokens(text)
        if output_tokens > budget:
            text = self._truncate_to_tokens(text, budget)
            output_tokens = count_tokens(text)
        return text, prompt_tokens, output_tokens

    @staticmethod
    def _truncate_to_tokens(text: str, budget: int) -> str:
        """Longest prefix of ``text`` with ``count_tokens(prefix) <= budget``.

        The 4-chars-per-token inverse alone is not enough: the tokenizer
        floors the count by the word count, so a whitespace-dense slice
        of ``budget * 4`` characters can still exceed the budget.
        ``count_tokens`` is monotone in prefix length, so binary-search
        the cut point and recount.
        """
        if budget <= 0:
            return ""
        low, high = 0, min(len(text), budget * 4)
        while low < high:
            mid = (low + high + 1) // 2
            if count_tokens(text[:mid]) <= budget:
                low = mid
            else:
                high = mid - 1
        return text[:low]

    def _account(
        self,
        calls: int,
        batches: int,
        prompt_tokens: int,
        output_tokens: int,
        latency: float,
    ) -> None:
        self.usage.calls += calls
        self.usage.batches += batches
        self.usage.prompt_tokens += prompt_tokens
        self.usage.output_tokens += output_tokens
        self.usage.simulated_seconds += latency

    def reset_usage(self) -> None:
        self.usage = Usage()
