"""The simulated language model.

This package substitutes for Llama-3.1-70B-Instruct served by vLLM in
the paper's evaluation.  It is *not* a neural network: it is a prompt-
routed engine whose capabilities are implemented explicitly —

- **world knowledge** via :class:`repro.knowledge.FuzzyKnowledge`
  (seeded, calibrated imperfection on marginal facts),
- **semantic reasoning over text** via :mod:`repro.text`
  (sentiment, sarcasm, technicality, summarisation),
- **SQL generation** via a rule-based semantic parser in the BIRD
  prompt format (:mod:`repro.lm.handlers.text2sql`),
- **in-context answering over serialized rows**
  (:mod:`repro.lm.handlers.answer`), including the long-context
  arithmetic unreliability the paper attributes to LMs,

plus the operational behaviours the evaluation depends on: a context
window (overflow raises :class:`repro.errors.ContextLengthError`), token
accounting, batched inference, and a deterministic latency model that
reproduces the paper's execution-time relationships.
"""

from repro.lm.faults import FaultPlan, FaultyLM
from repro.lm.latency import LatencyModel
from repro.lm.model import LMConfig, LMResponse, SimulatedLM
from repro.lm.tokenizer import count_tokens
from repro.lm.udf import register_llm_judge
from repro.lm.usage import Usage

__all__ = [
    "FaultPlan",
    "FaultyLM",
    "LMConfig",
    "LMResponse",
    "LatencyModel",
    "SimulatedLM",
    "Usage",
    "count_tokens",
    "register_llm_judge",
]
