"""The LM's understanding of schema vocabulary.

A real instruction-tuned LM knows that "grade span" means the
``GSoffered`` column and that "popularity" of a post is its
``ViewCount`` — knowledge absorbed from pre-training and the BIRD prompt
conventions.  This module is that knowledge made explicit: an ordered
phrase bank mapping natural-language phrases to (table, column) pairs,
consulted by both the Text2SQL semantic parser and the in-context
answer handler.

Longer (more specific) phrases are matched first.  A phrase only
resolves when its table exists in the schema at hand, so the same bank
serves every benchmark domain.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: (phrase, table, column).  Table may be None (resolve against any
#: table containing the column).  Order within the list breaks ties;
#: match order is by descending phrase length then list order.
PHRASE_HINTS: list[tuple[str, str | None, str]] = [
    # california_schools
    ("grade span offered", "schools", "GSoffered"),
    ("grade span", "schools", "GSoffered"),
    ("average score in math", "satscores", "AvgScrMath"),
    ("average math score", "satscores", "AvgScrMath"),
    ("math score", "satscores", "AvgScrMath"),
    ("average score in reading", "satscores", "AvgScrRead"),
    ("reading score", "satscores", "AvgScrRead"),
    ("average score in writing", "satscores", "AvgScrWrite"),
    ("writing score", "satscores", "AvgScrWrite"),
    ("test takers", "satscores", "NumTstTakr"),
    ("free meal count", "frpm", "FreeMealCount"),
    ("free meals", "frpm", "FreeMealCount"),
    ("enrollment", "frpm", "Enrollment"),
    ("longitude", "schools", "Longitude"),
    ("latitude", "schools", "Latitude"),
    ("charter", "schools", "Charter"),
    ("county", "schools", "County"),
    ("district", "schools", "District"),
    ("cities", "schools", "City"),
    ("city", "schools", "City"),
    ("school", "schools", "School"),
    # codebase_community
    ("view count", "posts", "ViewCount"),
    ("views", "posts", "ViewCount"),
    ("popularity", "posts", "ViewCount"),
    ("popular", "posts", "ViewCount"),
    ("titles", "posts", "Title"),
    ("title", "posts", "Title"),
    ("comments", "comments", "Text"),
    ("comment", "comments", "Text"),
    ("reputation", "users", "Reputation"),
    ("display name", "users", "DisplayName"),
    ("answer count", "posts", "AnswerCount"),
    ("posts", "posts", "Title"),
    ("post", "posts", "Title"),
    # formula_1
    ("circuit", "circuits", "name"),
    ("races", "races", "name"),
    ("race", "races", "name"),
    ("season", "races", "year"),
    ("year", "races", "year"),
    ("round", "races", "round"),
    ("points", "results", "points"),
    ("position", "results", "position"),
    ("nationality", "drivers", "nationality"),
    ("surname", "drivers", "surname"),
    ("drivers", "drivers", "surname"),
    ("driver", "drivers", "surname"),
    # european_football_2
    ("overall rating", "Player_Attributes", "overall_rating"),
    ("sprint speed", "Player_Attributes", "sprint_speed"),
    ("volley score", "Player_Attributes", "volleys"),
    ("volleys", "Player_Attributes", "volleys"),
    ("volley", "Player_Attributes", "volleys"),
    ("dribbling", "Player_Attributes", "dribbling"),
    ("finishing", "Player_Attributes", "finishing"),
    ("height", "Player", "height"),
    ("weight", "Player", "weight"),
    ("players", "Player", "player_name"),
    ("player", "Player", "player_name"),
    ("league", "League", "name"),
    ("teams", "Team", "team_long_name"),
    ("team", "Team", "team_long_name"),
    # debit_card_specializing
    ("consumption", "yearmonth", "Consumption"),
    ("gas stations", "gasstations", "Country"),
    ("gas station", "gasstations", "Country"),
    ("transactions", "transactions_1k", "Amount"),
    ("transaction", "transactions_1k", "Amount"),
    ("amount", "transactions_1k", "Amount"),
    ("price", "transactions_1k", "Price"),
    ("currency", "customers", "Currency"),
    ("segment", "customers", "Segment"),
    ("country", "gasstations", "Country"),
    ("customers", "customers", "CustomerID"),
    ("customer", "customers", "CustomerID"),
    # movies example
    ("revenue", "movies", "revenue"),
    ("grossing", "movies", "revenue"),
    ("reviews", "movies", "review"),
    ("review", "movies", "review"),
    ("genre", "movies", "genre"),
    ("movies", "movies", "movie_title"),
    ("movie", "movies", "movie_title"),
    ("film", "movies", "movie_title"),
    # generic
    ("scores", None, "Score"),
    ("score", None, "Score"),
]


@dataclass(frozen=True)
class Mention:
    """One recognised phrase -> column binding in a question."""

    phrase: str
    table: str
    column: str
    position: int


def _phrase_pattern(phrase: str) -> re.Pattern[str]:
    return re.compile(
        r"\b" + re.escape(phrase) + r"\b", re.IGNORECASE
    )


def find_mentions(
    question: str, tables: dict[str, list[str]]
) -> list[Mention]:
    """All phrase mentions resolvable against ``tables``, sorted by
    position; overlapping shorter matches are suppressed."""
    lowered_tables = {
        table.lower(): (table, columns)
        for table, columns in tables.items()
    }
    claimed: list[tuple[int, int]] = []
    mentions: list[Mention] = []
    ordered_hints = sorted(
        PHRASE_HINTS, key=lambda hint: -len(hint[0])
    )
    for phrase, hint_table, column in ordered_hints:
        resolved = _resolve(hint_table, column, lowered_tables)
        if resolved is None:
            continue
        table_name, column_name = resolved
        for match in _phrase_pattern(phrase).finditer(question):
            span = (match.start(), match.end())
            if any(
                span[0] < end and start < span[1]
                for start, end in claimed
            ):
                continue
            claimed.append(span)
            mentions.append(
                Mention(phrase, table_name, column_name, match.start())
            )
    mentions.sort(key=lambda mention: mention.position)
    return mentions


def _resolve(
    hint_table: str | None,
    column: str,
    lowered_tables: dict[str, tuple[str, list[str]]],
) -> tuple[str, str] | None:
    if hint_table is not None:
        entry = lowered_tables.get(hint_table.lower())
        if entry is None:
            return None
        table_name, columns = entry
        for actual in columns:
            if actual.lower() == column.lower():
                return table_name, actual
        return None
    for table_name, columns in lowered_tables.values():
        for actual in columns:
            if actual.lower() == column.lower():
                return table_name, actual
    return None


def match_record_key(phrase: str, keys: list[str]) -> str | None:
    """Best record key for a phrase (used over serialized data points).

    Tries the hint bank first (ignoring tables), then containment of
    normalised names.
    """
    normalized = _normalize(phrase)
    for hint_phrase, _table, column in sorted(
        PHRASE_HINTS, key=lambda hint: -len(hint[0])
    ):
        if _normalize(hint_phrase) in normalized or normalized in (
            _normalize(hint_phrase)
        ):
            for key in keys:
                if key.lower() == column.lower():
                    return key
    for key in keys:
        key_normalized = _normalize(key)
        if key_normalized and (
            key_normalized in normalized or normalized in key_normalized
        ):
            return key
    return None


def _normalize(text: str) -> str:
    return re.sub(r"[^a-z0-9]", "", text.lower())
