"""Canonical prompt templates.

Pipelines talk to the simulated LM through these builders, and the
prompt router recognises prompts by their headers.  The answer-generation
and query-synthesis formats reproduce the paper's Appendix B verbatim
(BIRD schema encoding for Text2SQL; "Data Point N" serialization for
generation); the judgment/scoring/comparison formats are the operator
prompts a LOTUS-style runtime issues.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

JUDGMENT_HEADER = (
    "Decide whether the statement is true. "
    "Answer exactly 'yes' or 'no'."
)
SCORING_HEADER = (
    "Rate how well the item matches the criterion. "
    "Respond with a single number between 0.0 and 1.0."
)
RELEVANCE_HEADER = (
    "Rate the relevance of the document to the query. "
    "Respond with a single number between 0.0 and 1.0."
)
COMPARISON_HEADER = (
    "Given two items, decide which one better matches the criterion. "
    "Answer exactly 'A' or 'B'."
)
SUMMARY_HEADER = (
    "Summarize the following items to answer the instruction. "
    "Be faithful to the items."
)
ANSWER_LIST_HEADER = (
    "You will be given a list of data points and a question. Use the "
    "data points to answer the question. Your answer must be a list of "
    "values that is evaluatable in Python. Respond in the format "
    "[value1, value2, ..., valueN]. If you are unable to answer the "
    "question, respond with []. Respond with only the list of values "
    "and nothing else. If a value is a string, it must be enclosed in "
    "double quotes."
)
ANSWER_FREEFORM_HEADER = (
    "You will be given a list of data points and a question. Use the "
    "data points to answer the question. If a value is a string, it "
    "must be enclosed in double quotes."
)
TEXT2SQL_INSTRUCTION = (
    "-- Using valid SQLite and understading External Knowledge, answer "
    "the following questions for the tables provided above."
)
REPAIR_INSTRUCTION = (
    "-- The SQL above failed against the tables provided. Using the "
    "diagnostics, write a corrected SQLite query that answers the "
    "question below."
)


def judgment_prompt(condition: str) -> str:
    """Boolean judgment of a filled-in condition."""
    return f"{JUDGMENT_HEADER}\nStatement: {condition}"


def scoring_prompt(criterion: str, item: str) -> str:
    """Graded 0-1 judgment of an item against a criterion."""
    return f"{SCORING_HEADER}\nCriterion: {criterion}\nItem: {item}"


def relevance_prompt(query: str, document: str) -> str:
    """Relevance of a document to a query (reranking)."""
    return f"{RELEVANCE_HEADER}\nQuery: {query}\nDocument: {document}"


def comparison_prompt(criterion: str, left: str, right: str) -> str:
    """Pairwise A/B comparison on a criterion."""
    return (
        f"{COMPARISON_HEADER}\nCriterion: {criterion}\n"
        f"A: {left}\nB: {right}"
    )


def summary_prompt(instruction: str, items: Sequence[str]) -> str:
    """Summarise numbered items under an instruction."""
    numbered = "\n".join(
        f"Item {position + 1}: {item}"
        for position, item in enumerate(items)
    )
    return f"{SUMMARY_HEADER}\nInstruction: {instruction}\n{numbered}"


def serialize_data_point(index: int, record: Mapping[str, object]) -> str:
    """One row in the paper's "- col: val" encoding."""
    lines = [f"Data Point {index}:"]
    lines.extend(f"- {key}: {value}" for key, value in record.items())
    return "\n".join(lines)


def answer_prompt(
    question: str,
    records: Sequence[Mapping[str, object]],
    aggregation: bool = False,
) -> str:
    """Answer-generation prompt (paper Appendix B.2)."""
    header = ANSWER_FREEFORM_HEADER if aggregation else ANSWER_LIST_HEADER
    points = "\n\n".join(
        serialize_data_point(index + 1, record)
        for index, record in enumerate(records)
    )
    return f"{header}\n\n{points}\n\nQuestion: {question}"


def text2sql_prompt(
    schema_sql: str,
    question: str,
    external_knowledge: str | None = None,
    examples: Sequence[tuple[str, str]] | None = None,
) -> str:
    """Query-synthesis prompt in the BIRD format (paper Appendix B.1).

    ``examples`` are few-shot ``(question, SQL)`` pairs — accepted
    entries the query registry (:mod:`repro.serve.semantic`)
    retrieval-ranked against this question.  They are flattened to
    ``-- Example Question:`` / ``-- Example SQL:`` comment lines placed
    *before* the External Knowledge line: the prompt stays
    line-oriented, and the router's question parser (which takes the
    last plain ``--`` line) still finds the real question below them.
    """
    knowledge = external_knowledge or "None"
    shots = ""
    if examples:
        shots = (
            "\n".join(
                f"-- Example Question: {q}\n"
                f"-- Example SQL: {' '.join(sql.split())}"
                for q, sql in examples
            )
            + "\n"
        )
    return (
        f"{schema_sql}\n\n"
        f"{shots}"
        f"-- External Knowledge: {knowledge}\n"
        f"{TEXT2SQL_INSTRUCTION}\n"
        f"-- {question}\n"
        f"SELECT"
    )


def repair_prompt(
    schema_sql: str,
    question: str,
    failed_sql: str,
    diagnostics: str,
    external_knowledge: str | None = None,
    attempt: int = 1,
) -> str:
    """SQL-repair prompt: the BIRD schema plus the failed attempt.

    Extends the Text2SQL format with the SQL that failed and the
    analyzer/engine diagnostics describing why, so the model can
    correct rather than regenerate blindly.  The failed SQL and
    diagnostics are flattened to single ``--`` comment lines to keep
    the BIRD line-oriented structure parseable by the prompt router.
    ``attempt`` (1-based) is embedded so consecutive repairs of the
    same failed SQL are distinct prompts — a later attempt is never
    served a stale response by a prompt cache, and fault draws advance
    naturally.
    """
    knowledge = external_knowledge or "None"
    flat_sql = " ".join(failed_sql.split()) or "<empty>"
    flat_diag = " ".join(diagnostics.split()) or "unknown failure"
    return (
        f"{schema_sql}\n\n"
        f"-- External Knowledge: {knowledge}\n"
        f"-- Repair attempt: {attempt}\n"
        f"-- Failed SQL: {flat_sql}\n"
        f"-- Diagnostics: {flat_diag}\n"
        f"{REPAIR_INSTRUCTION}\n"
        f"-- {question}\n"
        f"SELECT"
    )
