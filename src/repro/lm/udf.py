"""Registering a :class:`SimulatedLM` as a SQL UDF, batched form included.

The TAG ``exec`` step pushes semantic reasoning into SQL via an ``LLM``
UDF (paper §2.1, Figure 1).  Benchmarks and the serving layer used to
register the scalar form by hand::

    db.register_udf("LLM", lambda task, value: lm.complete(...).text,
                    expensive=True)

which pays one synchronous ``complete()`` per row.  This module is the
one place that registration idiom lives now: :func:`register_llm_judge`
registers *both* forms — the per-row scalar (kept as the correctness
oracle) and a vectorised batch form that turns a morsel of distinct
argument tuples into a single ``complete_batch()`` — and binds the
database's UDF-cache counters to the model's
:class:`~repro.lm.usage.Usage`, so ``db.execute(sql,
udf_batch_size=N)`` gets the batched/deduplicated/memoized path with
full accounting and no per-call-site wiring.
"""

from __future__ import annotations

from repro.lm.model import SimulatedLM
from repro.lm.prompts import judgment_prompt


def judgment_udf_prompt(task: str, value: object) -> str:
    """The prompt both UDF forms build for ``LLM(task, value)``.

    One shared builder is what makes scalar/batched equivalence exact:
    the batch form must send byte-identical prompts to the ones the
    scalar oracle would send.
    """
    return judgment_prompt(f"'{value}' is {task}")


def register_llm_judge(
    db,
    lm: SimulatedLM,
    name: str = "LLM",
    max_tokens: int | None = 4,
    cheap=None,
) -> None:
    """Register ``name(task, value)`` on ``db`` with scalar + batch forms.

    The UDF answers yes/no judgment prompts ("``'value' is task``"),
    the shape the paper's Figure 1 query uses.  The scalar form calls
    ``lm.complete`` per invocation; the batch form sends one
    ``complete_batch`` for a whole morsel of argument tuples.  Also
    binds ``lm.usage`` as the database's UDF-cache meter, so
    ``udf_cache_hits``/``udf_cache_misses`` accumulate next to the
    model's own call/batch/token counters.

    ``cheap`` optionally supplies the *cheap classifier tier* for the
    optimizer's cascade route: a callable ``(task, value) -> str |
    None`` that either answers exactly what the expensive judge would
    ("yes"/"no") or returns ``None`` to escalate the tuple to the LM.
    Soundness is the caller's contract — a cheap tier that disagrees
    with the LM changes query results.  In practice this is a
    high-precision heuristic (keyword match, lookup table, small
    distilled model) that abstains whenever unsure; exceptions it
    raises are treated as abstentions by the executor.
    """

    def scalar(task, value):
        return lm.complete(
            judgment_udf_prompt(task, value), max_tokens=max_tokens
        ).text

    def batch(argument_tuples):
        responses = lm.complete_batch(
            [
                judgment_udf_prompt(task, value)
                for task, value in argument_tuples
            ],
            max_tokens=max_tokens,
        )
        return [response.text for response in responses]

    cheap_batch = None
    if cheap is not None:

        def cheap_batch(argument_tuples):  # noqa: F811 — gated wrapper
            return [cheap(task, value) for task, value in argument_tuples]

    db.register_udf(
        name,
        scalar,
        expensive=True,
        batch=batch,
        cheap=cheap,
        cheap_batch=cheap_batch,
    )
    db.bind_udf_meters(usage=lm.usage)
