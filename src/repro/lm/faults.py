"""Deterministic fault injection for the simulated LM serving stack.

Production LM serving treats rate limits, timeouts, transient backend
failures, and garbled outputs as routine events; a serving layer that is
only ever exercised on a healthy model is untested where it matters.
:class:`FaultyLM` wraps any LM with the ``complete``/``complete_batch``
surface (:class:`~repro.lm.model.SimulatedLM`,
:class:`~repro.serve.batching.BatchingLM`) and injects faults from a
:class:`FaultPlan` — *deterministically*, so every faulty run is
reproducible bit-for-bit.

Determinism.  Rate-based faults are not drawn from a shared RNG stream
(that would make the schedule depend on call arrival order, i.e. on
thread scheduling and worker count).  Instead the draw for a call is a
pure function of ``(plan.seed, prompt, max_tokens, attempt)``, where
``attempt`` counts how many times this exact request has been evaluated
by this wrapper.  Two consequences:

- the fault schedule is identical across runs *and* across server
  worker counts — batch composition may change, the faults do not;
- a retry of the same request is a fresh draw (attempt advanced), so
  retries can succeed, while re-raising without re-evaluating cannot
  consume luck.

Scripted faults (``plan.script``) are consumed in call-arrival order
instead — precise per-call control for tests (e.g. "fail the next five
calls") under a serialized, deterministic call schedule.

Batch contract.  ``complete_batch`` *peeks*: if any prompt in the batch
would draw an *error* fault, the batch raises that fault without
consuming any attempt or billing anything — "the batch was rejected".
Callers that need per-prompt outcomes (``BatchingLM``'s chunk replay,
``ResilientLM``'s batch fallback) then replay prompts individually
through ``complete``, which is where faults are actually consumed and
metered.  Response-mutating kinds (``malformed_sql``, ``latency_spike``)
never reject a batch: the affected responses are returned mutated.

Accounting.  Every injected fault increments ``usage.faults_injected``;
fault errors carry ``latency_s`` (simulated seconds burned before the
failure) which is billed to ``usage.simulated_seconds`` — a timeout
costs the full timeout, a rate-limit rejection almost nothing, a
malformed output a full call (the compute ran; the payload is garbage).
Latency spikes return a real response with its latency inflated.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass, replace

from repro.errors import (
    LMTimeoutError,
    MalformedOutputError,
    RateLimitError,
    TransientLMError,
)
from repro.lm.model import LMConfig, LMResponse, SimulatedLM
from repro.lm.usage import Usage

#: Injectable fault kinds, in cumulative-draw order.
ERROR_KINDS = ("rate_limit", "timeout", "transient", "malformed")
#: Generation-level fault kinds: the call *succeeds* but the payload is
#: wrong.  ``malformed_sql`` silently garbles the returned SQL text (a
#: plausible-but-broken generation — the dominant text-to-SQL failure
#: mode), so the failure only surfaces later, at parse/analysis/exec
#: time; ``latency_spike`` inflates the response's latency.
RESPONSE_KINDS = ("malformed_sql", "latency_spike")
FAULT_KINDS = ERROR_KINDS + RESPONSE_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and at what simulated cost.

    Rates are per-evaluation probabilities drawn independently per
    ``(prompt, attempt)``; their sum must not exceed 1.  ``script``
    overrides rates for the first ``len(script)`` evaluations (in call
    order): each entry is a kind from :data:`FAULT_KINDS` or ``None``
    for a healthy call.
    """

    seed: int = 0
    rate_limit_rate: float = 0.0
    timeout_rate: float = 0.0
    transient_rate: float = 0.0
    malformed_rate: float = 0.0
    #: Probability the call returns *garbled SQL text* instead of
    #: erroring — the generation-level fault the repair loop exists
    #: for.  Shares the error draw with the four error kinds (their
    #: rates plus this one must sum to <= 1).
    malformed_sql_rate: float = 0.0
    latency_spike_rate: float = 0.0
    script: tuple[str | None, ...] = ()
    #: Simulated seconds a timed-out call burns before failing.
    timeout_s: float = 30.0
    #: Simulated seconds an admission-rejected call burns.
    rate_limit_latency_s: float = 0.05
    #: Simulated seconds a transient backend failure burns.
    transient_latency_s: float = 0.2
    #: Multiplier applied to a spiked response's latency.
    latency_spike_factor: float = 10.0

    def __post_init__(self) -> None:
        rates = {
            "rate_limit_rate": self.rate_limit_rate,
            "timeout_rate": self.timeout_rate,
            "transient_rate": self.transient_rate,
            "malformed_rate": self.malformed_rate,
            "malformed_sql_rate": self.malformed_sql_rate,
            "latency_spike_rate": self.latency_spike_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        error_mass = sum(
            rate for name, rate in rates.items()
            if name != "latency_spike_rate"
        )
        if error_mass > 1.0:
            raise ValueError(
                f"error rates sum to {error_mass}, must be <= 1"
            )
        for entry in self.script:
            if entry is not None and entry not in FAULT_KINDS:
                raise ValueError(
                    f"unknown scripted fault {entry!r}; "
                    f"expected one of {FAULT_KINDS} or None"
                )
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.latency_spike_factor < 1.0:
            raise ValueError(
                "latency_spike_factor must be >= 1, got "
                f"{self.latency_spike_factor}"
            )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """A plan injecting ``rate`` total errors, split evenly across
        the four error kinds — the single-knob sweep axis of E14."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(
            seed=seed,
            rate_limit_rate=rate / 4,
            timeout_rate=rate / 4,
            transient_rate=rate / 4,
            malformed_rate=rate / 4,
            **overrides,
        )

    @property
    def is_healthy(self) -> bool:
        """True when the plan can never inject anything."""
        return not self.script and (
            self.rate_limit_rate
            == self.timeout_rate
            == self.transient_rate
            == self.malformed_rate
            == self.malformed_sql_rate
            == self.latency_spike_rate
            == 0.0
        )

    def draw(
        self, prompt: str, max_tokens: int | None, attempt: int
    ) -> str | None:
        """The rate-based fault for one evaluation; pure and seeded.

        Hash-derived (not ``random.Random``) so the result is a pure
        function of the arguments — independent of call order, worker
        count, and ``PYTHONHASHSEED``.
        """
        digest = hashlib.sha256(
            f"{self.seed}|{attempt}|{max_tokens}|{prompt}".encode()
        ).digest()
        error_draw = int.from_bytes(digest[:8], "big") / 2**64
        spike_draw = int.from_bytes(digest[8:16], "big") / 2**64
        cumulative = 0.0
        for kind, rate in zip(
            ERROR_KINDS + ("malformed_sql",),
            (
                self.rate_limit_rate,
                self.timeout_rate,
                self.transient_rate,
                self.malformed_rate,
                self.malformed_sql_rate,
            ),
        ):
            cumulative += rate
            if error_draw < cumulative:
                return kind
        if spike_draw < self.latency_spike_rate:
            return "latency_spike"
        return None


class FaultyLM:
    """Inject a :class:`FaultPlan` into any ``complete``-shaped LM."""

    def __init__(self, inner: SimulatedLM, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self._lock = threading.Lock()
        #: (prompt, max_tokens) -> evaluations consumed so far.
        self._attempts: dict[tuple[str, int | None], int] = {}
        #: Next plan.script slot to consume.
        self._cursor = 0

    # ------------------------------------------------------------------
    # SimulatedLM-compatible surface
    # ------------------------------------------------------------------

    @property
    def usage(self) -> Usage:
        return self._inner.usage

    @property
    def config(self) -> LMConfig:
        return self._inner.config

    def reset_usage(self) -> None:
        self._inner.reset_usage()

    def complete(
        self, prompt: str, max_tokens: int | None = None
    ) -> LMResponse:
        if self.plan.is_healthy:
            return self._inner.complete(prompt, max_tokens)
        kind = self._consume(prompt, max_tokens)
        if kind in ("rate_limit", "timeout", "transient"):
            raise self._cheap_fault(kind)
        response = self._inner.complete(prompt, max_tokens)
        if kind == "malformed":
            with self._lock:
                self.usage.faults_injected += 1
            raise MalformedOutputError(
                _garble(response.text), latency_s=response.latency_s
            )
        if kind == "malformed_sql":
            response = self._garble_sql(response)
        if kind == "latency_spike":
            response = self._spike(response)
        return response

    def complete_batch(
        self, prompts: list[str], max_tokens: int | None = None
    ) -> list[LMResponse]:
        """All-or-nothing: a batch containing a would-fault prompt is
        rejected up front (nothing consumed or billed) — callers replay
        per-prompt via :meth:`complete` for per-request outcomes."""
        if self.plan.is_healthy or not prompts:
            return self._inner.complete_batch(prompts, max_tokens)
        with self._lock:
            kinds = [
                self._peek_locked(offset, prompt, max_tokens)
                for offset, prompt in enumerate(prompts)
            ]
        for kind in kinds:
            if kind in ("rate_limit", "timeout", "transient"):
                raise self._build_error(kind)
            if kind == "malformed":
                raise MalformedOutputError("<batch rejected>", latency_s=0.0)
        responses = self._inner.complete_batch(prompts, max_tokens)
        with self._lock:
            mutated = []
            for prompt, response in zip(prompts, responses):
                kind = self._consume_locked(prompt, max_tokens)
                if kind == "latency_spike":
                    response = self._spike_locked(response)
                elif kind == "malformed_sql":
                    response = self._garble_sql_locked(response)
                mutated.append(response)
        return mutated

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _fault_for(
        self,
        cursor: int,
        prompt: str,
        max_tokens: int | None,
        attempt: int,
    ) -> str | None:
        if cursor < len(self.plan.script):
            return self.plan.script[cursor]
        return self.plan.draw(prompt, max_tokens, attempt)

    def _peek_locked(
        self, offset: int, prompt: str, max_tokens: int | None
    ) -> str | None:
        key = (prompt, max_tokens)
        return self._fault_for(
            self._cursor + offset, prompt, max_tokens,
            self._attempts.get(key, 0),
        )

    def _consume_locked(
        self, prompt: str, max_tokens: int | None
    ) -> str | None:
        key = (prompt, max_tokens)
        attempt = self._attempts.get(key, 0)
        kind = self._fault_for(self._cursor, prompt, max_tokens, attempt)
        self._attempts[key] = attempt + 1
        self._cursor += 1
        return kind

    def _consume(self, prompt: str, max_tokens: int | None) -> str | None:
        with self._lock:
            return self._consume_locked(prompt, max_tokens)

    def _build_error(self, kind: str) -> TransientLMError:
        if kind == "rate_limit":
            return RateLimitError(
                "rate limited: deployment shed this request",
                latency_s=self.plan.rate_limit_latency_s,
            )
        if kind == "timeout":
            return LMTimeoutError(self.plan.timeout_s)
        return TransientLMError(
            "transient backend failure",
            latency_s=self.plan.transient_latency_s,
        )

    def _cheap_fault(self, kind: str) -> TransientLMError:
        """Build, meter, and bill a fault that never ran the model."""
        error = self._build_error(kind)
        with self._lock:
            self.usage.faults_injected += 1
            self.usage.simulated_seconds += error.latency_s
        return error

    def _spike_locked(self, response: LMResponse) -> LMResponse:
        extra = response.latency_s * (self.plan.latency_spike_factor - 1.0)
        self.usage.faults_injected += 1
        self.usage.simulated_seconds += extra
        return replace(response, latency_s=response.latency_s + extra)

    def _spike(self, response: LMResponse) -> LMResponse:
        with self._lock:
            return self._spike_locked(response)

    def _garble_sql_locked(self, response: LMResponse) -> LMResponse:
        self.usage.faults_injected += 1
        return replace(response, text=_garble_sql(response.text))

    def _garble_sql(self, response: LMResponse) -> LMResponse:
        with self._lock:
            return self._garble_sql_locked(response)


def _garble(text: str) -> str:
    """A deterministic 'truncated/corrupted decode' of a response."""
    cut = max(1, len(text) // 3)
    return text[:cut][::-1] + "�"


def _garble_sql(sql: str) -> str:
    """A deterministically-broken generation of a SQL response.

    Two variants, chosen by a pure hash of the text so the choice is
    run- and worker-invariant: a *hallucinated column* prepended to the
    SELECT list (parses, then fails binding — ANA003 territory), or a
    corrupted-decode prefix (fails to parse at all).  Both surface only
    when the caller tries to use the SQL, exactly like a real bad
    generation.
    """
    digest = hashlib.sha256(sql.encode()).digest()
    if digest[0] % 2:
        hallucinated = re.sub(
            r"^(\s*SELECT\s+)",
            r"\1hallucinated_col, ",
            sql,
            count=1,
            flags=re.IGNORECASE,
        )
        if hallucinated != sql:
            return hallucinated
    cut = max(1, len(sql) // 3)
    return sql[:cut][::-1] + sql[cut:]
