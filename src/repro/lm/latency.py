"""Deterministic latency model for simulated LM inference.

The paper's Table 1/2 report execution time (ET) per query on 8xA100s.
Absolute numbers depend on their testbed; the *relationships* between
methods come from first principles the model captures:

- every request pays a fixed **overhead** (scheduling, tokenisation),
- prompt processing (**prefill**) is proportional to prompt tokens,
- generation (**decode**) is proportional to output tokens,
- **batched** requests amortise overhead and share decode bandwidth up
  to a parallelism limit — the mechanism the paper credits for the
  hand-written TAG baseline's low ET ("exploiting efficient batched
  inference of LMs", §4.3).

Default constants are calibrated so single-call baselines land in the
same few-seconds range the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Latency constants (seconds)."""

    #: Fixed cost per request (or per batch, when batched).
    overhead_s: float = 0.4
    #: Prompt-processing cost per 1000 prompt tokens.
    prefill_s_per_1k: float = 1.7
    #: Generation cost per output token.
    decode_s_per_token: float = 0.01
    #: Maximum effective parallelism of batched execution.
    max_parallel: int = 16

    def call_seconds(self, prompt_tokens: int, output_tokens: int) -> float:
        """Latency of one unbatched request."""
        return (
            self.overhead_s
            + self.prefill_s_per_1k * prompt_tokens / 1000.0
            + self.decode_s_per_token * output_tokens
        )

    def batch_seconds(
        self, requests: list[tuple[int, int]]
    ) -> float:
        """Latency of one batch of (prompt_tokens, output_tokens) requests.

        The batch pays overhead once; prefill and decode work is divided
        by the effective parallelism ``min(len(batch), max_parallel)``.
        An empty batch costs nothing.
        """
        if not requests:
            return 0.0
        parallelism = min(len(requests), self.max_parallel)
        total_prefill = sum(
            self.prefill_s_per_1k * prompt / 1000.0
            for prompt, _ in requests
        )
        total_decode = sum(
            self.decode_s_per_token * output for _, output in requests
        )
        return self.overhead_s + (total_prefill + total_decode) / parallelism
