"""Handlers for operator-style prompts: judge, score, compare, summarise.

These are the capabilities semantic operators (sem_filter / sem_topk /
sem_agg) and the reranking baseline exercise.  Parsing is strict — the
prompts are built by :mod:`repro.lm.prompts`, so a malformed prompt is a
programming error, not user input.
"""

from __future__ import annotations

import re

from repro.lm import concepts, prompts
from repro.lm.router import HandlerContext
from repro.text.summarize import summarize_items


class JudgmentHandler:
    """Answers yes/no statements (sem_filter judgments, SQL LM UDFs)."""

    def matches(self, prompt: str) -> bool:
        return prompt.startswith(prompts.JUDGMENT_HEADER)

    def handle(self, prompt: str, context: HandlerContext) -> str:
        marker = "Statement: "
        position = prompt.index(marker) + len(marker)
        condition = prompt[position:]
        verdict = concepts.judge(condition, context.fuzzy, context.seed)
        return "yes" if verdict else "no"


class ScoringHandler:
    """Scores an item against a criterion in [0, 1] (sem_topk)."""

    def matches(self, prompt: str) -> bool:
        return prompt.startswith(prompts.SCORING_HEADER)

    def handle(self, prompt: str, context: HandlerContext) -> str:
        criterion, item = _two_fields(prompt, "Criterion", "Item")
        value = concepts.score(criterion, item, context.seed)
        return f"{value:.4f}"


class RelevanceHandler:
    """Scores document relevance to a query (Retrieval + LM Rank)."""

    def matches(self, prompt: str) -> bool:
        return prompt.startswith(prompts.RELEVANCE_HEADER)

    def handle(self, prompt: str, context: HandlerContext) -> str:
        query, document = _two_fields(prompt, "Query", "Document")
        value = concepts.relevance(query, document, context.seed)
        return f"{value:.4f}"


class ComparisonHandler:
    """Pairwise comparison on a criterion (sem_topk's comparator)."""

    def matches(self, prompt: str) -> bool:
        return prompt.startswith(prompts.COMPARISON_HEADER)

    def handle(self, prompt: str, context: HandlerContext) -> str:
        pattern = re.compile(
            r"Criterion: (?P<criterion>.*?)\nA: (?P<left>.*?)\n"
            r"B: (?P<right>.*)\Z",
            re.DOTALL,
        )
        match = pattern.search(prompt)
        if match is None:
            return "A"
        left_wins = concepts.compare(
            match.group("criterion"),
            match.group("left"),
            match.group("right"),
            context.seed,
        )
        return "A" if left_wins else "B"


class SummaryHandler:
    """Faithful summarisation of listed items (sem_agg).

    Structured records ("key: value; key: value" items) get a complete
    enumeration-style summary — field ranges plus a per-record listing —
    which is how a capable LM summarises small tables exhaustively (the
    behaviour Figure 2 shows for hand-written TAG on the Sepang query).
    Prose items get a faithful extractive summary.
    """

    _RECORD_RE = re.compile(r"^(?:[^:;]{1,40}: [^;]*)(?:; [^:;]{1,40}: [^;]*)*$")

    def matches(self, prompt: str) -> bool:
        return prompt.startswith(prompts.SUMMARY_HEADER)

    def handle(self, prompt: str, context: HandlerContext) -> str:
        items = re.findall(
            r"^Item \d+: (.*?)(?=^Item \d+: |\Z)",
            prompt,
            re.MULTILINE | re.DOTALL,
        )
        items = [item.strip() for item in items if item.strip()]
        if not items:
            return ""
        structured = [_parse_record(item) for item in items]
        if all(record is not None for record in structured):
            return _summarize_records(structured)  # type: ignore[arg-type]
        return summarize_items(items, max_sentences=6)


def _parse_record(item: str) -> dict[str, str] | None:
    if "\n" in item:
        return None
    fields: dict[str, str] = {}
    for piece in item.split("; "):
        key, separator, value = piece.partition(": ")
        if not separator or not key or len(key) > 40:
            return None
        fields[key.strip()] = value.strip()
    return fields or None


def _summarize_records(records: list[dict[str, str]]) -> str:
    count = len(records)
    keys: list[str] = []
    for record in records:
        for key in record:
            if key not in keys:
                keys.append(key)
    lines = [f"There are {count} records."]
    for key in keys:
        values = [record[key] for record in records if key in record]
        numbers = _all_numbers(values)
        if numbers is not None and len(numbers) > 1:
            lines.append(
                f"{key} ranges from {_render_number(min(numbers))} to "
                f"{_render_number(max(numbers))}."
            )
        else:
            unique: list[str] = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            shown = ", ".join(unique[:8])
            suffix = ", ..." if len(unique) > 8 else ""
            lines.append(f"{key} values: {shown}{suffix}.")
    if count <= 30:
        # Constant-valued fields are already covered by the field
        # summaries above; keep the per-record listing compact.
        varying = [
            key
            for key in keys
            if len({record.get(key) for record in records}) > 1
        ] or keys[:1]
        listing = " | ".join(
            ", ".join(
                f"{key}={record[key]}" for key in varying if key in record
            )
            for record in records
        )
        lines.append(f"Records: {listing}.")
    return " ".join(lines)


def _all_numbers(values: list[str]) -> list[float] | None:
    numbers: list[float] = []
    for value in values:
        try:
            numbers.append(float(value))
        except ValueError:
            return None
    return numbers


def _render_number(value: float) -> str:
    if value.is_integer():
        return str(int(value))
    return str(value)


def _two_fields(prompt: str, first: str, second: str) -> tuple[str, str]:
    pattern = re.compile(
        rf"{first}: (?P<first>.*?)\n{second}: (?P<second>.*)\Z",
        re.DOTALL,
    )
    match = pattern.search(prompt)
    if match is None:
        return "", ""
    return match.group("first"), match.group("second")
