"""Prompt handlers: each implements one capability of the simulated LM."""

from repro.lm.handlers.judge import (
    ComparisonHandler,
    JudgmentHandler,
    RelevanceHandler,
    ScoringHandler,
    SummaryHandler,
)

__all__ = [
    "ComparisonHandler",
    "JudgmentHandler",
    "RelevanceHandler",
    "ScoringHandler",
    "SummaryHandler",
    "default_handlers",
]


def default_handlers() -> list:
    """The full handler stack of the simulated LM, in routing order.

    Imported lazily so that handler modules with heavier dependencies
    (the Text2SQL semantic parser, the in-context answerer) only load
    when a model is constructed.
    """
    from repro.lm.handlers.answer import AnswerHandler
    from repro.lm.handlers.repair import RepairHandler
    from repro.lm.handlers.text2sql import Text2SQLHandler

    return [
        JudgmentHandler(),
        ScoringHandler(),
        RelevanceHandler(),
        ComparisonHandler(),
        SummaryHandler(),
        # Repair before Text2SQL: the repair prompt embeds the same
        # schema block, so the more specific format must route first.
        RepairHandler(),
        Text2SQLHandler(),
        AnswerHandler(),
    ]
