"""The Text2SQL capability: a rule-based NL -> SQL semantic parser.

Behaves the way the paper characterises LM query synthesis:

- relational asks (filters, superlatives, counts, joins) are translated
  faithfully, using schema vocabulary knowledge
  (:mod:`repro.lm.schema_semantics`) and the foreign keys declared in
  the prompt's CREATE TABLE statements;
- *world-knowledge* clauses are answered parametrically: "schools in
  the Bay Area" becomes ``City IN (...)`` with the city list recalled
  from the model's (fuzzy) beliefs — sometimes right, sometimes subtly
  wrong, exactly the 10-20% exact-match regime of the paper's Text2SQL
  baseline on knowledge queries;
- *semantic-reasoning* clauses (sarcasm, technicality, sentiment,
  summarisation) have no relational equivalent, so the parser does what
  LMs observably do: emit a plausible proxy (``ORDER BY LENGTH(Title)``
  for "most technical", ``Score > 0`` for "positive") or drop the
  clause — producing valid SQL whose answer is wrong.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.errors import SQLSyntaxError
from repro.knowledge import FuzzyKnowledge
from repro.lm import schema_semantics
from repro.lm.prompts import TEXT2SQL_INSTRUCTION
from repro.lm.router import HandlerContext

_NUMBER = r"(\d+(?:\.\d+)?)"
_GT_RE = re.compile(
    rf"(?:over|above|more than|greater than|at least|exceeding) {_NUMBER}",
    re.IGNORECASE,
)
_LT_RE = re.compile(
    rf"(?:under|below|less than|fewer than|at most) {_NUMBER}",
    re.IGNORECASE,
)
_BETWEEN_RE = re.compile(
    rf"between {_NUMBER} and {_NUMBER}", re.IGNORECASE
)
_TOP_N_RE = re.compile(
    r"\btop (\d+)\b|\b(\d+) (?:\w+ )?(?:posts?|schools?|players?|races?|"
    r"rows?|comments?|drivers?|movies?|titles?|customers?|years?|"
    r"circuits?)\b",
    re.IGNORECASE,
)
_SUPERLATIVE_HIGH = re.compile(
    r"\b(highest|most|largest|greatest|biggest|maximum|best)\b",
    re.IGNORECASE,
)
_SUPERLATIVE_LOW = re.compile(
    r"\b(lowest|least|smallest|minimum|fewest|worst)\b", re.IGNORECASE
)
_QUOTED_RE = re.compile(r"[\"']([^\"']+)[\"']")
_TALLER_RE = re.compile(
    r"\b(taller|shorter) than ([A-Z][A-Za-z.'-]*(?: [A-Z][A-Za-z.'-]*)*)",
)
_REGION_RE = re.compile(
    r"(?:in|of|part of) (?:cities (?:in|that are part of) )?(?:the )?"
    r"[\"']?(silicon valley|bay area|southern california|central valley)"
    r"[\"']?(?: region| area)?",
    re.IGNORECASE,
)
_EURO_RE = re.compile(
    r"countries (?:that|which) use the euro|eurozone countries"
    r"|euro-using countries",
    re.IGNORECASE,
)
_EU_RE = re.compile(
    r"countries (?:that are |which are )?in the (?:EU|European Union)"
    r"|EU member (?:states|countries)",
    re.IGNORECASE,
)
_BIG_FIVE_RE = re.compile(
    r"big[- ]five league|big 5 league", re.IGNORECASE
)
_UK_LEAGUE_RE = re.compile(
    r"leagues? (?:based |played )?in the (?:UK|United Kingdom)",
    re.IGNORECASE,
)
_STREET_CIRCUIT_RE = re.compile(
    r"street circuits?", re.IGNORECASE
)
_CIRCUIT_REGION_RE = re.compile(
    r"circuits? (?:located |based )?in (southeast asia|east asia|europe"
    r"|north america|south america|middle east|oceania)",
    re.IGNORECASE,
)
_REASONING_FILTER_RE = re.compile(
    r"\b(positive|negative|sarcastic|technical)\b", re.IGNORECASE
)
_REASONING_ORDER_RE = re.compile(
    r"most (sarcastic|technical|positive|negative)", re.IGNORECASE
)
_WORLD_CHAMPION_RE = re.compile(
    r"world champion(?:ship)? (?:in |of )?(\d{4})", re.IGNORECASE
)


@dataclass
class _Sketch:
    """Accumulated translation state for one question."""

    select: list[tuple[str, str]] = field(default_factory=list)
    count: bool = False
    filters: list[str] = field(default_factory=list)
    order: tuple[str, str, bool] | None = None  # (table, column, asc)
    limit: int | None = None
    tables: set[str] = field(default_factory=set)


class Text2SQLHandler:
    """Recognises the BIRD-format prompt and emits SQL."""

    def matches(self, prompt: str) -> bool:
        return TEXT2SQL_INSTRUCTION in prompt and (
            "CREATE TABLE" in prompt
        )

    def handle(self, prompt: str, context: HandlerContext) -> str:
        tables, fk_edges = _parse_schema(prompt)
        question = _parse_question(prompt)
        if question is None or not tables:
            return "SELECT 1"
        overrides = parse_external_knowledge(
            _parse_external_knowledge_line(prompt)
        )
        return _synthesize(
            question, tables, fk_edges, context.fuzzy, overrides
        )


# ---------------------------------------------------------------------------
# prompt parsing
# ---------------------------------------------------------------------------


def _parse_schema(
    prompt: str,
) -> tuple[dict[str, list[str]], list[tuple[str, str, str, str]]]:
    """Extract tables {name: [columns]} and FK edges from the prompt."""
    tables: dict[str, list[str]] = {}
    edges: list[tuple[str, str, str, str]] = []
    for block in re.findall(
        r"CREATE TABLE.*?\n\)", prompt, re.DOTALL
    ):
        try:
            statement = parse_statement(block)
        except SQLSyntaxError:
            continue
        if not isinstance(statement, ast.CreateTable):
            continue
        tables[statement.name] = [
            column.name for column in statement.columns
        ]
        for fk in statement.foreign_keys:
            edges.append(
                (statement.name, fk.column, fk.parent_table, fk.parent_column)
            )
    return tables, edges


def _parse_external_knowledge_line(prompt: str) -> str:
    match = re.search(
        r"^-- External Knowledge: (.*)$", prompt, re.MULTILINE
    )
    if match is None:
        return ""
    text = match.group(1).strip()
    return "" if text == "None" else text


#: Hint sentence patterns the model reads from External Knowledge —
#: mirrors BIRD's "evidence" strings.
_XK_REGION_RE = re.compile(
    r"the (silicon valley|bay area|southern california|central valley)"
    r" cities are:? ([^.]+)",
    re.IGNORECASE,
)
_XK_HEIGHT_RE = re.compile(
    r"([A-Z][A-Za-z.'-]*(?: [A-Z][A-Za-z.'-]*)*) is "
    r"(\d+(?:\.\d+)?) ?cm tall",
)
_XK_SET_RES = {
    "euro_countries": re.compile(
        r"countries that use the euro(?: are)?:? ([^.]+)", re.IGNORECASE
    ),
    "eu_countries": re.compile(
        r"countries in the european union(?: are)?:? ([^.]+)",
        re.IGNORECASE,
    ),
    "street_circuits": re.compile(
        r"(?:the )?street circuits are:? ([^.]+)", re.IGNORECASE
    ),
    "southeast_asia_circuits": re.compile(
        r"circuits in southeast asia(?: are)?:? ([^.]+)", re.IGNORECASE
    ),
    "uk_leagues": re.compile(
        r"leagues in the united kingdom(?: are)?:? ([^.]+)",
        re.IGNORECASE,
    ),
}


def parse_external_knowledge(text: str) -> dict:
    """Parse External-Knowledge hint sentences into overrides.

    Returns a dict with optional keys: ``("region_cities", region)`` ->
    list[str], ``("height", person_lower)`` -> float, plus the set keys
    in :data:`_XK_SET_RES`.  Unknown sentences are ignored (a real LM
    simply would not benefit from hints it cannot ground).
    """
    overrides: dict = {}
    if not text:
        return overrides
    for match in _XK_REGION_RE.finditer(text):
        region = match.group(1).lower()
        overrides[("region_cities", region)] = _split_list(
            match.group(2)
        )
    for match in _XK_HEIGHT_RE.finditer(text):
        overrides[("height", match.group(1).strip().lower())] = float(
            match.group(2)
        )
    for key, pattern in _XK_SET_RES.items():
        match = pattern.search(text)
        if match is not None:
            overrides[key] = _split_list(match.group(1))
    return overrides


def _split_list(text: str) -> list[str]:
    return [
        piece.strip()
        for piece in re.split(r",| and ", text)
        if piece.strip()
    ]


def _parse_question(prompt: str) -> str | None:
    lines = [line.strip() for line in prompt.splitlines()]
    question = None
    for line in lines:
        if line.startswith("--") and not line.startswith(
            ("-- External Knowledge", "-- Using valid SQLite")
        ):
            text = line[2:].strip()
            if text:
                question = text
    return question


# ---------------------------------------------------------------------------
# synthesis
# ---------------------------------------------------------------------------


def _synthesize(
    question: str,
    tables: dict[str, list[str]],
    fk_edges: list[tuple[str, str, str, str]],
    fuzzy: FuzzyKnowledge,
    overrides: dict | None = None,
) -> str:
    sketch = _Sketch()
    mentions = schema_semantics.find_mentions(question, tables)
    lowered = question.lower()

    _apply_intent(sketch, question, mentions)
    _apply_relational_idioms(sketch, question, tables)
    _apply_numeric_filters(sketch, question, mentions)
    _apply_quoted_literals(sketch, question, mentions, tables)
    _apply_knowledge_clauses(
        sketch, question, tables, fuzzy, overrides or {}
    )
    _apply_reasoning_clauses(sketch, question, mentions, tables)

    if not sketch.select and not sketch.count and mentions:
        first = mentions[0]
        sketch.select.append((first.table, first.column))
        sketch.tables.add(first.table)
    if not sketch.tables:
        sketch.tables.add(next(iter(tables)))
    if not sketch.select and not sketch.count:
        sketch.count = "how many" in lowered
        if not sketch.count:
            table = next(iter(sketch.tables))
            sketch.select.append((table, tables[table][0]))

    return _render(sketch, tables, fk_edges)


_COUNT_INTENT_RE = re.compile(
    r"\bhow many\b|\bcount the\b|\bthe number of\b|\btotal number of\b",
    re.IGNORECASE,
)


def _apply_intent(
    sketch: _Sketch,
    question: str,
    mentions: list[schema_semantics.Mention],
) -> None:
    lowered = question.lower()
    if _COUNT_INTENT_RE.search(question) is not None:
        sketch.count = True
        for mention in mentions:
            sketch.tables.add(mention.table)
    target = _target_mention(question, mentions)
    if target is not None and not sketch.count:
        sketch.select.append((target.table, target.column))
        sketch.tables.add(target.table)

    # "tallest"/"shortest" bind to the height column directly.
    for keyword, ascending in (("tallest", False), ("shortest", True)):
        if keyword in lowered and sketch.order is None:
            for mention in mentions:
                if mention.column.lower() == "height":
                    sketch.order = (mention.table, mention.column, ascending)
                    sketch.tables.add(mention.table)
                    break
            else:
                height = None
                for mention in mentions:
                    if mention.table.lower() == "player":
                        height = (mention.table, "height", ascending)
                        break
                if height is not None:
                    sketch.order = height
                    sketch.tables.add(height[0])
            if sketch.order is not None and sketch.limit is None:
                sketch.limit = 1

    # Superlative ordering: a high/low keyword close to a column phrase.
    for pattern, ascending in (
        (_SUPERLATIVE_HIGH, False),
        (_SUPERLATIVE_LOW, True),
    ):
        if sketch.order is not None:
            break
        for match in pattern.finditer(question):
            mention = _nearest_mention(
                mentions, match.start(), max_distance=40
            )
            if mention is None or not _is_numeric_column(mention):
                continue
            sketch.order = (mention.table, mention.column, ascending)
            sketch.tables.add(mention.table)
            if sketch.limit is None:
                sketch.limit = 1
            break
        if sketch.order is not None:
            break
    top_match = _TOP_N_RE.search(question)
    if top_match is not None:
        count = top_match.group(1) or top_match.group(2)
        if count is not None and sketch.order is not None:
            sketch.limit = int(count)


def _target_mention(
    question: str, mentions: list[schema_semantics.Mention]
) -> schema_semantics.Mention | None:
    """The attribute the question asks for (after 'what is the ...')."""
    match = re.search(
        r"(?:what (?:is|are) the|which|list (?:the |their )?|"
        r"provide the |give me the |show (?:me )?the |tell me the )",
        question,
        re.IGNORECASE,
    )
    if match is None:
        return mentions[0] if mentions else None
    for mention in mentions:
        if mention.position >= match.end() - 1:
            return mention
    return mentions[0] if mentions else None


def _nearest_mention(
    mentions: list[schema_semantics.Mention],
    position: int,
    max_distance: int,
) -> schema_semantics.Mention | None:
    best = None
    best_distance = max_distance + 1
    for mention in mentions:
        distance = abs(mention.position - position)
        if distance < best_distance:
            best = mention
            best_distance = distance
    return best


_NUMERIC_COLUMNS = {
    "longitude", "latitude", "avgscrmath", "avgscrread", "avgscrwrite",
    "numtsttakr", "numge1500", "enrollment", "freemealcount",
    "frpmcount", "viewcount", "score", "answercount", "reputation",
    "height", "weight", "overall_rating", "volleys", "dribbling",
    "finishing", "sprint_speed", "year", "round", "points", "position",
    "amount", "price", "consumption", "revenue", "charter",
}


def _is_numeric_column(mention: schema_semantics.Mention) -> bool:
    return mention.column.lower() in _NUMERIC_COLUMNS


def _apply_relational_idioms(
    sketch: _Sketch, question: str, tables: dict[str, list[str]]
) -> None:
    """Schema idioms a competent LM translates reliably."""
    if re.search(r"\bcharter schools?\b", question, re.IGNORECASE):
        charter = _find_column(tables, "schools", "Charter")
        if charter is not None:
            sketch.filters.append(
                f"{_quote(charter[0])}.{_quote(charter[1])} = 1"
            )
            sketch.tables.add(charter[0])


def _apply_numeric_filters(
    sketch: _Sketch,
    question: str,
    mentions: list[schema_semantics.Mention],
) -> None:
    for pattern, operator in ((_GT_RE, ">"), (_LT_RE, "<")):
        for match in pattern.finditer(question):
            mention = _nearest_mention(
                mentions, match.start(), max_distance=60
            )
            if mention is None or not _is_numeric_column(mention):
                continue
            sketch.filters.append(
                f"{_qualified(mention)} {operator} {match.group(1)}"
            )
            sketch.tables.add(mention.table)
    for match in _BETWEEN_RE.finditer(question):
        mention = _nearest_mention(mentions, match.start(), max_distance=60)
        if mention is None or not _is_numeric_column(mention):
            continue
        sketch.filters.append(
            f"{_qualified(mention)} BETWEEN {match.group(1)} "
            f"AND {match.group(2)}"
        )
        sketch.tables.add(mention.table)


_TEXT_EQUALITY_CUES = (
    "titled", "named", "called", "on", "at", "in", "for", "of",
)

#: Quoted strings that are region/criterion names, not literals to match.
_NON_LITERAL_QUOTES = {
    "silicon valley", "bay area", "southern california",
    "central valley", "classic", "big five", "retail",
}


def _apply_quoted_literals(
    sketch: _Sketch,
    question: str,
    mentions: list[schema_semantics.Mention],
    tables: dict[str, list[str]],
) -> None:
    for match in _QUOTED_RE.finditer(question):
        literal = match.group(1)
        if literal.strip().lower() in _NON_LITERAL_QUOTES:
            continue
        prefix = question[: match.start()].rstrip().lower()
        cue = prefix.split()[-1] if prefix.split() else ""
        if cue not in _TEXT_EQUALITY_CUES:
            continue
        column = _literal_column(literal, prefix, mentions, tables)
        if column is None:
            continue
        table_name, column_name = column
        escaped = literal.replace("'", "''")
        sketch.filters.append(
            f"{_quote(table_name)}.{_quote(column_name)} = '{escaped}'"
        )
        sketch.tables.add(table_name)


def _literal_column(
    literal: str,
    prefix: str,
    mentions: list[schema_semantics.Mention],
    tables: dict[str, list[str]],
) -> tuple[str, str] | None:
    # "the post titled 'X'" -> Title; "on Sepang ... Circuit" -> name.
    if "titled" in prefix or "title" in prefix:
        return _find_column(tables, "posts", "Title")
    if "circuit" in literal.lower() or "circuit" in prefix:
        return _find_column(tables, "circuits", "name")
    for mention in reversed(mentions):
        if mention.position < len(prefix):
            return mention.table, mention.column
    return None


def _find_column(
    tables: dict[str, list[str]], table: str, column: str
) -> tuple[str, str] | None:
    for table_name, columns in tables.items():
        if table_name.lower() != table.lower():
            continue
        for actual in columns:
            if actual.lower() == column.lower():
                return table_name, actual
    return None


# ---------------------------------------------------------------------------
# knowledge clauses (parametric substitution)
# ---------------------------------------------------------------------------


def _apply_knowledge_clauses(
    sketch: _Sketch,
    question: str,
    tables: dict[str, list[str]],
    fuzzy: FuzzyKnowledge,
    overrides: dict,
) -> None:
    region_match = _REGION_RE.search(question)
    if region_match is not None:
        city_column = _find_column(tables, "schools", "City")
        if city_column is not None:
            region = region_match.group(1).lower()
            cities = set(
                overrides.get(("region_cities", region))
                or _believed_region_cities(fuzzy, region)
            )
            if cities:
                sketch.filters.append(
                    _in_list(city_column, sorted(cities))
                )
                sketch.tables.add(city_column[0])
    taller_match = _TALLER_RE.search(question)
    if taller_match is not None:
        height_column = _find_column(tables, "Player", "height")
        if height_column is not None:
            person = taller_match.group(2).strip().rstrip("?.")
            believed = overrides.get(
                ("height", person.lower())
            ) or fuzzy.believed_height_cm(person)
            if believed is not None:
                operator = ">" if taller_match.group(1) == "taller" else "<"
                sketch.filters.append(
                    f"{_quote(height_column[0])}."
                    f"{_quote(height_column[1])} {operator} {believed}"
                )
                sketch.tables.add(height_column[0])
    if _EURO_RE.search(question) is not None:
        _add_country_filter(
            sketch, tables, fuzzy, "uses_euro",
            overrides.get("euro_countries"),
        )
    elif _EU_RE.search(question) is not None:
        _add_country_filter(
            sketch, tables, fuzzy, "in_eu",
            overrides.get("eu_countries"),
        )
    if _BIG_FIVE_RE.search(question) is not None:
        league_column = _find_column(tables, "League", "name")
        if league_column is not None:
            leagues = _believed_true_subjects(fuzzy, "big_five_league")
            if leagues:
                sketch.filters.append(
                    _in_list(league_column, sorted(leagues))
                )
                sketch.tables.add(league_column[0])
    if _UK_LEAGUE_RE.search(question) is not None:
        league_column = _find_column(tables, "League", "name")
        if league_column is not None:
            leagues = set(
                overrides.get("uk_leagues")
                or _believed_uk_leagues(fuzzy)
            )
            if leagues:
                sketch.filters.append(
                    _in_list(league_column, sorted(leagues))
                )
                sketch.tables.add(league_column[0])
    if _STREET_CIRCUIT_RE.search(question) is not None:
        circuit_column = _find_column(tables, "circuits", "name")
        if circuit_column is not None:
            circuits = set(
                overrides.get("street_circuits")
                or _believed_true_subjects(fuzzy, "street_circuit")
            )
            if circuits:
                sketch.filters.append(
                    _in_list(circuit_column, sorted(circuits))
                )
                sketch.tables.add(circuit_column[0])
    circuit_region_match = _CIRCUIT_REGION_RE.search(question)
    if circuit_region_match is not None:
        circuit_column = _find_column(tables, "circuits", "name")
        if circuit_column is not None:
            region = circuit_region_match.group(1).lower()
            circuits = _believed_circuits_in_region(fuzzy, region)
            if region == "southeast asia" and overrides.get(
                "southeast_asia_circuits"
            ):
                circuits = set(overrides["southeast_asia_circuits"])
            if circuits:
                sketch.filters.append(
                    _in_list(circuit_column, sorted(circuits))
                )
                sketch.tables.add(circuit_column[0])
    champion_match = _WORLD_CHAMPION_RE.search(question)
    if champion_match is not None:
        surname_column = _find_column(tables, "drivers", "surname")
        champion = fuzzy.believe(
            "world_champion", champion_match.group(1)
        )
        if surname_column is not None and champion:
            surname = str(champion).split()[-1].replace("'", "''")
            sketch.filters.append(
                f"{_quote(surname_column[0])}."
                f"{_quote(surname_column[1])} = '{surname}'"
            )
            sketch.tables.add(surname_column[0])


def _add_country_filter(
    sketch: _Sketch,
    tables: dict[str, list[str]],
    fuzzy: FuzzyKnowledge,
    relation: str,
    override: list[str] | None = None,
) -> None:
    country_column = _find_column(tables, "gasstations", "Country")
    if country_column is None:
        return
    countries = set(
        override or _believed_true_subjects(fuzzy, relation)
    )
    if countries:
        sketch.filters.append(_in_list(country_column, sorted(countries)))
        sketch.tables.add(country_column[0])


def _believed_region_cities(fuzzy: FuzzyKnowledge, region: str) -> set[str]:
    kb = fuzzy._kb  # the fuzzy view wraps exactly one oracle store
    cities: set[str] = set()
    for fact in kb.facts_for_relation("in_region"):
        city, fact_region = fact.subject
        if fact_region != region:
            continue
        if fuzzy.believes_in_region(city, region):
            cities.add(city)
    return cities


def _believed_true_subjects(
    fuzzy: FuzzyKnowledge, relation: str
) -> set[str]:
    kb = fuzzy._kb
    return {
        str(fact.subject)
        for fact in kb.facts_for_relation(relation)
        if isinstance(fact.subject, str)
        and bool(fuzzy.believe(relation, fact.subject, False))
    }


def _believed_uk_leagues(fuzzy: FuzzyKnowledge) -> set[str]:
    kb = fuzzy._kb
    leagues: set[str] = set()
    for fact in kb.facts_for_relation("league_country"):
        league = str(fact.subject)
        country = fuzzy.believe("league_country", league)
        if country and bool(
            fuzzy.believe("uk_home_nation", str(country), False)
        ):
            leagues.add(league)
    return leagues


def _believed_circuits_in_region(
    fuzzy: FuzzyKnowledge, region: str
) -> set[str]:
    kb = fuzzy._kb
    circuits: set[str] = set()
    for fact in kb.facts_for_relation("circuit_region"):
        circuit = str(fact.subject)
        believed = fuzzy.believe("circuit_region", circuit)
        if believed == region:
            circuits.add(circuit)
    return circuits


# ---------------------------------------------------------------------------
# reasoning clauses (plausible proxies)
# ---------------------------------------------------------------------------


def _apply_reasoning_clauses(
    sketch: _Sketch,
    question: str,
    mentions: list[schema_semantics.Mention],
    tables: dict[str, list[str]],
) -> None:
    order_match = _REASONING_ORDER_RE.search(question)
    if order_match is not None:
        # "in order of most technical" has no SQL equivalent; a common
        # LM hallucination is a surface-feature proxy.
        mention = _nearest_mention(
            mentions, order_match.start(), max_distance=80
        )
        if mention is not None and not _is_numeric_column(mention):
            table = mention.table
            column = mention.column
        else:
            candidate = _find_column(tables, "posts", "Title") or (
                _find_column(tables, "comments", "Text")
            )
            if candidate is None:
                return
            table, column = candidate
        sketch.order = (
            "__expr__",
            f"LENGTH({_quote(table)}.{_quote(column)})",
            False,
        )
        sketch.tables.add(table)
        if sketch.limit is None and re.match(
            r"what is the|which", question, re.IGNORECASE
        ):
            sketch.limit = 1
        return
    filter_match = _REASONING_FILTER_RE.search(question)
    if filter_match is None:
        return
    keyword = filter_match.group(1).lower()
    if keyword in ("positive", "negative"):
        score_column = _find_column(tables, "comments", "Score") or (
            _find_column(tables, "posts", "Score")
        )
        if score_column is not None:
            operator = ">" if keyword == "positive" else "<"
            sketch.filters.append(
                f"{_quote(score_column[0])}.{_quote(score_column[1])} "
                f"{operator} 0"
            )
            sketch.tables.add(score_column[0])


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _qualified(mention: schema_semantics.Mention) -> str:
    return f"{_quote(mention.table)}.{_quote(mention.column)}"


def _quote(name: str) -> str:
    if re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", name):
        return name
    return '"' + name.replace('"', '""') + '"'


def _in_list(column: tuple[str, str], values: list[str]) -> str:
    rendered = ", ".join(
        "'" + value.replace("'", "''") + "'" for value in values
    )
    return f"{_quote(column[0])}.{_quote(column[1])} IN ({rendered})"


def _render(
    sketch: _Sketch,
    tables: dict[str, list[str]],
    fk_edges: list[tuple[str, str, str, str]],
) -> str:
    join_order, join_clauses = _join_path(sketch.tables, fk_edges)
    if sketch.count:
        select_sql = "COUNT(*)"
    else:
        select_sql = ", ".join(
            f"{_quote(table)}.{_quote(column)}"
            for table, column in sketch.select
        )
    from_sql = _quote(join_order[0])
    for table, condition in join_clauses:
        from_sql += f" JOIN {_quote(table)} ON {condition}"
    sql = f"SELECT {select_sql} FROM {from_sql}"
    if sketch.filters:
        sql += " WHERE " + " AND ".join(sketch.filters)
    if sketch.order is not None:
        table, column, ascending = sketch.order
        direction = "ASC" if ascending else "DESC"
        if table == "__expr__":
            sql += f" ORDER BY {column} {direction}"
        else:
            sql += (
                f" ORDER BY {_quote(table)}.{_quote(column)} {direction}"
            )
    if sketch.limit is not None:
        sql += f" LIMIT {sketch.limit}"
    return sql


def _join_path(
    needed: set[str], fk_edges: list[tuple[str, str, str, str]]
) -> tuple[list[str], list[tuple[str, str]]]:
    """Order the needed tables and derive join conditions via FK edges.

    Greedy: start from the first needed table, repeatedly attach any
    needed (or bridging) table connected by a foreign key.  Unreachable
    tables are joined on a cross-product-free guess (first column), the
    kind of join error LMs make on unconnected schemas.
    """
    needed_list = sorted(needed)
    if len(needed_list) == 1:
        return needed_list, []
    adjacency: dict[str, list[tuple[str, str, str, str]]] = {}
    for child, child_col, parent, parent_col in fk_edges:
        adjacency.setdefault(child, []).append(
            (child, child_col, parent, parent_col)
        )
        adjacency.setdefault(parent, []).append(
            (parent, parent_col, child, child_col)
        )
    connected = [needed_list[0]]
    clauses: list[tuple[str, str]] = []
    remaining = set(needed_list[1:])
    progress = True
    while remaining and progress:
        progress = False
        for table in list(connected):
            for this, this_col, other, other_col in adjacency.get(
                table, []
            ):
                if other in remaining:
                    clauses.append(
                        (
                            other,
                            f"{_quote(this)}.{_quote(this_col)} = "
                            f"{_quote(other)}.{_quote(other_col)}",
                        )
                    )
                    connected.append(other)
                    remaining.discard(other)
                    progress = True
    # Try one-hop bridges through non-needed tables.
    if remaining:
        for bridge, edges in adjacency.items():
            if bridge in connected:
                continue
            touches_connected = None
            touches_remaining = None
            for this, this_col, other, other_col in edges:
                if other in connected:
                    touches_connected = (this, this_col, other, other_col)
                if other in remaining:
                    touches_remaining = (this, this_col, other, other_col)
            if touches_connected and touches_remaining:
                this, this_col, other, other_col = touches_connected
                clauses.append(
                    (
                        bridge,
                        f"{_quote(other)}.{_quote(other_col)} = "
                        f"{_quote(bridge)}.{_quote(this_col)}",
                    )
                )
                connected.append(bridge)
                this, this_col, other, other_col = touches_remaining
                clauses.append(
                    (
                        other,
                        f"{_quote(bridge)}.{_quote(this_col)} = "
                        f"{_quote(other)}.{_quote(other_col)}",
                    )
                )
                connected.append(other)
                remaining.discard(other)
    for orphan in sorted(remaining):
        # No FK path: emit a (wrong but parseable) equality on row ids.
        clauses.append((orphan, "1 = 1"))
        connected.append(orphan)
    return connected, clauses
