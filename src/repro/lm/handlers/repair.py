"""The SQL-repair capability: correct a failed query from diagnostics.

Recognises the repair prompt format (:func:`repro.lm.prompts
.repair_prompt`) — the BIRD schema plus ``-- Failed SQL:`` and
``-- Diagnostics:`` lines — and behaves the way feedback-driven
self-correction is observed to work in text-to-SQL LMs:

- *grounded* diagnostics (an unknown or wrong-case column/table named
  by the analyzer or planner) get a targeted edit: the identifier is
  case-corrected against the schema, or a hallucinated column is
  dropped from the SELECT list;
- anything else (syntax garbage, unfixable semantics) is answered by
  re-deriving the query from the question with the same semantic
  parser the Text2SQL capability uses — a clean regeneration informed
  by the schema rather than a patch of unparseable text.

Both paths are deterministic, so repair outcomes are identical across
runs and worker counts like every other simulated capability.
"""

from __future__ import annotations

import re

from repro.lm.handlers.text2sql import (
    _parse_external_knowledge_line,
    _parse_question,
    _parse_schema,
    _synthesize,
    parse_external_knowledge,
)
from repro.lm.prompts import REPAIR_INSTRUCTION
from repro.lm.router import HandlerContext

_FAILED_SQL_RE = re.compile(r"^-- Failed SQL: (.*)$", re.MULTILINE)
_DIAGNOSTICS_RE = re.compile(r"^-- Diagnostics: (.*)$", re.MULTILINE)
#: Unknown-identifier phrasings of the analyzer (ANA002/ANA003) and the
#: planner/row-layout resolvers; group 1 is the (possibly qualified,
#: possibly quoted) identifier.
_UNKNOWN_NAME_RE = re.compile(
    r"unknown (?:column|table) '?\"?([A-Za-z_][A-Za-z0-9_.]*)\"?'?"
)


class RepairHandler:
    """Recognises the repair prompt and emits corrected SQL."""

    def matches(self, prompt: str) -> bool:
        return REPAIR_INSTRUCTION in prompt and "CREATE TABLE" in prompt

    def handle(self, prompt: str, context: HandlerContext) -> str:
        tables, fk_edges = _parse_schema(prompt)
        failed_sql = _parse_line(_FAILED_SQL_RE, prompt)
        diagnostics = _parse_line(_DIAGNOSTICS_RE, prompt)
        if failed_sql and tables:
            fixed = _targeted_fix(failed_sql, diagnostics, tables)
            if fixed is not None:
                return fixed
        question = _parse_question(prompt)
        if question is None or not tables:
            return "SELECT 1"
        overrides = parse_external_knowledge(
            _parse_external_knowledge_line(prompt)
        )
        return _synthesize(
            question, tables, fk_edges, context.fuzzy, overrides
        )


def _parse_line(pattern: re.Pattern, prompt: str) -> str:
    match = pattern.search(prompt)
    return match.group(1).strip() if match is not None else ""


def _targeted_fix(
    failed_sql: str,
    diagnostics: str,
    tables: dict[str, list[str]],
) -> str | None:
    """Edit the failed SQL in place when the diagnostics ground it.

    Returns None when no edit applies (or the edit is a no-op), in
    which case the caller re-derives the query from the question.
    """
    sql = failed_sql
    for name in _UNKNOWN_NAME_RE.findall(diagnostics):
        bare = name.split(".")[-1]
        actual = _schema_spelling(bare, tables)
        if actual is not None and actual != bare:
            # Wrong-case identifier: respell it as the schema does.
            sql = re.sub(rf"\b{re.escape(bare)}\b", actual, sql)
        elif actual is None:
            # Hallucinated column: drop it from the SELECT list.
            sql = re.sub(
                rf"^(\s*SELECT\s+){re.escape(bare)}\s*,\s*",
                r"\1",
                sql,
                count=1,
                flags=re.IGNORECASE,
            )
    return sql if sql != failed_sql else None


def _schema_spelling(
    name: str, tables: dict[str, list[str]]
) -> str | None:
    """The schema's spelling of ``name``, matched case-insensitively."""
    lowered = name.lower()
    for table, columns in tables.items():
        if table.lower() == lowered:
            return table
        for column in columns:
            if column.lower() == lowered:
                return column
    return None
