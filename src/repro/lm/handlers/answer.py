"""The answer-generation capability: QA over serialized data points.

This is what the RAG and Text2SQL+LM baselines exercise in their final
step (paper Appendix B.2): rows are serialized "- col: val" into the
prompt and the model must answer from them.  The handler mirrors real
LM behaviour:

- **point lookups** over a few rows work: find the row, read the value;
- **exact computation** (counting, comparisons) over many in-context
  rows is unreliable — beyond ``reliable_rows`` the count drifts by a
  seeded error, the long-context weakness the paper cites for why RAG
  cannot replace the database's exact computation;
- **semantic ordering** uses the text scorers, like any LM judgment;
- with **no data points** (or irrelevant ones), the model falls back to
  parametric knowledge, exactly the Text2SQL+LM behaviour shown for the
  Sepang query in Figure 2.
"""

from __future__ import annotations

import hashlib
import re

from repro.lm import prompts, schema_semantics
from repro.lm.concepts import noisy_threshold
from repro.lm.concepts import score as criterion_score
from repro.lm.router import HandlerContext
from repro.text.sarcasm import sarcasm_score
from repro.text.sentiment import sentiment_score
from repro.text.summarize import summarize_items
from repro.text.technicality import technicality_score

_DATA_POINT_RE = re.compile(
    r"^Data Point (\d+):$", re.MULTILINE
)
_FIELD_RE = re.compile(r"^- ([^:]+): (.*)$")
_QUESTION_RE = re.compile(r"^Question: (.*)\Z", re.MULTILINE | re.DOTALL)
_GT_RE = re.compile(
    r"(?:over|above|more than|greater than|at least) (\d+(?:\.\d+)?)",
    re.IGNORECASE,
)
_LT_RE = re.compile(
    r"(?:under|below|less than|fewer than|at most) (\d+(?:\.\d+)?)",
    re.IGNORECASE,
)
_TALLER_RE = re.compile(
    r"\b(taller|shorter) than ([A-Z][A-Za-z.'-]*(?: [A-Z][A-Za-z.'-]*)*)"
)
_ORDER_OF_RE = re.compile(
    r"in order of (most |least )?(\w+)", re.IGNORECASE
)
_SUPERLATIVE_RE = re.compile(
    r"\b(highest|largest|greatest|biggest|maximum|lowest|smallest"
    r"|minimum|fewest)\b",
    re.IGNORECASE,
)
_SEMANTIC_SUPERLATIVE_RE = re.compile(
    r"\b(most|least) (technical|sarcastic|positive|negative)\b",
    re.IGNORECASE,
)
_COUNT_REQUEST_RE = re.compile(
    r"\btop (\d+)\b|\bthe (\d+) most\b|\b(\d+) most\b|\bthe (\d+) least\b",
    re.IGNORECASE,
)

#: (keyword, scorer, threshold) for in-context semantic judgments; the
#: thresholds mirror repro.lm.concepts so the model is self-consistent.
_SEMANTIC_JUDGMENTS = (
    ("positive", sentiment_score, 0.05),
    ("negative", lambda text: -sentiment_score(text), 0.05),
    ("sarcastic", sarcasm_score, 0.4),
    ("technical", technicality_score, 0.3),
)
_TEXT_KEY_PREFERENCE = ("text", "title", "review", "body", "comment")


class AnswerHandler:
    def matches(self, prompt: str) -> bool:
        return prompt.startswith(
            (prompts.ANSWER_LIST_HEADER, prompts.ANSWER_FREEFORM_HEADER)
        )

    def handle(self, prompt: str, context: HandlerContext) -> str:
        records = _parse_data_points(prompt)
        question_match = _QUESTION_RE.search(prompt)
        question = (
            question_match.group(1).strip() if question_match else ""
        )
        if prompt.startswith(prompts.ANSWER_FREEFORM_HEADER):
            return _freeform_answer(question, records, context)
        return _list_answer(question, records, context)


def _parse_data_points(prompt: str) -> list[dict[str, str]]:
    records: list[dict[str, str]] = []
    current: dict[str, str] | None = None
    for line in prompt.splitlines():
        if _DATA_POINT_RE.match(line.strip()):
            current = {}
            records.append(current)
            continue
        if line.startswith("Question:"):
            break
        field = _FIELD_RE.match(line)
        if field and current is not None:
            current[field.group(1).strip()] = field.group(2)
    return records


# ---------------------------------------------------------------------------
# free-form (aggregation) answers
# ---------------------------------------------------------------------------


def _freeform_answer(
    question: str,
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    if not records:
        return _parametric_answer(question, context)
    lines = [
        "; ".join(f"{key}: {value}" for key, value in record.items())
        for record in records
    ]
    if len(records) <= context.reliable_rows:
        body = " ".join(
            line if line.endswith(".") else line + "." for line in lines
        )
        return (
            "Based on the given data points, the following information "
            f"is available: {body}"
        )
    summary = summarize_items(lines, max_sentences=6)
    return (
        "Based on the given data points, the following information is "
        f"available: {summary}"
    )


def _parametric_answer(question: str, context: HandlerContext) -> str:
    """No usable rows: answer from (fuzzy) parametric knowledge."""
    for fact in context.kb.facts_for_relation("grand_prix_name"):
        circuit = str(fact.subject)
        if circuit.lower() in question.lower():
            years = context.fuzzy.believed_race_years(circuit)
            gp_name = context.fuzzy.believe(
                "grand_prix_name", circuit, "a Grand Prix"
            )
            location = context.fuzzy.believe(
                "circuit_location", circuit, "an unknown location"
            )
            if years:
                return (
                    "The data points provided do not contain specific "
                    f"information about {circuit}. However, based on "
                    f"general knowledge, {circuit} is located in "
                    f"{location} and hosted the {gp_name} from "
                    f"{min(years)} to {max(years)}."
                )
    return (
        "The data points provided do not contain the information "
        "needed to answer the question."
    )


# ---------------------------------------------------------------------------
# list-format answers
# ---------------------------------------------------------------------------


def _list_answer(
    question: str,
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    if not records:
        return "[]"
    lowered = question.lower()
    if "how many" in lowered:
        return _count_answer(question, records, context)
    order_match = _ORDER_OF_RE.search(question)
    if order_match is not None:
        return _ranking_answer(question, order_match, records, context)
    semantic_match = _SEMANTIC_SUPERLATIVE_RE.search(question)
    if semantic_match is not None:
        return _semantic_superlative_answer(
            question, semantic_match, records, context
        )
    if _SUPERLATIVE_RE.search(question) is not None:
        return _superlative_answer(question, records, context)
    return _lookup_answer(question, records, context)


def _count_answer(
    question: str,
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    matching = [
        record
        for record in records
        if _record_satisfies(question, record, context)
    ]
    count = len(matching)
    if len(records) > context.reliable_rows:
        # Long-context arithmetic drift: deterministic signed error
        # whose magnitude grows with how far past the reliable window
        # the context extends.
        overflow = len(records) - context.reliable_rows
        magnitude = 1 + overflow // 10
        sign = 1 if _unit(context.seed, question, "count") < 0.5 else -1
        count = max(0, count + sign * magnitude)
    return f"[{count}]"


def _record_satisfies(
    question: str, record: dict[str, str], context: HandlerContext
) -> bool:
    """Evaluate the question's parseable conditions against one row."""
    keys = list(record)
    for pattern, greater in ((_GT_RE, True), (_LT_RE, False)):
        for match in pattern.finditer(question):
            phrase = _preceding_phrase(question, match.start())
            key = schema_semantics.match_record_key(phrase, keys)
            if key is None:
                continue
            value = _as_float(record.get(key))
            if value is None:
                return False
            bound = float(match.group(1))
            if greater and not value > bound:
                return False
            if not greater and not value < bound:
                return False
    text_key = _text_key(keys)
    if text_key is not None:
        text = record.get(text_key, "")
        for keyword, scorer, threshold in _SEMANTIC_JUDGMENTS:
            if re.search(
                rf"\b{keyword}\b", question, re.IGNORECASE
            ) and not noisy_threshold(
                scorer(text), threshold, 0.05, context.seed,
                keyword + text,
            ):
                return False
    taller = _TALLER_RE.search(question)
    if taller is not None:
        reference = context.fuzzy.believed_height_cm(
            taller.group(2).strip().rstrip("?.")
        )
        key = schema_semantics.match_record_key("height", keys)
        if reference is not None and key is not None:
            value = _as_float(record.get(key))
            if value is None:
                return False
            if taller.group(1) == "taller" and not value > reference:
                return False
            if taller.group(1) == "shorter" and not value < reference:
                return False
    return True


def _ranking_answer(
    question: str,
    order_match: re.Match[str],
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    criterion = order_match.group(2)
    ascending = (order_match.group(1) or "most ").strip() == "least"
    target_key = _answer_key(question, records)
    if target_key is None:
        return "[]"
    scored = [
        (
            criterion_score(
                criterion, record.get(target_key, ""), context.seed
            ),
            record.get(target_key, ""),
        )
        for record in records
    ]
    scored.sort(key=lambda pair: pair[0], reverse=not ascending)
    values = [value for _, value in scored]
    count_match = re.search(
        r"\btop (\d+)\b|\bthe (\d+) most\b|\b(\d+) most\b",
        question,
        re.IGNORECASE,
    )
    if count_match is not None:
        requested = int(next(filter(None, count_match.groups())))
        values = values[:requested]
    return _format_list(values)


def _text_key(keys: list[str]) -> str | None:
    """The record field most likely to hold free text."""
    for preference in _TEXT_KEY_PREFERENCE:
        for key in keys:
            if preference in key.lower():
                return key
    return None


def _semantic_superlative_answer(
    question: str,
    match: re.Match[str],
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    """'most sarcastic' / 'least technical' picks over the rows."""
    ascending = match.group(1).lower() == "least"
    criterion = match.group(2)
    keys = list(records[0])
    text_key = _text_key(keys)
    if text_key is None:
        return "[]"
    scored = sorted(
        records,
        key=lambda record: criterion_score(
            criterion, record.get(text_key, ""), context.seed
        ),
        reverse=not ascending,
    )
    requested = 1
    count_match = _COUNT_REQUEST_RE.search(question)
    if count_match is not None:
        requested = int(next(filter(None, count_match.groups())))
    target_key = _answer_key(question, records) or text_key
    values = [record.get(target_key, "") for record in scored[:requested]]
    return _format_list(values)


def _superlative_answer(
    question: str,
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    match = _SUPERLATIVE_RE.search(question)
    assert match is not None
    keyword = match.group(1).lower()
    ascending = keyword in ("lowest", "smallest", "minimum", "fewest")
    keys = list(records[0])
    phrase = question[match.end() : match.end() + 40]
    sort_key_name = schema_semantics.match_record_key(phrase, keys)
    candidates = [
        record
        for record in records
        if _record_satisfies(question, record, context)
    ] or records
    if sort_key_name is not None:
        candidates = sorted(
            candidates,
            key=lambda record: _as_float(record.get(sort_key_name)) or 0.0,
            reverse=not ascending,
        )
    best = candidates[0]
    target_key = _answer_key(question, records)
    if target_key is None:
        target_key = keys[0]
    return _format_list([best.get(target_key, "")])


def _lookup_answer(
    question: str,
    records: list[dict[str, str]],
    context: HandlerContext,
) -> str:
    target_key = _answer_key(question, records)
    if target_key is None:
        return "[]"
    candidates = [
        record
        for record in records
        if _record_satisfies(question, record, context)
    ]
    if not candidates:
        return "[]"
    values = [record.get(target_key, "") for record in candidates]
    seen: set[str] = set()
    unique: list[str] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return _format_list(unique)


def _answer_key(
    question: str, records: list[dict[str, str]]
) -> str | None:
    """Which record field the question asks for."""
    keys = list(records[0])
    match = re.search(
        r"(?:what (?:is|are) the|list (?:the |their )?)([\w ()-]{3,40}?)"
        r"(?: of| in| for| offered| with|\?|$)",
        question,
        re.IGNORECASE,
    )
    if match is not None:
        key = schema_semantics.match_record_key(match.group(1), keys)
        if key is not None:
            return key
    for phrase in re.findall(r"[A-Za-z ]{4,}", question):
        key = schema_semantics.match_record_key(phrase.strip(), keys)
        if key is not None:
            return key
    return keys[0] if keys else None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _preceding_phrase(question: str, position: int) -> str:
    return question[max(0, position - 40) : position]


def _as_float(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _format_list(values: list[str]) -> str:
    rendered: list[str] = []
    for value in values:
        as_number = _as_float(value)
        if as_number is not None and not value.strip().startswith("0"):
            rendered.append(value.strip())
        else:
            escaped = value.replace('"', '\\"')
            rendered.append(f'"{escaped}"')
    return "[" + ", ".join(rendered) + "]"


def _unit(seed: int, *parts: str) -> float:
    key = "|".join((str(seed),) + parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64
