"""Natural-language condition interpretation for the simulated LM.

When a semantic operator (or a UDF inside SQL) asks the LM a question
like *"Palo Alto is a city in the Silicon Valley region — true?"* or
*"rate how technical this title is"*, this module is what "understands"
the phrasing: a pattern bank maps condition text onto either a
world-knowledge relation (answered through the fuzzy KB view, so
marginal facts can be wrong) or a text-analysis capability (sentiment /
sarcasm / technicality / relevance, with boundary noise).

Everything is deterministic given (seed, condition text), mirroring a
temperature-0 LM: the same question always gets the same answer within
a run.
"""

from __future__ import annotations

import hashlib
import re

from repro.knowledge import FuzzyKnowledge
from repro.knowledge.movies import MOVIE_FACTS
from repro.text.sarcasm import sarcasm_score
from repro.text.sentiment import sentiment_score
from repro.text.similarity import jaccard_similarity
from repro.text.technicality import technicality_score
from repro.text.tokenize import content_tokens

# --------------------------------------------------------------------------
# deterministic noise
# --------------------------------------------------------------------------


def _unit(seed: int, *parts: str) -> float:
    key = "|".join((str(seed),) + tuple(part.lower() for part in parts))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def noisy_threshold(
    score: float,
    threshold: float,
    margin: float,
    seed: int,
    key: str,
) -> bool:
    """Threshold test with an uncertainty band.

    Outside ``threshold ± margin`` the judgment is deterministic; inside
    the band (a genuinely ambiguous item) the model resolves the call by
    a seeded coin weighted by where the score sits in the band — the
    mechanism behind residual TAG errors on borderline reasoning items.
    """
    if score >= threshold + margin:
        return True
    if score <= threshold - margin:
        return False
    lean = (score - (threshold - margin)) / (2 * margin)
    return _unit(seed, "judge", key) < lean


# --------------------------------------------------------------------------
# condition patterns
# --------------------------------------------------------------------------

_CITY_REGIONS = (
    "silicon valley|bay area|southern california|central valley"
)
_REGION_RE = re.compile(
    r"^(?P<city>.+?) is a city in (?:the )?['\"]?(?P<region>"
    + _CITY_REGIONS
    + r")['\"]?(?: region)?[.?]?$",
    re.IGNORECASE,
)
_REGION_PART_RE = re.compile(
    r"^(?P<city>.+?) is (?:part of|located in|in) (?:the )?"
    r"['\"]?(?P<region>" + _CITY_REGIONS + r")['\"]?"
    r"(?: region| area)?[.?]?$",
    re.IGNORECASE,
)
_EURO_RE = re.compile(
    r"^(?P<country>.+?) (?:uses the euro|is in the eurozone"
    r"|is a eurozone country)[.?]?$",
    re.IGNORECASE,
)
_EU_RE = re.compile(
    r"^(?P<country>.+?) is (?:a member of|in) the (?:EU|European Union)"
    r"[.?]?$",
    re.IGNORECASE,
)
_BIG_FIVE_RE = re.compile(
    r"^(?P<league>.+?) is one of (?:Europe's |the )?"
    r"['\"]?big five['\"]? (?:football )?leagues[.?]?$",
    re.IGNORECASE,
)
_UK_RE = re.compile(
    r"^(?P<country>.+?) is (?:part of|in) the (?:UK|United Kingdom)[.?]?$",
    re.IGNORECASE,
)
_STREET_RE = re.compile(
    r"^(?P<circuit>.+?) is a (?:temporary )?street circuit[.?]?$",
    re.IGNORECASE,
)
_CIRCUIT_REGION_RE = re.compile(
    r"^(?P<circuit>.+?) is (?:a circuit )?(?:located |based )?in "
    r"(?P<region>southeast asia|east asia|europe|north america"
    r"|south america|middle east|oceania|asia)[.?]?$",
    re.IGNORECASE,
)
_TALLER_RE = re.compile(
    r"^(?:a player (?:with height|who is) )?(?P<height>\d+(?:\.\d+)?)\s*"
    r"(?:cm )?is taller than (?P<person>.+?)[.?]?$",
    re.IGNORECASE,
)
_SHORTER_RE = re.compile(
    r"^(?:a player (?:with height|who is) )?(?P<height>\d+(?:\.\d+)?)\s*"
    r"(?:cm )?is shorter than (?P<person>.+?)[.?]?$",
    re.IGNORECASE,
)
_NATIONALITY_RE = re.compile(
    r"^(?P<driver>.+?) is (?:a )?(?P<nationality>[A-Za-z]+)"
    r"(?: driver| national)?[.?]?$",
    re.IGNORECASE,
)
_CLASSIC_MOVIE_RE = re.compile(
    r"^(?:the (?:movie|film) )?['\"]?(?P<title>.+?)['\"]? is "
    r"(?:considered )?a ['\"]?classic['\"]?(?: film| movie)?[.?]?$",
    re.IGNORECASE,
)
_VERTICAL_RE = re.compile(
    r"^(?P<company>.+?) is (?:in|part of) the ['\"]?"
    r"(?P<vertical>[a-z]+)['\"]? vertical[.?]?$",
    re.IGNORECASE,
)
_CURRENCY_RE = re.compile(
    r"^(?P<code>[A-Z]{3}) is the currency (?:of|used in) "
    r"(?P<country>.+?)[.?]?$",
    re.IGNORECASE,
)
_SENTIMENT_POSITIVE_RE = re.compile(
    r"^the (?:review|comment|text) ['\"](?P<text>.*)['\"] is positive[.?]?$",
    re.IGNORECASE | re.DOTALL,
)
_SENTIMENT_NEGATIVE_RE = re.compile(
    r"^the (?:review|comment|text) ['\"](?P<text>.*)['\"] is negative[.?]?$",
    re.IGNORECASE | re.DOTALL,
)
_SARCASTIC_RE = re.compile(
    r"^the (?:comment|text|post) ['\"](?P<text>.*)['\"] is sarcastic[.?]?$",
    re.IGNORECASE | re.DOTALL,
)
_TECHNICAL_RE = re.compile(
    r"^the (?:title|text|post) ['\"](?P<text>.*)['\"] is "
    r"(?:highly )?technical[.?]?$",
    re.IGNORECASE | re.DOTALL,
)

_CLASSIC_MOVIES = {
    title.lower(): (classic, confidence)
    for title, _, _, _, classic, confidence in MOVIE_FACTS
}

#: Ambiguity half-width for text-scorer thresholds (set to 0 for an
#: oracle judge in tests).
TEXT_MARGIN = 0.04

#: Amplitude of per-item jitter on graded ranking judgments.
RANK_JITTER = 0.25

#: Score margin under which pairwise comparisons become coin flips.
PAIR_MARGIN = 0.25


def judge(condition: str, fuzzy: FuzzyKnowledge, seed: int) -> bool:
    """Boolean LM judgment of a filled-in natural-language condition."""
    condition = condition.strip()

    match = _REGION_RE.match(condition) or _REGION_PART_RE.match(condition)
    if match:
        return fuzzy.believes_in_region(
            match.group("city").strip(), match.group("region").strip()
        )
    match = _EURO_RE.match(condition)
    if match:
        return fuzzy.believed_uses_euro(match.group("country").strip())
    match = _EU_RE.match(condition)
    if match:
        return bool(
            fuzzy.believe("in_eu", match.group("country").strip(), False)
        )
    match = _BIG_FIVE_RE.match(condition)
    if match:
        return bool(
            fuzzy.believe(
                "big_five_league", match.group("league").strip(), False
            )
        )
    match = _UK_RE.match(condition)
    if match:
        return bool(
            fuzzy.believe(
                "uk_home_nation", match.group("country").strip(), False
            )
        )
    match = _STREET_RE.match(condition)
    if match:
        return bool(
            fuzzy.believe(
                "street_circuit", match.group("circuit").strip(), False
            )
        )
    match = _CIRCUIT_REGION_RE.match(condition)
    if match:
        believed = fuzzy.believe(
            "circuit_region", match.group("circuit").strip()
        )
        return (
            believed is not None
            and believed == match.group("region").strip().lower()
        )
    match = _TALLER_RE.match(condition)
    if match:
        reference = fuzzy.believed_height_cm(match.group("person").strip())
        if reference is None:
            return False
        return float(match.group("height")) > reference
    match = _SHORTER_RE.match(condition)
    if match:
        reference = fuzzy.believed_height_cm(match.group("person").strip())
        if reference is None:
            return False
        return float(match.group("height")) < reference
    match = _VERTICAL_RE.match(condition)
    if match:
        believed = fuzzy.believe(
            "company_vertical", match.group("company").strip()
        )
        return (
            believed is not None
            and str(believed).lower()
            == match.group("vertical").strip().lower()
        )
    match = _CURRENCY_RE.match(condition)
    if match:
        believed = fuzzy.believe(
            "currency", match.group("country").strip()
        )
        return (
            believed is not None
            and str(believed).upper() == match.group("code").upper()
        )
    match = _CLASSIC_MOVIE_RE.match(condition)
    if match:
        title = match.group("title").strip().lower()
        entry = _CLASSIC_MOVIES.get(title)
        if entry is None:
            return False
        classic, confidence = entry
        if _unit(seed, "classic", title) < 1.0 - confidence:
            return not classic
        return classic
    match = _SENTIMENT_POSITIVE_RE.match(condition)
    if match:
        score = sentiment_score(match.group("text"))
        return noisy_threshold(score, 0.05, TEXT_MARGIN, seed, condition)
    match = _SENTIMENT_NEGATIVE_RE.match(condition)
    if match:
        score = -sentiment_score(match.group("text"))
        return noisy_threshold(score, 0.05, TEXT_MARGIN, seed, condition)
    match = _SARCASTIC_RE.match(condition)
    if match:
        score = sarcasm_score(match.group("text"))
        return noisy_threshold(score, 0.4, TEXT_MARGIN, seed, condition)
    match = _TECHNICAL_RE.match(condition)
    if match:
        score = technicality_score(match.group("text"))
        return noisy_threshold(score, 0.3, TEXT_MARGIN, seed, condition)
    match = _NATIONALITY_RE.match(condition)
    if match:
        believed = fuzzy.believe(
            "driver_nationality", match.group("driver").strip()
        )
        if believed is not None:
            lowered = match.group("nationality").strip().lower()
            return str(believed).lower() == lowered
    # Unknown condition: the model guesses from lexical overlap, the way
    # an LM extrapolates from surface cues on out-of-distribution asks.
    return _lexical_guess(condition, seed)


def _lexical_guess(condition: str, seed: int) -> bool:
    words = content_tokens(condition)
    if not words:
        return False
    return _unit(seed, "guess", condition) < 0.25


# --------------------------------------------------------------------------
# graded judgments (ranking criteria, relevance)
# --------------------------------------------------------------------------

_CRITERION_SCORERS = (
    ("technical", technicality_score),
    ("sarcastic", sarcasm_score),
    ("positive", sentiment_score),
    ("negative", lambda text: -sentiment_score(text)),
    ("critical", lambda text: -sentiment_score(text)),
    ("enthusiastic", sentiment_score),
)


def score(criterion: str, item: str, seed: int) -> float:
    """Graded LM judgment of ``item`` against a ranking ``criterion``.

    A small deterministic jitter models the LM's inconsistency on near-
    ties (the paper notes ranking is TAG's weakest query type because
    exact ordering is hard).
    """
    lowered = criterion.lower()
    base = 0.0
    recognised = False
    for keyword, scorer in _CRITERION_SCORERS:
        if keyword in lowered:
            base = scorer(item)
            recognised = True
            break
    if not recognised:
        base = jaccard_similarity(criterion, item)
    jitter = (_unit(seed, "rank", criterion, item) - 0.5) * RANK_JITTER
    return base + jitter


def compare(criterion: str, left: str, right: str, seed: int) -> bool:
    """Pairwise LM comparison: does ``left`` beat ``right``?

    Real LM comparators are *inconsistent on near-ties*: when two items
    score within a small margin, the call is resolved by a seeded coin
    keyed to the (unordered) pair.  This is the mechanism that makes
    exact top-k ordering the hardest part of ranking queries (§4.3).
    """
    left_score = score(criterion, left, seed)
    right_score = score(criterion, right, seed)
    margin = PAIR_MARGIN
    if abs(left_score - right_score) >= margin:
        return left_score >= right_score
    first, second = sorted((left, right))
    flip = _unit(seed, "pair", criterion, first, second) < 0.5
    return flip if left == first else not flip


def relevance(query: str, document: str, seed: int) -> float:
    """Relevance in [0, 1] of ``document`` to ``query`` (reranking)."""
    base = jaccard_similarity(query, document)
    jitter = (_unit(seed, "relevance", query, document) - 0.5) * 0.1
    return max(0.0, min(1.0, base + jitter))
