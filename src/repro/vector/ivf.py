"""Inverted-file (IVF) approximate kNN index.

Clusters the corpus with seeded k-means (Lloyd's algorithm) and probes
only the ``nprobe`` closest clusters at query time — the classic
FAISS ``IndexIVFFlat`` trade-off between recall and latency, which the
vector-index ablation benchmark sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class IVFIndex:
    def __init__(
        self,
        dimensions: int,
        n_clusters: int = 16,
        nprobe: int = 2,
        seed: int = 0,
        kmeans_iterations: int = 10,
    ) -> None:
        if dimensions <= 0 or n_clusters <= 0 or nprobe <= 0:
            raise ReproError(
                "dimensions, n_clusters, and nprobe must be positive"
            )
        self.dimensions = dimensions
        self.n_clusters = n_clusters
        self.nprobe = min(nprobe, n_clusters)
        self._seed = seed
        self._iterations = kmeans_iterations
        self._centroids: np.ndarray | None = None
        self._vectors = np.zeros((0, dimensions), dtype=np.float64)
        self._assignments = np.zeros(0, dtype=np.int64)
        self._lists: list[list[int]] = []

    def __len__(self) -> int:
        return self._vectors.shape[0]

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, vectors: np.ndarray) -> None:
        """Fit cluster centroids with seeded k-means.

        Retraining an index that already holds vectors reassigns every
        stored vector to the new centroids, so no stored row becomes
        unreachable: ``len(index)`` and the probe-reachable set stay in
        agreement (previously retraining cleared the inverted lists but
        kept the vectors, stranding them where no probe could return
        them).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] < self.n_clusters:
            raise ReproError(
                f"need at least {self.n_clusters} training vectors, "
                f"got {vectors.shape[0]}"
            )
        rng = np.random.default_rng(self._seed)
        choice = rng.choice(
            vectors.shape[0], size=self.n_clusters, replace=False
        )
        centroids = vectors[choice].copy()
        for _ in range(self._iterations):
            distances = _pairwise_sq_distances(vectors, centroids)
            labels = np.argmin(distances, axis=1)
            for cluster in range(self.n_clusters):
                members = vectors[labels == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        self._centroids = centroids
        self._lists = [[] for _ in range(self.n_clusters)]
        if len(self):
            stored = np.argmin(
                _pairwise_sq_distances(self._vectors, centroids), axis=1
            ).astype(np.int64)
            self._assignments = stored
            for row, label in enumerate(stored):
                self._lists[int(label)].append(row)

    def add(self, vectors: np.ndarray) -> None:
        if not self.is_trained:
            raise ReproError("IVFIndex must be trained before add()")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dimensions:
            raise ReproError(
                f"expected dimension {self.dimensions}, "
                f"got {vectors.shape[1]}"
            )
        start = len(self)
        distances = _pairwise_sq_distances(vectors, self._centroids)
        labels = np.argmin(distances, axis=1)
        self._vectors = np.vstack([self._vectors, vectors])
        self._assignments = np.concatenate(
            [self._assignments, labels.astype(np.int64)]
        )
        for offset, label in enumerate(labels):
            self._lists[int(label)].append(start + offset)

    def search(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` (indices, scores) by inner product."""
        if not self.is_trained or len(self) == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        centroid_scores = self._centroids @ query
        probe = np.argsort(-centroid_scores, kind="stable")[: self.nprobe]
        candidates: list[int] = []
        for cluster in probe:
            candidates.extend(self._lists[int(cluster)])
        if not candidates:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        candidate_ids = np.asarray(candidates, dtype=np.int64)
        scores = self._vectors[candidate_ids] @ query
        k = min(k, len(candidate_ids))
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        return candidate_ids[order], scores[order]


def _pairwise_sq_distances(
    points: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Squared Euclidean distances, shape (n_points, n_centers)."""
    point_norms = (points**2).sum(axis=1, keepdims=True)
    center_norms = (centers**2).sum(axis=1)
    return point_norms - 2.0 * points @ centers.T + center_norms
