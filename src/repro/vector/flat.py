"""Exact (brute-force) inner-product kNN index."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class FlatIndex:
    """Exact nearest-neighbour search by inner product.

    Embeddings from :class:`~repro.embed.HashingEmbedder` are unit-norm,
    so inner product equals cosine similarity.  Equivalent to FAISS's
    ``IndexFlatIP``, which the paper's RAG baseline builds over
    row-level embeddings.
    """

    def __init__(self, dimensions: int) -> None:
        if dimensions <= 0:
            raise ReproError("dimensions must be positive")
        self.dimensions = dimensions
        self._vectors = np.zeros((0, dimensions), dtype=np.float64)

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def add(self, vectors: np.ndarray) -> None:
        """Append vectors (shape ``(n, dimensions)``)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dimensions:
            raise ReproError(
                f"expected dimension {self.dimensions}, "
                f"got {vectors.shape[1]}"
            )
        self._vectors = np.vstack([self._vectors, vectors])

    def search(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` (indices, scores) by inner product, best first."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dimensions:
            raise ReproError(
                f"query dimension {query.shape[0]} != {self.dimensions}"
            )
        if len(self) == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        scores = self._vectors @ query
        k = min(k, len(self))
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        return order.astype(np.int64), scores[order]

    def reconstruct(self, index: int) -> np.ndarray:
        return self._vectors[index].copy()
