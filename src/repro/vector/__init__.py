"""Vector similarity indexes (substitute for FAISS)."""

from repro.vector.flat import FlatIndex
from repro.vector.ivf import IVFIndex

__all__ = ["FlatIndex", "IVFIndex"]
