"""Builtin scalar/aggregate functions and the UDF registry.

The registry is the extension point that lets a language model run inside
SQL: registering a callable under a name such as ``LLM`` makes
``WHERE LLM('is a classic', movie_title) = 'yes'`` executable, the design
the paper's Figure 1 illustrates.  UDFs may be marked *expensive*, which
the optimizer uses to evaluate cheap relational predicates first so the
expensive LM predicate sees as few rows as possible.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.db.sql import ast
from repro.db.types import SQLValue, sort_key
from repro.errors import ExecutionError

ScalarFunction = Callable[..., SQLValue]

#: Vectorised form of a scalar UDF: one call over many argument tuples,
#: returning one result per tuple *in order*.  Must agree value-for-value
#: with the scalar form — the batched executor treats the scalar form as
#: the oracle and property tests enforce the equivalence.
BatchFunction = Callable[[Sequence[tuple[SQLValue, ...]]], Sequence[SQLValue]]


@dataclass
class AggregateSpec:
    """An aggregate as an initial state + fold + finalizer triple."""

    make_state: Callable[[], Any]
    step: Callable[[Any, SQLValue], Any]
    finish: Callable[[Any], SQLValue]


class FunctionRegistry:
    """Named scalar and aggregate functions, plus user-defined functions."""

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarFunction] = {}
        self._aggregates: dict[str, AggregateSpec] = {}
        self._expensive: set[str] = set()
        self._batch: dict[str, BatchFunction] = {}
        self._cheap: dict[str, ScalarFunction] = {}
        self._cheap_batch: dict[str, BatchFunction] = {}
        _register_builtin_scalars(self)
        _register_builtin_aggregates(self)

    # -- registration ----------------------------------------------------

    def register_scalar(
        self,
        name: str,
        function: ScalarFunction,
        expensive: bool = False,
        batch: BatchFunction | None = None,
        cheap: ScalarFunction | None = None,
        cheap_batch: BatchFunction | None = None,
    ) -> None:
        """Register a scalar function (UDF) under ``name``.

        ``expensive=True`` tags it for optimizer deferral (used for LM
        UDFs, whose per-row cost dwarfs relational predicates).

        ``batch`` optionally supplies a vectorised form: called with a
        list of argument tuples, it returns one result per tuple in
        order, and must agree value-for-value with ``function``.  The
        batched execution path (:class:`repro.db.plan.BatchedFilter` /
        ``BatchedProject``) dispatches one ``batch`` call per morsel of
        distinct argument tuples — for an LM UDF this is where per-row
        ``complete()`` turns into one ``complete_batch()``.  Without
        ``batch``, the batched path still deduplicates and memoizes but
        invokes ``function`` once per distinct tuple.

        ``cheap`` (and optional ``cheap_batch``) supply a *cheap
        classifier tier* for the cascade route: called with the same
        arguments as ``function``, it must return either the exact
        value ``function`` would return or ``None`` to escalate to the
        expensive tier.  Soundness is the registrant's contract — a
        cheap tier that disagrees with the expensive form changes query
        results.  Cheap-tier exceptions are treated as escalations, so
        a flaky cheap tier degrades cost, never correctness.
        """
        upper = name.upper()
        self._scalars[upper] = function
        if expensive:
            self._expensive.add(upper)
        if batch is not None:
            self._batch[upper] = batch
        if cheap is not None:
            self._cheap[upper] = cheap
        if cheap_batch is not None:
            self._cheap_batch[upper] = cheap_batch

    def register_aggregate(self, name: str, spec: AggregateSpec) -> None:
        self._aggregates[name.upper()] = spec

    # -- lookup ----------------------------------------------------------

    def scalar(self, name: str) -> ScalarFunction:
        try:
            return self._scalars[name.upper()]
        except KeyError as exc:
            raise ExecutionError(f"unknown function {name!r}") from exc

    def has_scalar(self, name: str) -> bool:
        return name.upper() in self._scalars

    def aggregate(self, name: str) -> AggregateSpec:
        try:
            return self._aggregates[name.upper()]
        except KeyError as exc:
            raise ExecutionError(f"unknown aggregate {name!r}") from exc

    def is_aggregate(self, name: str) -> bool:
        return name.upper() in self._aggregates

    def is_expensive(self, name: str) -> bool:
        return name.upper() in self._expensive

    def batch_function(self, name: str) -> BatchFunction | None:
        """The registered vectorised form of ``name``, if any."""
        return self._batch.get(name.upper())

    def cheap_function(self, name: str) -> ScalarFunction | None:
        """The registered cheap-tier form of ``name``, if any."""
        return self._cheap.get(name.upper())

    def cheap_batch_function(self, name: str) -> BatchFunction | None:
        """The registered vectorised cheap-tier form, if any."""
        return self._cheap_batch.get(name.upper())

    def has_cheap(self, name: str) -> bool:
        """Whether ``name`` has a cheap cascade tier registered."""
        return name.upper() in self._cheap

    def contains_expensive(self, expression: ast.Expression) -> bool:
        """True when any expensive call appears anywhere in ``expression``.

        Walks the full tree — including CASE branches, COALESCE/IIF
        arguments, IN lists, and LIKE/BETWEEN operands — so a conjunct
        like ``COALESCE(LLM(x), 'no') = 'yes'`` is correctly deferred
        behind cheap relational predicates.  This is the single source
        of truth for expensive-conjunct detection; the planner and the
        static analyzer both defer to it.
        """
        return any(
            isinstance(node, ast.FunctionCall)
            and self.is_expensive(node.name)
            for node in ast.walk(expression)
        )


# ---------------------------------------------------------------------------
# Scalar builtins
# ---------------------------------------------------------------------------


def _null_if_any_null(function: ScalarFunction) -> ScalarFunction:
    def wrapped(*args: SQLValue) -> SQLValue:
        if any(arg is None for arg in args):
            return None
        return function(*args)

    return wrapped


def _substr(text: str, start: int, length: int | None = None) -> str:
    # SQL SUBSTR is 1-based; negative start counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    if length < 0:
        return ""
    return text[begin : begin + length]


def _round(value: float, digits: int = 0) -> float:
    # SQLite ROUND uses round-half-away-from-zero, not banker's rounding.
    factor = 10**digits
    scaled = value * factor
    rounded = math.floor(abs(scaled) + 0.5) * (1 if scaled >= 0 else -1)
    result = rounded / factor
    return float(result)


def _instr(haystack: str, needle: str) -> int:
    return haystack.find(needle) + 1


def _coalesce(*args: SQLValue) -> SQLValue:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left: SQLValue, right: SQLValue) -> SQLValue:
    return None if left == right else left


def _iif(condition: SQLValue, then: SQLValue, otherwise: SQLValue) -> SQLValue:
    return then if condition else otherwise


def _scalar_min(*args: SQLValue) -> SQLValue:
    if any(arg is None for arg in args):
        return None
    return min(args, key=sort_key)


def _scalar_max(*args: SQLValue) -> SQLValue:
    if any(arg is None for arg in args):
        return None
    return max(args, key=sort_key)


def _register_builtin_scalars(registry: FunctionRegistry) -> None:
    register = registry.register_scalar
    register("ABS", _null_if_any_null(abs))
    register("ROUND", _null_if_any_null(_round))
    register("LENGTH", _null_if_any_null(lambda s: len(str(s))))
    register("UPPER", _null_if_any_null(lambda s: str(s).upper()))
    register("LOWER", _null_if_any_null(lambda s: str(s).lower()))
    register("TRIM", _null_if_any_null(lambda s: str(s).strip()))
    register("LTRIM", _null_if_any_null(lambda s: str(s).lstrip()))
    register("RTRIM", _null_if_any_null(lambda s: str(s).rstrip()))
    register(
        "REPLACE",
        _null_if_any_null(lambda s, old, new: str(s).replace(old, new)),
    )
    register("SUBSTR", _null_if_any_null(_substr))
    register("SUBSTRING", _null_if_any_null(_substr))
    register("INSTR", _null_if_any_null(_instr))
    register("COALESCE", _coalesce)
    register("IFNULL", _coalesce)
    register("NULLIF", _nullif)
    register("IIF", _iif)
    register("SQRT", _null_if_any_null(math.sqrt))
    register("FLOOR", _null_if_any_null(lambda v: float(math.floor(v))))
    register("CEIL", _null_if_any_null(lambda v: float(math.ceil(v))))
    register("SIGN", _null_if_any_null(lambda v: (v > 0) - (v < 0)))
    # Multi-argument MIN/MAX are scalar (SQLite semantics); the planner
    # routes single-argument MIN/MAX to the aggregate implementations.
    register("MIN", _scalar_min)
    register("MAX", _scalar_max)


# ---------------------------------------------------------------------------
# Aggregate builtins
# ---------------------------------------------------------------------------


def _count_spec() -> AggregateSpec:
    def step(state: int, value: SQLValue) -> int:
        return state + (0 if value is None else 1)

    return AggregateSpec(lambda: 0, step, lambda state: state)


def _sum_spec(empty_result: SQLValue) -> AggregateSpec:
    def step(state: SQLValue, value: SQLValue) -> SQLValue:
        if value is None:
            return state
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM over non-numeric value {value!r}")
        return value if state is None else state + value

    def finish(state: SQLValue) -> SQLValue:
        return empty_result if state is None else state

    return AggregateSpec(lambda: None, step, finish)


def _avg_spec() -> AggregateSpec:
    def step(
        state: tuple[float, int], value: SQLValue
    ) -> tuple[float, int]:
        if value is None:
            return state
        total, count = state
        return total + float(value), count + 1

    def finish(state: tuple[float, int]) -> SQLValue:
        total, count = state
        return None if count == 0 else total / count

    return AggregateSpec(lambda: (0.0, 0), step, finish)


def _minmax_spec(pick_max: bool) -> AggregateSpec:
    def step(state: SQLValue, value: SQLValue) -> SQLValue:
        if value is None:
            return state
        if state is None:
            return value
        if pick_max:
            return value if sort_key(value) > sort_key(state) else state
        return value if sort_key(value) < sort_key(state) else state

    return AggregateSpec(lambda: None, step, lambda state: state)


def _group_concat_spec() -> AggregateSpec:
    def step(state: list[str], value: SQLValue) -> list[str]:
        if value is not None:
            state.append(str(value))
        return state

    def finish(state: list[str]) -> SQLValue:
        return None if not state else ",".join(state)

    return AggregateSpec(list, step, finish)


def _register_builtin_aggregates(registry: FunctionRegistry) -> None:
    registry.register_aggregate("COUNT", _count_spec())
    registry.register_aggregate("SUM", _sum_spec(empty_result=None))
    registry.register_aggregate("TOTAL", _sum_spec(empty_result=0.0))
    registry.register_aggregate("AVG", _avg_spec())
    registry.register_aggregate("MIN", _minmax_spec(pick_max=False))
    registry.register_aggregate("MAX", _minmax_spec(pick_max=True))
    registry.register_aggregate("GROUP_CONCAT", _group_concat_spec())
