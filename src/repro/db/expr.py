"""Expression compilation: AST expression -> callable over a row tuple.

Expressions are compiled once at plan time into nested closures, so
per-row evaluation does no AST walking.  SQL three-valued logic is
implemented throughout: comparisons involving NULL yield NULL, AND/OR
short-circuit per Kleene logic, and WHERE treats NULL as false (the
executor applies ``is_true`` to predicate results).
"""

from __future__ import annotations

import re
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.db import types as dbtypes
from repro.db.result import RowLayout
from repro.db.sql import ast
from repro.db.types import SQLValue
from repro.errors import ExecutionError, PlanningError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.functions import FunctionRegistry
    from repro.db.planner import Planner

Row = tuple[SQLValue, ...]
Evaluator = Callable[[Row], SQLValue]


def is_true(value: SQLValue) -> bool:
    """WHERE-clause truthiness: NULL and false are both rejections."""
    return value is not None and bool(value)


class ExpressionCompiler:
    """Compiles expressions against one row layout.

    ``subquery_planner`` is consulted lazily for subquery expressions;
    subquery results are computed on first use and cached, so an
    uncorrelated ``IN (SELECT ...)`` executes its inner query once.

    ``call_overrides`` maps :class:`~repro.db.sql.ast.FunctionCall`
    nodes (by structural equality) to pre-built evaluators; the batched
    UDF path uses it to splice memo lookups in place of expensive calls
    while the rest of the expression compiles normally.
    """

    def __init__(
        self,
        layout: RowLayout,
        functions: "FunctionRegistry",
        subquery_planner: "Planner | None" = None,
        call_overrides: "dict[ast.FunctionCall, Evaluator] | None" = None,
    ) -> None:
        self._layout = layout
        self._functions = functions
        self._subquery_planner = subquery_planner
        self._call_overrides = call_overrides

    def compile(self, expression: ast.Expression) -> Evaluator:
        method_name = "_compile_" + type(expression).__name__.lower()
        method = getattr(self, method_name, None)
        if method is None:
            raise PlanningError(
                f"unsupported expression node {type(expression).__name__}"
            )
        return method(expression)

    # -- leaves ------------------------------------------------------------

    def _compile_literal(self, node: ast.Literal) -> Evaluator:
        value = node.value
        return lambda row: value

    def _compile_columnref(self, node: ast.ColumnRef) -> Evaluator:
        position = self._layout.resolve(node.name, node.table)
        return lambda row: row[position]

    def _compile_star(self, node: ast.Star) -> Evaluator:
        raise PlanningError("'*' is only valid in SELECT items or COUNT(*)")

    # -- operators ----------------------------------------------------------

    def _compile_unaryop(self, node: ast.UnaryOp) -> Evaluator:
        operand = self.compile(node.operand)
        if node.op == "NOT":

            def negate(row: Row) -> SQLValue:
                value = operand(row)
                if value is None:
                    return None
                return not bool(value)

            return negate
        if node.op == "-":

            def minus(row: Row) -> SQLValue:
                value = operand(row)
                if value is None:
                    return None
                if not isinstance(value, (int, float)):
                    raise ExecutionError(f"cannot negate {value!r}")
                return -value

            return minus
        if node.op == "+":
            return operand
        raise PlanningError(f"unknown unary operator {node.op!r}")

    def _compile_binaryop(self, node: ast.BinaryOp) -> Evaluator:
        if node.op == "AND":
            return self._compile_and(node)
        if node.op == "OR":
            return self._compile_or(node)
        left = self.compile(node.left)
        right = self.compile(node.right)
        if node.op in ("+", "-", "*", "/", "%"):
            return _arithmetic(node.op, left, right)
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison(node.op, left, right)
        if node.op == "||":

            def concat(row: Row) -> SQLValue:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                return _to_text(lhs) + _to_text(rhs)

            return concat
        raise PlanningError(f"unknown binary operator {node.op!r}")

    def _compile_and(self, node: ast.BinaryOp) -> Evaluator:
        left = self.compile(node.left)
        right = self.compile(node.right)

        def evaluate(row: Row) -> SQLValue:
            lhs = left(row)
            if lhs is not None and not lhs:
                return False
            rhs = right(row)
            if rhs is not None and not rhs:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return evaluate

    def _compile_or(self, node: ast.BinaryOp) -> Evaluator:
        left = self.compile(node.left)
        right = self.compile(node.right)

        def evaluate(row: Row) -> SQLValue:
            lhs = left(row)
            if lhs is not None and lhs:
                return True
            rhs = right(row)
            if rhs is not None and rhs:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return evaluate

    # -- functions -----------------------------------------------------------

    def _compile_functioncall(self, node: ast.FunctionCall) -> Evaluator:
        if self._call_overrides is not None:
            override = self._call_overrides.get(node)
            if override is not None:
                return override
        if self._functions.is_aggregate(node.name) and not (
            self._functions.has_scalar(node.name) and len(node.args) > 1
        ):
            raise PlanningError(
                f"aggregate {node.name}() is not allowed here"
            )
        function = self._functions.scalar(node.name)
        argument_evaluators = [self.compile(arg) for arg in node.args]

        def call(row: Row) -> SQLValue:
            arguments = [evaluate(row) for evaluate in argument_evaluators]
            try:
                return function(*arguments)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"error in function {node.name}: {exc}"
                ) from exc

        return call

    # -- conditionals ----------------------------------------------------------

    def _compile_caseexpression(self, node: ast.CaseExpression) -> Evaluator:
        operand = self.compile(node.operand) if node.operand else None
        branches = [
            (self.compile(condition), self.compile(result))
            for condition, result in node.branches
        ]
        default = self.compile(node.default) if node.default else None

        def evaluate(row: Row) -> SQLValue:
            if operand is not None:
                subject = operand(row)
                for condition, result in branches:
                    if dbtypes.values_equal(subject, condition(row)):
                        return result(row)
            else:
                for condition, result in branches:
                    if is_true(condition(row)):
                        return result(row)
            return default(row) if default is not None else None

        return evaluate

    def _compile_castexpression(self, node: ast.CastExpression) -> Evaluator:
        operand = self.compile(node.operand)
        target = dbtypes.DataType.from_sql(node.type_name)

        def evaluate(row: Row) -> SQLValue:
            value = operand(row)
            try:
                return dbtypes.coerce(value, target)
            except Exception:
                # SQLite-style lenient CAST: unparseable text becomes 0.
                if target in (
                    dbtypes.DataType.INTEGER,
                    dbtypes.DataType.REAL,
                ):
                    return 0
                return _to_text(value) if value is not None else None

        return evaluate

    # -- predicates ---------------------------------------------------------

    def _compile_inlist(self, node: ast.InList) -> Evaluator:
        operand = self.compile(node.operand)
        items = [self.compile(item) for item in node.items]

        def evaluate(row: Row) -> SQLValue:
            subject = operand(row)
            if subject is None:
                return None
            saw_null = False
            for item in items:
                value = item(row)
                if value is None:
                    saw_null = True
                elif dbtypes.values_equal(subject, value):
                    return not node.negated
            if saw_null:
                return None
            return node.negated

        return evaluate

    def _compile_betweenexpression(
        self, node: ast.BetweenExpression
    ) -> Evaluator:
        operand = self.compile(node.operand)
        lower = self.compile(node.lower)
        upper = self.compile(node.upper)

        def evaluate(row: Row) -> SQLValue:
            subject = operand(row)
            low, high = lower(row), upper(row)
            above = dbtypes.compare(subject, low)
            below = dbtypes.compare(subject, high)
            if above is None or below is None:
                return None
            inside = above >= 0 and below <= 0
            return inside != node.negated

        return evaluate

    def _compile_likeexpression(self, node: ast.LikeExpression) -> Evaluator:
        operand = self.compile(node.operand)
        pattern = self.compile(node.pattern)
        cache: dict[str, re.Pattern[str]] = {}

        def evaluate(row: Row) -> SQLValue:
            subject = operand(row)
            pattern_text = pattern(row)
            if subject is None or pattern_text is None:
                return None
            compiled = cache.get(pattern_text)
            if compiled is None:
                compiled = _like_to_regex(str(pattern_text))
                cache[pattern_text] = compiled
            matched = compiled.match(_to_text(subject)) is not None
            return matched != node.negated

        return evaluate

    def _compile_isnullexpression(
        self, node: ast.IsNullExpression
    ) -> Evaluator:
        operand = self.compile(node.operand)
        if node.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    # -- subqueries ---------------------------------------------------------

    def _subquery_values(self, select: ast.Select) -> Callable[[], list]:
        if self._subquery_planner is None:
            raise PlanningError("subqueries are not allowed here")
        planner = self._subquery_planner
        cache: list[list[Row]] = []

        def fetch() -> list[Row]:
            if not cache:
                result = planner.run_select(select)
                cache.append(result.rows)
            return cache[0]

        return fetch

    def _compile_insubquery(self, node: ast.InSubquery) -> Evaluator:
        operand = self.compile(node.operand)
        fetch = self._subquery_values(node.subquery)
        state: dict[str, object] = {}

        def evaluate(row: Row) -> SQLValue:
            subject = operand(row)
            if subject is None:
                return None
            if "values" not in state:
                rows = fetch()
                if rows and len(rows[0]) != 1:
                    raise ExecutionError(
                        "IN subquery must return exactly one column"
                    )
                values = {row_[0] for row_ in rows if row_[0] is not None}
                state["values"] = values
                state["saw_null"] = any(row_[0] is None for row_ in rows)
            values = state["values"]  # type: ignore[assignment]
            if _hashable(subject) and subject in values:  # type: ignore[operator]
                return not node.negated
            if state["saw_null"]:
                return None
            return node.negated

        return evaluate

    def _compile_existssubquery(
        self, node: ast.ExistsSubquery
    ) -> Evaluator:
        fetch = self._subquery_values(node.subquery)

        def evaluate(row: Row) -> SQLValue:
            exists = bool(fetch())
            return exists != node.negated

        return evaluate

    def _compile_scalarsubquery(self, node: ast.ScalarSubquery) -> Evaluator:
        fetch = self._subquery_values(node.subquery)

        def evaluate(row: Row) -> SQLValue:
            rows = fetch()
            if not rows:
                return None
            if len(rows[0]) != 1:
                raise ExecutionError(
                    "scalar subquery must return exactly one column"
                )
            return rows[0][0]

        return evaluate


# ---------------------------------------------------------------------------
# Batched UDF call sites
# ---------------------------------------------------------------------------

#: Memo key of one resolved UDF invocation: ``(FUNCTION, argument tuple)``.
MemoKey = tuple[str, tuple[SQLValue, ...]]

_UNRESOLVED = object()


class UDFCallError:
    """A memoized *failure*: re-raised whenever a row reads the slot.

    The batched path resolves distinct argument tuples ahead of row
    evaluation, so a failing call must be parked rather than raised at
    dispatch time — the per-row oracle path only raises when the first
    row carrying the failing arguments is actually evaluated, and the
    batched path must surface the identical error at the identical row.
    Failures are never written to the cross-statement cache.
    """

    __slots__ = ("error",)

    def __init__(self, error: Exception) -> None:
        self.error = error


class UDFCallSite:
    """One strict expensive-call site, compiled for batched execution.

    Holds the per-argument evaluators (cheap row expressions) and a
    statement-local memo of resolved keys.  ``evaluate`` is the
    residual-phase evaluator spliced into the surrounding expression
    via ``call_overrides``: it recomputes the key (argument evaluation
    is deterministic, so this matches the collect phase) and reads the
    memo.  Argument-evaluation errors deliberately re-raise *here*, in
    row order, exactly as the per-row path would.
    """

    __slots__ = (
        "name",
        "function",
        "batch_function",
        "cheap_function",
        "cheap_batch",
        "arg_evaluators",
        "memo",
    )

    def __init__(
        self,
        name: str,
        function: Callable[..., SQLValue],
        batch_function: Callable | None,
        arg_evaluators: list[Evaluator],
        cheap_function: Callable[..., SQLValue] | None = None,
        cheap_batch: Callable | None = None,
    ) -> None:
        self.name = name
        self.function = function
        self.batch_function = batch_function
        #: Cascade tier: a cheap classifier that either agrees with
        #: ``function`` or returns None to escalate (see
        #: ``FunctionRegistry.register_scalar``).  Consulted before the
        #: expensive dispatch in ``_resolve_morsel``; never memoizes
        #: errors, never changes results.
        self.cheap_function = cheap_function
        self.cheap_batch = cheap_batch
        self.arg_evaluators = arg_evaluators
        self.memo: dict[MemoKey, object] = {}

    def key(self, row: Row) -> MemoKey:
        return (
            self.name,
            tuple(evaluate(row) for evaluate in self.arg_evaluators),
        )

    def evaluate(self, row: Row) -> SQLValue:
        value = self.memo.get(self.key(row), _UNRESOLVED)
        if value is _UNRESOLVED:
            raise ExecutionError(
                f"internal: uncollected batched call to {self.name}"
            )
        if isinstance(value, UDFCallError):
            raise value.error
        return value  # type: ignore[return-value]

    def call_scalar(self, args: tuple[SQLValue, ...]) -> object:
        """Invoke the scalar form, parking errors per the oracle contract."""
        try:
            return self.function(*args)
        except ExecutionError as exc:
            return UDFCallError(exc)
        except Exception as exc:
            return UDFCallError(
                ExecutionError(f"error in function {self.name}: {exc}")
            )


def strict_expensive_calls(
    expression: ast.Expression, functions: "FunctionRegistry"
) -> list[ast.FunctionCall]:
    """Expensive calls evaluated *unconditionally* for every row.

    Walks only the edges the compiled evaluators traverse eagerly, so a
    call the per-row path might skip (the right side of AND/OR, CASE
    branches past the first WHEN, IN-list items) is never pre-executed
    by the batched path — pre-executing it could change results, error
    behaviour, or LM accounting.  Returned in post-order (inner calls
    before the calls that consume them) with structural duplicates
    removed, which is exactly the dispatch order the batched operators
    need for nested LM UDFs.
    """
    found: list[ast.FunctionCall] = []

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.FunctionCall):
            if functions.is_aggregate(node.name) and not (
                functions.has_scalar(node.name) and len(node.args) > 1
            ):
                return  # aggregate shape: rewritten away before compile
            for arg in node.args:
                visit(arg)
            if functions.is_expensive(node.name) and node not in found:
                found.append(node)
        elif isinstance(node, ast.BinaryOp):
            visit(node.left)
            if node.op not in ("AND", "OR"):  # right side short-circuits
                visit(node.right)
        elif isinstance(node, ast.UnaryOp):
            visit(node.operand)
        elif isinstance(node, ast.CaseExpression):
            # The operand and the first WHEN condition always run; later
            # conditions, THEN results, and ELSE are conditional.
            if node.operand is not None:
                visit(node.operand)
            if node.branches:
                visit(node.branches[0][0])
        elif isinstance(node, ast.CastExpression):
            visit(node.operand)
        elif isinstance(node, ast.BetweenExpression):
            visit(node.operand)
            visit(node.lower)
            visit(node.upper)
        elif isinstance(node, ast.LikeExpression):
            visit(node.operand)
            visit(node.pattern)
        elif isinstance(node, ast.IsNullExpression):
            visit(node.operand)
        elif isinstance(node, (ast.InList, ast.InSubquery)):
            visit(node.operand)  # items short-circuit on a NULL subject
        # Literal / ColumnRef / Star / EXISTS / scalar subquery: no
        # strict expression children.

    visit(expression)
    return found


def plan_batched_expressions(
    expressions: list[ast.Expression],
    layout: RowLayout,
    functions: "FunctionRegistry",
    subquery_planner: "Planner | None" = None,
    cascade: bool = False,
) -> tuple[list[UDFCallSite], list[Evaluator]]:
    """Compile ``expressions`` with shared batched UDF call sites.

    Extracts every strict expensive call across all expressions (so a
    ``LLM(...)`` repeated between SELECT items resolves once), builds a
    :class:`UDFCallSite` per distinct call, and compiles the residual
    expressions with the sites spliced in.  Site order is inner-before-
    outer, so a site's argument evaluators may reference earlier sites'
    memoized results (nested LM UDFs batch in waves).

    With ``cascade=True``, sites whose function has a registered cheap
    tier route each distinct argument tuple through it first; only
    tuples the cheap tier declines (returns None for) reach the
    expensive form.
    """
    calls: list[ast.FunctionCall] = []
    for expression in expressions:
        for call in strict_expensive_calls(expression, functions):
            if call not in calls:
                calls.append(call)
    overrides: dict[ast.FunctionCall, Evaluator] = {}
    sites: list[UDFCallSite] = []
    for call in calls:
        compiler = ExpressionCompiler(
            layout, functions, subquery_planner, call_overrides=dict(overrides)
        )
        site = UDFCallSite(
            call.name.upper(),
            functions.scalar(call.name),
            functions.batch_function(call.name),
            [compiler.compile(arg) for arg in call.args],
            cheap_function=(
                functions.cheap_function(call.name) if cascade else None
            ),
            cheap_batch=(
                functions.cheap_batch_function(call.name)
                if cascade
                else None
            ),
        )
        overrides[call] = site.evaluate
        sites.append(site)
    final = ExpressionCompiler(
        layout, functions, subquery_planner, call_overrides=overrides
    )
    return sites, [final.compile(expression) for expression in expressions]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _hashable(value: SQLValue) -> bool:
    try:
        hash(value)
        return True
    except TypeError:  # pragma: no cover - SQLValues are always hashable
        return False


def _to_text(value: SQLValue) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _arithmetic(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
    def evaluate(row: Row) -> SQLValue:
        lhs, rhs = left(row), right(row)
        if lhs is None or rhs is None:
            return None
        if not isinstance(lhs, (int, float)) or not isinstance(
            rhs, (int, float)
        ):
            raise ExecutionError(
                f"arithmetic on non-numeric values {lhs!r} {op} {rhs!r}"
            )
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                return None  # SQLite: division by zero yields NULL
            if isinstance(lhs, int) and isinstance(rhs, int):
                quotient = lhs / rhs
                return int(quotient) if quotient == int(quotient) else quotient
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                return None
            return lhs % rhs
        raise PlanningError(f"unknown arithmetic operator {op!r}")

    return evaluate


def _comparison(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
    def evaluate(row: Row) -> SQLValue:
        ordering = dbtypes.compare(left(row), right(row))
        if ordering is None:
            return None
        if op == "=":
            return ordering == 0
        if op == "<>":
            return ordering != 0
        if op == "<":
            return ordering < 0
        if op == "<=":
            return ordering <= 0
        if op == ">":
            return ordering > 0
        return ordering >= 0

    return evaluate


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    pieces: list[str] = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    return re.compile("^" + "".join(pieces) + "$", re.IGNORECASE | re.DOTALL)
