"""Query results: a row layout plus materialised rows."""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.types import SQLValue
from repro.errors import PlanningError

Row = tuple[SQLValue, ...]


class RowLayout:
    """Maps (binding, column) references to tuple positions.

    Each entry is a ``(binding, name)`` pair: ``binding`` is the table
    alias (or table name) a column came from, or ``None`` for computed
    columns.  Resolution is case-insensitive and detects ambiguity the
    way SQL requires (an unqualified name matching two bindings is an
    error).
    """

    def __init__(self, entries: list[tuple[str | None, str]]) -> None:
        self.entries = list(entries)
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for position, (binding, name) in enumerate(self.entries):
            lowered = name.lower()
            self._by_name.setdefault(lowered, []).append(position)
            if binding is not None:
                key = (binding.lower(), lowered)
                if key not in self._by_qualified:
                    self._by_qualified[key] = position

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def names(self) -> list[str]:
        return [name for _, name in self.entries]

    @property
    def bindings(self) -> set[str]:
        return {
            binding for binding, _ in self.entries if binding is not None
        }

    def resolve(self, name: str, table: str | None = None) -> int:
        """Position of a column reference; raises PlanningError."""
        if table is not None:
            key = (table.lower(), name.lower())
            if key in self._by_qualified:
                return self._by_qualified[key]
            raise PlanningError(f"unknown column {table}.{name}")
        positions = self._by_name.get(name.lower(), [])
        if not positions:
            raise PlanningError(f"unknown column {name!r}")
        if len(positions) > 1:
            # Distinct bindings exposing the same name are ambiguous;
            # duplicates within one binding never happen by construction.
            bindings = {self.entries[p][0] for p in positions}
            if len(bindings) > 1:
                raise PlanningError(f"ambiguous column {name!r}")
        return positions[0]

    def can_resolve(self, name: str, table: str | None = None) -> bool:
        try:
            self.resolve(name, table)
            return True
        except PlanningError:
            return False

    def positions_for_binding(self, binding: str) -> list[int]:
        lowered = binding.lower()
        return [
            position
            for position, (entry_binding, _) in enumerate(self.entries)
            if entry_binding is not None
            and entry_binding.lower() == lowered
        ]

    def rebind(self, binding: str) -> "RowLayout":
        """Layout exposing the same columns under a single new binding."""
        return RowLayout([(binding, name) for _, name in self.entries])

    @staticmethod
    def concat(left: "RowLayout", right: "RowLayout") -> "RowLayout":
        return RowLayout(left.entries + right.entries)


class ResultSet:
    """Materialised query output: column names and rows."""

    def __init__(self, columns: list[str], rows: list[Row]) -> None:
        self.columns = list(columns)
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column(self, name: str) -> list[SQLValue]:
        """Values of one output column by (case-insensitive) name."""
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.lower() == lowered:
                return [row[position] for row in self.rows]
        raise PlanningError(f"no result column {name!r}")

    def scalar(self) -> SQLValue:
        """The single value of a 1x1 result (None for an empty result)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, SQLValue]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet({self.columns!r}, {len(self.rows)} rows)"
