"""Planner: binds a parsed SELECT to the catalog and builds a plan tree.

The planner performs, in order:

1. FROM-tree construction (scans, subquery sources, joins),
2. ``*`` expansion against the source layout,
3. WHERE decomposition into conjuncts with optional *predicate pushdown*
   (each conjunct is applied at the deepest subtree whose layout can
   resolve all of its columns; never pushed into the right side of a
   LEFT join, which would change semantics),
4. equi-join detection (ON conjuncts of the form ``l.x = r.y`` become
   hash-join keys; the rest stay as a residual predicate),
5. aggregation planning: aggregate calls anywhere in the SELECT items,
   HAVING, or ORDER BY are collected, deduplicated, and computed by one
   Aggregate node; bare column references in an aggregate query are
   rewritten to a hidden FIRST() aggregate (SQLite-style leniency, which
   LM-generated SQL relies on),
6. HAVING, extended projection (items + extra ORDER BY expressions),
   sort, slice back to the item columns, DISTINCT, LIMIT/OFFSET.

*Expensive-predicate deferral*: conjuncts calling a UDF registered as
expensive (LM UDFs) are always applied after cheap relational conjuncts
at the same plan level, so the LM sees as few rows as possible.

Set ``optimize=False`` to disable pushdown/hash joins/index lookups; the
ablation benchmark compares both modes.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.db import plan as physical
from repro.db import types as dbtypes
from repro.db.expr import ExpressionCompiler, plan_batched_expressions
from repro.db.functions import AggregateSpec, FunctionRegistry
from repro.db.result import ResultSet, Row, RowLayout
from repro.db.shard import PartitionSpec, ShardContext
from repro.db.sql import ast
from repro.errors import PlanningError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.catalog import Database
    from repro.db.optimizer import QueryOptimizer

#: Dedup/replay ordinal for the (single) sharded projection stage; far
#: above any WHERE-conjunct ordinal so cache events replay in plan order.
_SHARD_PROJECT_ORDINAL = 1_000_000


def _first_spec() -> AggregateSpec:
    """Hidden aggregate capturing the first value seen in a group."""
    sentinel = object()

    def step(state: object, value: object) -> object:
        return value if state is sentinel else state

    def finish(state: object) -> object:
        return None if state is sentinel else state

    return AggregateSpec(lambda: sentinel, step, finish)


class Planner:
    def __init__(
        self,
        catalog: "Database",
        functions: FunctionRegistry,
        optimize: bool = True,
        udf_batch_size: int | None = None,
        udf_context: "physical.UDFExecContext | None" = None,
        optimizer: "QueryOptimizer | None" = None,
    ) -> None:
        self._catalog = catalog
        self._functions = functions
        self._optimize = optimize
        #: When set, expensive-UDF filters and projections become
        #: morsel-driven Batched* operators over morsels of this size.
        self._udf_batch_size = udf_batch_size
        self._udf_context = udf_context
        #: Cost-based optimizer for this statement: records decisions
        #: (reorder/pushdown rationale) and steers expensive-conjunct
        #: placement and the cascade route.  None under optimize=False.
        self._optimizer = optimizer
        #: The SELECT currently being planned, for the sharding
        #: eligibility rules; plan_select saves/restores both fields
        #: around recursion so subquery planning cannot clobber them.
        self._shard_select: ast.Select | None = None
        #: The Merge capping a freshly sharded WHERE region, while the
        #: projection step may still push expensive work into it.
        self._open_merge: physical.Merge | None = None

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_select(self, select: ast.Select) -> ResultSet:
        plan, names = self.plan_select(select)
        return ResultSet(names, list(plan.execute()))

    def plan_select(
        self, select: ast.Select
    ) -> tuple[physical.PlanNode, list[str]]:
        saved_select = self._shard_select
        saved_merge = self._open_merge
        self._shard_select = select
        self._open_merge = None
        try:
            return self._plan_select(select)
        finally:
            self._shard_select = saved_select
            self._open_merge = saved_merge

    def _plan_select(
        self, select: ast.Select
    ) -> tuple[physical.PlanNode, list[str]]:
        source = self._build_source(select.source)
        items = self._expand_stars(select.items, source.layout)
        conjuncts = _split_conjuncts(select.where)
        source = self._apply_where(source, conjuncts)

        group_by = list(select.group_by)
        has_aggregate = any(
            self._contains_aggregate(item.expression) for item in items
        )
        if select.having is not None:
            has_aggregate = has_aggregate or self._contains_aggregate(
                select.having
            )
        order_items = list(select.order_by)
        has_aggregate = has_aggregate or any(
            self._contains_aggregate(order.expression)
            for order in order_items
        )

        having = select.having
        if group_by or has_aggregate:
            source, items, having, order_items = self._plan_aggregation(
                source, items, group_by, having, order_items
            )
        elif having is not None:
            raise PlanningError("HAVING requires GROUP BY or aggregates")

        if having is not None:
            compiler = self._compiler(source.layout)
            source = physical.Filter(
                source, compiler.compile(having), label="having"
            )

        plan, names = self._plan_projection_and_order(
            source, items, order_items, select.distinct
        )
        plan = self._apply_limit(plan, select.limit, select.offset)
        return plan, names

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _build_source(
        self, source: ast.FromSource | None
    ) -> physical.PlanNode:
        if source is None:
            return physical.Values([()], RowLayout([]))
        if isinstance(source, ast.TableSource):
            table = self._catalog.table(source.name)
            return physical.Scan(table, source.binding)
        if isinstance(source, ast.SubquerySource):
            inner, names = self.plan_select(source.query)
            sliced = physical.Slice(inner, list(range(len(names))))
            sliced.layout = RowLayout(
                [(source.alias, name) for name in names]
            )
            return sliced
        if isinstance(source, ast.Join):
            return self._build_join(source)
        raise PlanningError(
            f"unsupported FROM source {type(source).__name__}"
        )

    def _build_join(self, join: ast.Join) -> physical.PlanNode:
        left = self._build_source(join.left)
        right = self._build_source(join.right)
        condition_conjuncts = _split_conjuncts(join.condition)
        if self._optimize and join.kind != "CROSS":
            return self._build_hash_or_loop_join(
                left, right, condition_conjuncts, join.kind
            )
        combined_layout = RowLayout.concat(left.layout, right.layout)
        compiler = self._compiler(combined_layout)
        condition = (
            compiler.compile(_and_all(condition_conjuncts))
            if condition_conjuncts
            else None
        )
        return physical.NestedLoopJoin(left, right, condition, join.kind)

    def _build_hash_or_loop_join(
        self,
        left: physical.PlanNode,
        right: physical.PlanNode,
        conjuncts: list[ast.Expression],
        kind: str,
    ) -> physical.PlanNode:
        left_keys: list[ast.Expression] = []
        right_keys: list[ast.Expression] = []
        residual: list[ast.Expression] = []
        for conjunct in conjuncts:
            pair = self._equi_key_pair(conjunct, left.layout, right.layout)
            if pair is None:
                residual.append(conjunct)
            else:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
        combined_layout = RowLayout.concat(left.layout, right.layout)
        combined_compiler = self._compiler(combined_layout)
        residual_evaluator = (
            combined_compiler.compile(_and_all(residual))
            if residual
            else None
        )
        if not left_keys:
            condition = (
                combined_compiler.compile(_and_all(conjuncts))
                if conjuncts
                else None
            )
            return physical.NestedLoopJoin(left, right, condition, kind)
        left_compiler = self._compiler(left.layout)
        right_compiler = self._compiler(right.layout)
        return physical.HashJoin(
            left,
            right,
            [left_compiler.compile(key) for key in left_keys],
            [right_compiler.compile(key) for key in right_keys],
            kind,
            residual_evaluator,
        )

    def _equi_key_pair(
        self,
        conjunct: ast.Expression,
        left_layout: RowLayout,
        right_layout: RowLayout,
    ) -> tuple[ast.Expression, ast.Expression] | None:
        """If ``conjunct`` is ``lhs = rhs`` splitting cleanly across the
        join inputs, return (left_key, right_key)."""
        if not (
            isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
        ):
            return None
        for first, second in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if self._resolvable(first, left_layout) and self._resolvable(
                second, right_layout
            ):
                return first, second
        return None

    # ------------------------------------------------------------------
    # WHERE / pushdown
    # ------------------------------------------------------------------

    def _apply_where(
        self, source: physical.PlanNode, conjuncts: list[ast.Expression]
    ) -> physical.PlanNode:
        if conjuncts and self._optimize:
            source, conjuncts = self._push_down(source, conjuncts)
        sharded = self._maybe_shard(source, conjuncts)
        if sharded is not None:
            return sharded
        return self._attach_filters(source, conjuncts)

    def _push_down(
        self, node: physical.PlanNode, conjuncts: list[ast.Expression]
    ) -> tuple[physical.PlanNode, list[ast.Expression]]:
        """Push conjuncts into join inputs where their columns resolve."""
        if isinstance(node, (physical.HashJoin, physical.NestedLoopJoin)):
            remaining: list[ast.Expression] = []
            left_push: list[ast.Expression] = []
            right_push: list[ast.Expression] = []
            for conjunct in conjuncts:
                side: physical.PlanNode | None = None
                if self._resolvable(conjunct, node.left.layout):
                    side = node.left
                elif node.kind != "LEFT" and self._resolvable(
                    conjunct, node.right.layout
                ):
                    side = node.right
                if side is None:
                    remaining.append(conjunct)
                    continue
                # An expensive (LM) conjunct goes wherever fewer rows
                # flow: a selective join means evaluating it above the
                # join costs fewer LM calls than below.
                if (
                    self._optimizer is not None
                    and self._is_expensive(conjunct)
                    and self._optimizer.hold_above_join(
                        conjunct, node, side
                    )
                ):
                    remaining.append(conjunct)
                elif side is node.left:
                    left_push.append(conjunct)
                else:
                    right_push.append(conjunct)
            if self._optimizer is not None:
                self._optimizer.note_cheap_pushdown(
                    sum(
                        1
                        for conjunct in left_push + right_push
                        if not self._is_expensive(conjunct)
                    ),
                    node,
                )
            if left_push:
                new_left, leftover = self._push_down(node.left, left_push)
                node.left = self._attach_filters(new_left, leftover)
            if right_push:
                new_right, leftover = self._push_down(
                    node.right, right_push
                )
                node.right = self._attach_filters(new_right, leftover)
            return node, remaining
        if isinstance(node, physical.Scan):
            return self._maybe_index_lookup(node, conjuncts)
        return node, conjuncts

    def _maybe_index_lookup(
        self, scan: physical.Scan, conjuncts: list[ast.Expression]
    ) -> tuple[physical.PlanNode, list[ast.Expression]]:
        """Turn one ``col = literal`` conjunct into an index lookup."""
        for position, conjunct in enumerate(conjuncts):
            point = self._point_predicate(conjunct, scan)
            if point is None:
                continue
            column, value = point
            if not scan.table.has_index(column):
                continue
            lookup = physical.IndexLookup(
                scan.table, scan.binding, column, value
            )
            rest = conjuncts[:position] + conjuncts[position + 1 :]
            return lookup, rest
        return scan, conjuncts

    def _point_predicate(
        self, conjunct: ast.Expression, scan: physical.Scan
    ) -> tuple[str, object] | None:
        if not (
            isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
        ):
            return None
        for ref, literal in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(ref, ast.ColumnRef)
                and isinstance(literal, ast.Literal)
                and literal.value is not None
                and scan.layout.can_resolve(ref.name, ref.table)
            ):
                return ref.name, literal.value
        return None

    def _attach_filters(
        self, node: physical.PlanNode, conjuncts: list[ast.Expression]
    ) -> physical.PlanNode:
        """Apply conjuncts as filters: cheap first, expensive (LM) last.

        With the optimizer disabled, conjuncts run in the order the
        query wrote them (one combined predicate), so a leading LM UDF
        really is evaluated on every row — the behaviour the UDF
        pushdown ablation measures.
        """
        if not conjuncts:
            return node
        if not self._optimize:
            compiler = self._compiler(node.layout)
            return physical.Filter(
                node, compiler.compile(_and_all(conjuncts)), label="where"
            )
        cheap = [c for c in conjuncts if not self._is_expensive(c)]
        expensive = [c for c in conjuncts if self._is_expensive(c)]
        if self._optimizer is not None:
            self._optimizer.note_reorder(cheap, expensive, node)
        compiler = self._compiler(node.layout)
        if cheap:
            node = physical.Filter(
                node, compiler.compile(_and_all(cheap)), label="where"
            )
        for conjunct in expensive:
            node = self._expensive_filter(node, conjunct)
        return node

    def _expensive_filter(
        self, node: physical.PlanNode, conjunct: ast.Expression
    ) -> physical.PlanNode:
        """One expensive conjunct: batched when enabled, per-row else.

        A conjunct whose expensive calls sit only in conditional
        positions (the right side of AND/OR, non-first CASE branches)
        has no strict call sites to batch; it falls back to the per-row
        oracle path, which preserves short-circuit semantics exactly.
        """
        if self._udf_batch_size is not None:
            sites, evaluators = plan_batched_expressions(
                [conjunct],
                node.layout,
                self._functions,
                self,
                cascade=self._cascade(),
            )
            if sites:
                return physical.BatchedFilter(
                    node,
                    evaluators[0],
                    sites,
                    self._udf_exec_context(),
                    self._udf_batch_size,
                    label="where[expensive]",
                )
        compiler = self._compiler(node.layout)
        return physical.Filter(
            node, compiler.compile(conjunct), label="where[expensive]"
        )

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def _maybe_shard(
        self, source: physical.PlanNode, conjuncts: list[ast.Expression]
    ) -> physical.PlanNode | None:
        """Plan the WHERE region as shard-parallel pipelines, when safe.

        Applies only to an optimized scan of a partitioned table whose
        statement has no subqueries and no streaming-prefix LIMIT, and
        whose expensive conjuncts (if any) ride the batched route —
        exactly the shapes where the exchange provably preserves rows,
        order, traces, and every shared counter (see
        :class:`repro.db.plan.Exchange`).  Returns None to fall back to
        the ordinary single-threaded plan.
        """
        if not self._optimize:
            return None
        if not isinstance(source, physical.Scan):
            return None
        spec = source.table.partition_spec
        if spec is None:
            return None
        select = self._shard_select
        if select is None:
            return None
        decline = self._shard_decline_reason(select, conjuncts)
        if decline is not None:
            if self._optimizer is not None:
                self._optimizer.note_shard_declined(source.table, decline)
            return None
        cheap = [c for c in conjuncts if not self._is_expensive(c)]
        expensive = [c for c in conjuncts if self._is_expensive(c)]
        survivors, prunable = self._prune_shards(spec, source, conjuncts)
        pruned = spec.shards - len(survivors)
        if not survivors:
            if self._optimizer is not None:
                self._optimizer.note_shard(
                    source.table, spec, 0, prunable, pruned
                )
            return physical.Values([], source.layout)
        if self._optimizer is not None:
            self._optimizer.note_reorder(cheap, expensive, source)
        pipelines: list[physical.PlanNode] = []
        contexts: list[ShardContext] = []
        for shard_id in survivors:
            pipeline, shard_context = self._shard_pipeline(
                source, spec, shard_id, cheap, expensive
            )
            if pipeline is None or shard_context is None:
                # The conjunct's expensive calls all sit in conditional
                # positions: no strict sites to batch, so sharding would
                # put per-row LM calls on shard threads.  Stay unsharded.
                if self._optimizer is not None:
                    self._optimizer.note_shard_declined(
                        source.table,
                        "expensive conjunct has no batchable call sites",
                    )
                return None
            pipelines.append(pipeline)
            contexts.append(shard_context)
        if self._optimizer is not None:
            self._optimizer.note_shard(
                source.table, spec, len(pipelines), prunable, pruned
            )
        exchange = physical.Exchange(
            pipelines,
            contexts,
            self._udf_exec_context(),
            self._catalog.shard_runtime,
        )
        merge = physical.Merge(exchange)
        self._open_merge = merge
        return merge

    def _shard_decline_reason(
        self, select: ast.Select, conjuncts: list[ast.Expression]
    ) -> str | None:
        for expression in _select_expressions(select):
            for node in ast.walk(expression, into_subqueries=True):
                if isinstance(
                    node,
                    (
                        ast.InSubquery,
                        ast.ExistsSubquery,
                        ast.ScalarSubquery,
                    ),
                ):
                    return "statement contains a subquery"
        if select.limit is not None and not select.order_by:
            # An un-ordered LIMIT is a streaming prefix: the unsharded
            # plan stops pulling (and stops calling the LM) after LIMIT
            # rows, while shards materialize their whole partitions.
            return "LIMIT without ORDER BY streams a prefix"
        if self._udf_batch_size is None and any(
            self._is_expensive(conjunct) for conjunct in conjuncts
        ):
            return "expensive conjuncts are pinned to the per-row route"
        return None

    def _shard_pipeline(
        self,
        source: physical.Scan,
        spec: PartitionSpec,
        shard_id: int,
        cheap: list[ast.Expression],
        expensive: list[ast.Expression],
    ) -> tuple[physical.PlanNode | None, ShardContext | None]:
        """One shard's pipeline, compiled fresh: evaluators and call
        sites hold per-shard state (memos, LIKE caches), so nothing
        compiled is ever shared across shard threads."""
        node: physical.PlanNode = physical.ShardScan(
            source.table, source.binding, spec, shard_id
        )
        shard_context = ShardContext()
        if cheap:
            compiler = self._compiler(node.layout)
            node = physical.ShardFilter(
                node, compiler.compile(_and_all(cheap)), label="where"
            )
        for ordinal, conjunct in enumerate(expensive):
            assert self._udf_batch_size is not None  # declined otherwise
            sites, evaluators = plan_batched_expressions(
                [conjunct],
                node.layout,
                self._functions,
                self,
                cascade=self._cascade(),
            )
            if not sites:
                return None, None
            node = physical.ShardBatchedFilter(
                node,
                evaluators[0],
                sites,
                shard_context,
                self._udf_batch_size,
                ordinal,
                label="where[expensive]",
            )
        return node, shard_context

    def _prune_shards(
        self,
        spec: PartitionSpec,
        scan: physical.Scan,
        conjuncts: list[ast.Expression],
    ) -> tuple[list[int], bool]:
        """(surviving shard ids, whether any conjunct was prunable).

        Equality and IN predicates on the partition key restrict which
        shards can hold matching rows; the conjunct still runs as an
        in-shard filter, so pruning is purely an execution saving.
        """
        survivors = set(range(spec.shards))
        prunable = False
        for conjunct in conjuncts:
            values = _partition_key_values(conjunct, spec, scan)
            if values is None:
                continue
            allowed = self._shards_for_values(spec, scan, values)
            if allowed is None:
                continue
            prunable = True
            survivors &= allowed
        return sorted(survivors), prunable

    def _shards_for_values(
        self,
        spec: PartitionSpec,
        scan: physical.Scan,
        values: list[object],
    ) -> set[int] | None:
        """Shards that could hold rows equal to any of ``values``.

        Literals are coerced to the key column's type first (the same
        canonicalization the partitioner applies to stored rows); a
        value that cannot be coerced makes the whole conjunct
        non-prunable rather than risking an over-prune.  NULL literals
        match no row under ``=``/``IN``, so they constrain to nothing.
        """
        schema = scan.table.schema
        dtype = schema.columns[schema.column_index(spec.column)].dtype
        allowed: set[int] = set()
        for value in values:
            if value is None:
                continue
            try:
                coerced = dbtypes.coerce(value, dtype)
            except Exception:
                return None
            allowed.add(spec.shard_of(coerced))
        return allowed

    def _shard_projection(
        self,
        source: physical.PlanNode,
        expressions: list[ast.Expression],
        layout: RowLayout,
    ) -> physical.PlanNode | None:
        """Push an expensive projection into an open shard region.

        Replaces each shard pipeline with a
        :class:`~repro.db.plan.ShardBatchedProject` over it, so
        projection LM morsels run shard-parallel and meet the other
        shards' batches at the flush barrier.  Cheap projections stay
        above the merge: there is nothing to overlap.
        """
        merge = self._open_merge
        if merge is None or source is not merge:
            return None
        if self._udf_batch_size is None:
            return None
        if not any(
            self._functions.contains_expensive(expression)
            for expression in expressions
        ):
            return None
        exchange = merge.child
        replacements: list[physical.PlanNode] = []
        for pipeline, shard_context in zip(
            exchange.shards, exchange.contexts
        ):
            sites, evaluators = plan_batched_expressions(
                expressions,
                pipeline.layout,
                self._functions,
                self,
                cascade=self._cascade(),
            )
            if not sites:
                return None  # conditional-only; project above the merge
            replacements.append(
                physical.ShardBatchedProject(
                    pipeline,
                    evaluators,
                    layout,
                    sites,
                    shard_context,
                    self._udf_batch_size,
                    _SHARD_PROJECT_ORDINAL,
                )
            )
        exchange.shards = replacements
        exchange.layout = layout
        merge.layout = layout
        self._open_merge = None
        return merge

    def _udf_exec_context(self) -> "physical.UDFExecContext":
        if self._udf_context is None:
            self._udf_context = physical.UDFExecContext()
        return self._udf_context

    def _cascade(self) -> bool:
        return (
            self._optimizer is not None and self._optimizer.cascade
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def _plan_aggregation(
        self,
        source: physical.PlanNode,
        items: list[ast.SelectItem],
        group_by: list[ast.Expression],
        having: ast.Expression | None,
        order_items: list[ast.OrderItem],
    ) -> tuple[
        physical.PlanNode,
        list[ast.SelectItem],
        ast.Expression | None,
        list[ast.OrderItem],
    ]:
        group_by = [
            self._resolve_positional(expr, items) for expr in group_by
        ]
        if having is not None:
            having = self._resolve_alias_refs(having, items)
        order_items = [
            ast.OrderItem(
                self._resolve_alias_refs(order.expression, items),
                order.ascending,
            )
            for order in order_items
        ]
        aggregate_calls: list[ast.FunctionCall] = []

        def collect(expression: ast.Expression) -> None:
            for node in _walk(expression):
                if self._is_aggregate_call(node) and (
                    node not in aggregate_calls
                ):
                    aggregate_calls.append(node)

        for item in items:
            collect(item.expression)
        if having is not None:
            collect(having)
        for order in order_items:
            collect(order.expression)

        # Bare (non-grouped) column refs become hidden FIRST() aggregates.
        bare_columns: list[ast.ColumnRef] = []

        def collect_bare(expression: ast.Expression) -> None:
            for node in _walk_outside_aggregates(
                expression, self._is_aggregate_call
            ):
                if (
                    isinstance(node, ast.ColumnRef)
                    and node not in group_by
                    and node not in bare_columns
                ):
                    bare_columns.append(node)

        for item in items:
            collect_bare(item.expression)
        if having is not None:
            collect_bare(having)
        for order in order_items:
            collect_bare(order.expression)
        # Anything matching a group-by expression textually is fine; a
        # genuinely bare column is served by FIRST (SQLite leniency).

        source_compiler = self._compiler(source.layout)
        group_evaluators = [
            source_compiler.compile(expr) for expr in group_by
        ]
        entries: list[tuple[str | None, str]] = []
        replacements: dict[ast.Expression, ast.ColumnRef] = {}
        for position, expr in enumerate(group_by):
            name = f"_group{position}"
            entries.append((None, name))
            replacements[expr] = ast.ColumnRef(name)
        calls: list[physical.AggregateCall] = []
        for position, call in enumerate(aggregate_calls):
            name = f"_agg{position}"
            entries.append((None, name))
            replacements[call] = ast.ColumnRef(name)
            argument = None
            if not call.star and call.args:
                argument = source_compiler.compile(call.args[0])
            calls.append(
                physical.AggregateCall(
                    self._functions.aggregate(call.name),
                    argument,
                    call.distinct,
                    call.name,
                )
            )
        for position, ref in enumerate(bare_columns):
            if ref in replacements:
                continue
            name = f"_bare{position}"
            entries.append((None, name))
            replacements[ref] = ast.ColumnRef(name)
            calls.append(
                physical.AggregateCall(
                    _first_spec(),
                    source_compiler.compile(ref),
                    False,
                    f"FIRST({ref.display()})",
                )
            )
        layout = RowLayout(entries)
        aggregate_node = physical.Aggregate(
            source, group_evaluators, calls, layout
        )

        def rewrite(expression: ast.Expression) -> ast.Expression:
            return _replace(expression, replacements)

        new_items = [
            ast.SelectItem(
                rewrite(item.expression),
                item.alias or _expression_name(item.expression),
            )
            for item in items
        ]
        new_having = rewrite(having) if having is not None else None
        new_order = [
            ast.OrderItem(rewrite(order.expression), order.ascending)
            for order in order_items
        ]
        return aggregate_node, new_items, new_having, new_order

    def _resolve_alias_refs(
        self, expression: ast.Expression, items: list[ast.SelectItem]
    ) -> ast.Expression:
        """Replace output-alias references (HAVING n > 2) with the
        aliased expression — SQLite-style leniency."""
        replacements: dict[ast.Expression, ast.Expression] = {}
        for node in _walk(expression):
            if (
                isinstance(node, ast.ColumnRef)
                and node.table is None
            ):
                for item in items:
                    if item.alias and item.alias.lower() == (
                        node.name.lower()
                    ):
                        replacements[node] = item.expression
                        break
        if not replacements:
            return expression
        return _replace(expression, replacements)  # type: ignore[arg-type]

    def _resolve_positional(
        self, expression: ast.Expression, items: list[ast.SelectItem]
    ) -> ast.Expression:
        """GROUP BY 1 / alias resolve to the corresponding item."""
        if isinstance(expression, ast.Literal) and isinstance(
            expression.value, int
        ):
            index = expression.value - 1
            if 0 <= index < len(items):
                return items[index].expression
            raise PlanningError(
                f"GROUP BY position {expression.value} out of range"
            )
        if isinstance(expression, ast.ColumnRef) and (
            expression.table is None
        ):
            for item in items:
                if item.alias and item.alias.lower() == (
                    expression.name.lower()
                ):
                    return item.expression
        return expression

    # ------------------------------------------------------------------
    # projection / ORDER BY / DISTINCT
    # ------------------------------------------------------------------

    def _plan_projection_and_order(
        self,
        source: physical.PlanNode,
        items: list[ast.SelectItem],
        order_items: list[ast.OrderItem],
        distinct: bool,
    ) -> tuple[physical.PlanNode, list[str]]:
        names = [
            item.alias or _expression_name(item.expression)
            for item in items
        ]

        # ORDER BY may reference output aliases, positional numbers, or
        # any expression over the pre-projection layout; extend the
        # projection with the extra expressions, sort, then slice back.
        sort_positions: list[int] = []
        ascending: list[bool] = []
        extra_expressions: list[ast.Expression] = []
        extra_names: list[str] = []
        for order in order_items:
            position = self._order_target(order.expression, items, names)
            if position is not None:
                sort_positions.append(position)
            else:
                sort_positions.append(len(items) + len(extra_expressions))
                extra_expressions.append(order.expression)
                extra_names.append(
                    _expression_name(order.expression)
                )
            ascending.append(order.ascending)

        expressions = [
            item.expression for item in items
        ] + extra_expressions
        layout = RowLayout(
            [(None, name) for name in names + extra_names]
        )
        plan = self._build_projection(source, expressions, layout)
        if sort_positions:
            keys = [
                _position_getter(position) for position in sort_positions
            ]
            plan = physical.Sort(plan, keys, ascending)
        if extra_expressions:
            plan = physical.Slice(plan, list(range(len(items))))
        if distinct:
            plan = physical.Distinct(plan)
        return plan, names

    def _build_projection(
        self,
        source: physical.PlanNode,
        expressions: list[ast.Expression],
        layout: RowLayout,
    ) -> physical.PlanNode:
        """Project ``expressions``, batching expensive UDFs when enabled.

        All projected expressions (SELECT items plus extra ORDER BY
        expressions) share one call-site pool, so an LM call repeated
        across items resolves once per distinct argument tuple.
        """
        sharded = self._shard_projection(source, expressions, layout)
        if sharded is not None:
            return sharded
        if self._udf_batch_size is not None and any(
            self._functions.contains_expensive(expression)
            for expression in expressions
        ):
            sites, evaluators = plan_batched_expressions(
                expressions,
                source.layout,
                self._functions,
                self,
                cascade=self._cascade(),
            )
            if sites:
                return physical.BatchedProject(
                    source,
                    evaluators,
                    layout,
                    sites,
                    self._udf_exec_context(),
                    self._udf_batch_size,
                )
        compiler = self._compiler(source.layout)
        return physical.Project(
            source,
            [compiler.compile(expression) for expression in expressions],
            layout,
        )

    def _order_target(
        self,
        expression: ast.Expression,
        items: list[ast.SelectItem],
        names: list[str],
    ) -> int | None:
        if isinstance(expression, ast.Literal) and isinstance(
            expression.value, int
        ):
            index = expression.value - 1
            if 0 <= index < len(items):
                return index
            raise PlanningError(
                f"ORDER BY position {expression.value} out of range"
            )
        if isinstance(expression, ast.ColumnRef) and (
            expression.table is None
        ):
            lowered = expression.name.lower()
            for position, name in enumerate(names):
                if name.lower() == lowered:
                    return position
        for position, item in enumerate(items):
            if item.expression == expression:
                return position
        return None

    def _apply_limit(
        self,
        plan: physical.PlanNode,
        limit: ast.Expression | None,
        offset: ast.Expression | None,
    ) -> physical.PlanNode:
        if limit is None and offset is None:
            return plan
        limit_value = self._constant_int(limit, "LIMIT")
        offset_value = self._constant_int(offset, "OFFSET") or 0
        if limit_value is not None and limit_value < 0:
            limit_value = None  # LIMIT -1 means no limit (SQLite)
        return physical.Limit(plan, limit_value, offset_value)

    def _constant_int(
        self, expression: ast.Expression | None, what: str
    ) -> int | None:
        if expression is None:
            return None
        compiler = self._compiler(RowLayout([]))
        value = compiler.compile(expression)(())
        if not isinstance(value, int) or isinstance(value, bool):
            raise PlanningError(f"{what} must be an integer constant")
        return value

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _compiler(self, layout: RowLayout) -> ExpressionCompiler:
        return ExpressionCompiler(layout, self._functions, self)

    def _expand_stars(
        self, items: tuple[ast.SelectItem, ...], layout: RowLayout
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expression, ast.Star):
                expanded.append(item)
                continue
            star = item.expression
            if star.table is not None:
                positions = layout.positions_for_binding(star.table)
                if not positions:
                    raise PlanningError(
                        f"unknown table {star.table!r} in {star.table}.*"
                    )
            else:
                positions = list(range(len(layout)))
            for position in positions:
                binding, name = layout.entries[position]
                expanded.append(
                    ast.SelectItem(ast.ColumnRef(name, binding), name)
                )
        if not expanded:
            raise PlanningError("SELECT list is empty")
        return expanded

    def _is_aggregate_call(self, node: ast.Expression) -> bool:
        return (
            isinstance(node, ast.FunctionCall)
            and self._functions.is_aggregate(node.name)
            and (node.star or len(node.args) == 1)
        )

    def _contains_aggregate(self, expression: ast.Expression) -> bool:
        return any(
            self._is_aggregate_call(node) for node in _walk(expression)
        )

    def _resolvable(
        self, expression: ast.Expression, layout: RowLayout
    ) -> bool:
        """True if every column ref in ``expression`` binds in ``layout``.

        Subquery expressions are treated as opaque (they plan against the
        catalog, not the row), so they are always resolvable.
        """
        for node in _walk(expression, into_subqueries=False):
            if isinstance(node, ast.ColumnRef) and not layout.can_resolve(
                node.name, node.table
            ):
                return False
            if isinstance(node, ast.Star):
                return False
        return True

    def _is_expensive(self, expression: ast.Expression) -> bool:
        return self._functions.contains_expensive(expression)


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


def _split_conjuncts(
    expression: ast.Expression | None,
) -> list[ast.Expression]:
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def _and_all(conjuncts: list[ast.Expression]) -> ast.Expression:
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("AND", combined, conjunct)
    return combined


def _select_expressions(
    select: ast.Select,
) -> Iterator[ast.Expression]:
    """Every expression of one SELECT level (sharding only considers
    single-table statements, so there are no join conditions here)."""
    for item in select.items:
        yield item.expression
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expression


def _partition_key_values(
    conjunct: ast.Expression,
    spec: PartitionSpec,
    scan: physical.Scan,
) -> list[object] | None:
    """Literal values an equality/IN conjunct pins the partition key to.

    Recognizes ``key = literal`` (either side) and ``key IN
    (literals...)`` where the column reference resolves against the
    scanned table; anything else is not prunable.
    """
    column = spec.column.lower()

    def is_key(ref: ast.Expression) -> bool:
        return (
            isinstance(ref, ast.ColumnRef)
            and ref.name.lower() == column
            and scan.layout.can_resolve(ref.name, ref.table)
        )

    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        for ref, literal in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if is_key(ref) and isinstance(literal, ast.Literal):
                return [literal.value]
        return None
    if (
        isinstance(conjunct, ast.InList)
        and not conjunct.negated
        and is_key(conjunct.operand)
        and all(
            isinstance(item, ast.Literal) for item in conjunct.items
        )
    ):
        return [item.value for item in conjunct.items]
    return None


_SUBQUERY_FIELDS = ("subquery", "query")


def _walk(
    expression: ast.Expression, into_subqueries: bool = False
) -> Iterator[ast.Expression]:
    """Yield every expression node in ``expression`` (pre-order)."""
    yield expression
    if not dataclasses.is_dataclass(expression):
        return
    for field in dataclasses.fields(expression):
        if not into_subqueries and field.name in _SUBQUERY_FIELDS:
            continue
        value = getattr(expression, field.name)
        yield from _walk_value(value, into_subqueries)


def _walk_value(value: object, into_subqueries: bool) -> Iterator:
    if isinstance(value, tuple):
        for element in value:
            yield from _walk_value(element, into_subqueries)
    elif dataclasses.is_dataclass(value) and not isinstance(
        value, (ast.Select,)
    ):
        yield from _walk(value, into_subqueries)  # type: ignore[arg-type]


def _walk_outside_aggregates(
    expression: ast.Expression, is_aggregate
) -> Iterator[ast.Expression]:
    """Pre-order walk that does not descend into aggregate calls."""
    if is_aggregate(expression):
        return
    yield expression
    if not dataclasses.is_dataclass(expression):
        return
    for field in dataclasses.fields(expression):
        if field.name in _SUBQUERY_FIELDS:
            continue
        value = getattr(expression, field.name)
        for child in _immediate_children(value):
            yield from _walk_outside_aggregates(child, is_aggregate)


def _immediate_children(value: object) -> Iterator[ast.Expression]:
    if isinstance(value, tuple):
        for element in value:
            yield from _immediate_children(element)
    elif dataclasses.is_dataclass(value) and not isinstance(
        value, ast.Select
    ):
        yield value  # type: ignore[misc]


def _replace(
    expression: ast.Expression,
    replacements: dict[ast.Expression, ast.ColumnRef],
) -> ast.Expression:
    """Structural find-and-replace over an expression tree."""
    if expression in replacements:
        return replacements[expression]
    if not dataclasses.is_dataclass(expression) or isinstance(
        expression, ast.Select
    ):
        return expression
    changes = {}
    for field in dataclasses.fields(expression):
        if field.name in _SUBQUERY_FIELDS:
            continue
        value = getattr(expression, field.name)
        new_value = _replace_value(value, replacements)
        if new_value is not value:
            changes[field.name] = new_value
    if changes:
        return dataclasses.replace(expression, **changes)
    return expression


def _replace_value(value: object, replacements: dict) -> object:
    if isinstance(value, tuple):
        new_elements = tuple(
            _replace_value(element, replacements) for element in value
        )
        if any(
            new is not old for new, old in zip(new_elements, value)
        ):
            return new_elements
        return value
    if dataclasses.is_dataclass(value) and not isinstance(
        value, ast.Select
    ):
        return _replace(value, replacements)  # type: ignore[arg-type]
    return value


def _expression_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        if expression.star:
            return f"{expression.name}(*)"
        inner = ", ".join(
            _expression_name(arg) for arg in expression.args
        )
        return f"{expression.name}({inner})"
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    return type(expression).__name__.lower()


def _position_getter(position: int):
    return lambda row: row[position]
