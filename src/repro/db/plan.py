"""Physical query plan operators (Volcano-style iterators).

The planner compiles expressions at build time, so operators hold plain
callables and iterate tuples.  Each operator exposes its output
:class:`~repro.db.result.RowLayout` and an ``execute()`` generator, plus
an ``explain()`` line used by tests and diagnostics.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterator

from repro.db.expr import Evaluator, is_true
from repro.db.functions import AggregateSpec
from repro.db.result import Row, RowLayout
from repro.db.table import Table
from repro.db.types import SQLValue, sort_key


class PlanNode:
    """Base class for plan operators."""

    layout: RowLayout

    def execute(self) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """This node's one-line ``explain()`` label (public surface for
        diagnostics layers like :mod:`repro.obs.explain`)."""
        return self._describe()

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["PlanNode"]:
        return []


class Scan(PlanNode):
    """Full scan of a stored table under a binding (alias)."""

    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding
        self.layout = RowLayout(
            [(binding, name) for name in table.schema.column_names]
        )

    def execute(self) -> Iterator[Row]:
        yield from self.table

    def _describe(self) -> str:
        return f"Scan({self.table.schema.name} AS {self.binding})"


class IndexLookup(PlanNode):
    """Point lookup via a table's hash index (``col = literal``)."""

    def __init__(self, table: Table, binding: str, column: str, value: SQLValue):
        self.table = table
        self.binding = binding
        self.column = column
        self.value = value
        self.layout = RowLayout(
            [(binding, name) for name in table.schema.column_names]
        )

    def execute(self) -> Iterator[Row]:
        yield from self.table.lookup(self.column, self.value)

    def _describe(self) -> str:
        return (
            f"IndexLookup({self.table.schema.name} AS {self.binding}, "
            f"{self.column} = {self.value!r})"
        )


class Filter(PlanNode):
    def __init__(
        self, child: PlanNode, predicate: Evaluator, label: str = ""
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.label = label
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.execute():
            if is_true(predicate(row)):
                yield row

    def _describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Project(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        evaluators: list[Evaluator],
        layout: RowLayout,
    ) -> None:
        self.child = child
        self.evaluators = evaluators
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        evaluators = self.evaluators
        for row in self.child.execute():
            yield tuple(evaluate(row) for evaluate in evaluators)

    def _describe(self) -> str:
        return f"Project({', '.join(self.layout.names)})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Slice(PlanNode):
    """Keeps a subset of positions from the child row (column pruning)."""

    def __init__(self, child: PlanNode, positions: list[int]) -> None:
        self.child = child
        self.positions = positions
        self.layout = RowLayout(
            [child.layout.entries[position] for position in positions]
        )

    def execute(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.execute():
            yield tuple(row[position] for position in positions)

    def _describe(self) -> str:
        return f"Slice({self.positions})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class NestedLoopJoin(PlanNode):
    """General join; materialises the right side once."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: Evaluator | None,
        kind: str,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.layout = RowLayout.concat(left.layout, right.layout)

    def execute(self) -> Iterator[Row]:
        right_rows = list(self.right.execute())
        null_right = (None,) * len(self.right.layout)
        condition = self.condition
        for left_row in self.left.execute():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is None or is_true(condition(combined)):
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class HashJoin(PlanNode):
    """Equi-join: builds a hash table on the right side.

    ``residual`` (if any) is evaluated over the combined row for extra
    non-equi conjuncts of the ON clause.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[Evaluator],
        right_keys: list[Evaluator],
        kind: str,
        residual: Evaluator | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.kind = kind
        self.residual = residual
        self.layout = RowLayout.concat(left.layout, right.layout)

    def execute(self) -> Iterator[Row]:
        buckets: dict[tuple[SQLValue, ...], list[Row]] = defaultdict(list)
        for right_row in self.right.execute():
            key = tuple(evaluate(right_row) for evaluate in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL keys never match in an equi-join
            buckets[key].append(right_row)
        null_right = (None,) * len(self.right.layout)
        residual = self.residual
        for left_row in self.left.execute():
            key = tuple(evaluate(left_row) for evaluate in self.left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or is_true(residual(combined)):
                        matched = True
                        yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def _describe(self) -> str:
        return f"HashJoin({self.kind}, {len(self.left_keys)} key(s))"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class AggregateCall:
    """One compiled aggregate invocation within an Aggregate node."""

    def __init__(
        self,
        spec: AggregateSpec,
        argument: Evaluator | None,  # None means COUNT(*)
        distinct: bool,
        name: str,
    ) -> None:
        self.spec = spec
        self.argument = argument
        self.distinct = distinct
        self.name = name


class Aggregate(PlanNode):
    """Hash aggregation over optional group keys.

    Output layout: one column per group key (named by the planner)
    followed by one column per aggregate call.  With no group keys the
    node always emits exactly one row, even over empty input (SQL
    semantics: ``SELECT COUNT(*) FROM empty`` is 0).
    """

    def __init__(
        self,
        child: PlanNode,
        group_evaluators: list[Evaluator],
        calls: list[AggregateCall],
        layout: RowLayout,
    ) -> None:
        self.child = child
        self.group_evaluators = group_evaluators
        self.calls = calls
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        groups: dict[tuple[SQLValue, ...], list] = {}
        distinct_seen: dict[tuple[SQLValue, ...], list[set]] = {}
        order: list[tuple[SQLValue, ...]] = []
        for row in self.child.execute():
            key = tuple(
                evaluate(row) for evaluate in self.group_evaluators
            )
            if key not in groups:
                groups[key] = [call.spec.make_state() for call in self.calls]
                distinct_seen[key] = [set() for _ in self.calls]
                order.append(key)
            states = groups[key]
            seen_sets = distinct_seen[key]
            for position, call in enumerate(self.calls):
                if call.argument is None:
                    value: SQLValue = 1  # COUNT(*) counts every row
                else:
                    value = call.argument(row)
                if call.distinct:
                    if value is None or value in seen_sets[position]:
                        continue
                    seen_sets[position].add(value)
                states[position] = call.spec.step(states[position], value)
        if not self.group_evaluators and not order:
            key = ()
            groups[key] = [call.spec.make_state() for call in self.calls]
            order.append(key)
        for key in order:
            states = groups[key]
            finals = tuple(
                call.spec.finish(state)
                for call, state in zip(self.calls, states)
            )
            yield key + finals

    def _describe(self) -> str:
        names = ", ".join(call.name for call in self.calls)
        return (
            f"Aggregate(groups={len(self.group_evaluators)}, "
            f"calls=[{names}])"
        )

    def _children(self) -> list[PlanNode]:
        return [self.child]


class _Descending:
    """Inverts the ordering of one :func:`sort_key` part (DESC keys)."""

    __slots__ = ("part",)

    def __init__(self, part: tuple) -> None:
        self.part = part

    def __lt__(self, other: "_Descending") -> bool:
        return other.part < self.part

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Descending) and self.part == other.part
        )


class Sort(PlanNode):
    """ORDER BY as an explicit *total* order.

    The composite key is ``(key parts..., input position)``: every key
    part goes through :func:`~repro.db.types.sort_key` (NULLs rank
    lowest, so they sort first under ASC and last under DESC), DESC
    parts are wrapped in a comparison-inverting shim rather than
    handled by a separate reversed pass, and the original input
    position breaks all remaining ties.  No two rows ever compare
    equal, so the output order — and anything built on it, notably
    ``LIMIT`` under duplicate key values — is reproducible by
    construction rather than by accident of sort stability.

    Equivalent to the previous stable right-to-left multi-pass sort
    (stability there *was* the input-position tie-break, implicitly),
    but the contract is now explicit and single-pass.
    """

    def __init__(
        self,
        child: PlanNode,
        keys: list[Evaluator],
        ascending: list[bool],
    ) -> None:
        self.child = child
        self.keys = keys
        self.ascending = ascending
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        directed = list(zip(self.keys, self.ascending))
        decorated = []
        for position, row in enumerate(self.child.execute()):
            parts: list[object] = []
            for evaluate, ascending in directed:
                part = sort_key(evaluate(row))
                parts.append(part if ascending else _Descending(part))
            parts.append(position)
            decorated.append((tuple(parts), row))
        decorated.sort(key=lambda pair: pair[0])
        for _, row in decorated:
            yield row

    def _describe(self) -> str:
        return f"Sort({len(self.keys)} key(s))"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Limit(PlanNode):
    def __init__(
        self, child: PlanNode, limit: int | None, offset: int
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child.execute():
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def _describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Distinct(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.layout = child.layout

    def execute(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.execute():
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Values(PlanNode):
    """Constant rows (used for FROM-less SELECT)."""

    def __init__(self, rows: list[Row], layout: RowLayout) -> None:
        self.rows = rows
        self.layout = layout

    def execute(self) -> Iterator[Row]:
        yield from self.rows

    def _describe(self) -> str:
        return f"Values({len(self.rows)} row(s))"
